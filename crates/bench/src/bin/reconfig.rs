//! Runs the reconfiguration-cost extension (the paper's Section 3.2
//! scheduling-scalability property, quantified).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin reconfig -- [--updates N]`

use bluescale_bench::arg_usize;
use bluescale_bench::reconfig::{render, run, ReconfigConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ReconfigConfig::default();
    config.updates = arg_usize(&args, "--updates", config.updates);
    let points = run(&config);
    println!("{}", render(&config, &points));
}
