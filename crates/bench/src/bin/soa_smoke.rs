//! Fast SoA-engine bit-identity smoke check for `scripts/check.sh`.
//!
//! Runs the same seeded workload on the structure-of-arrays engine
//! (`soa_core = true`, the default) and the legacy per-SE engine (the
//! differential oracle) across three scenarios — the dense fig6 strict
//! run, a live churn plan, and a windowed fault plan with guards armed —
//! and asserts the full metric fingerprint is bit-identical each time.
//! Exits non-zero on any divergence.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin soa_smoke`

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::guard::{GuardConfig, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::Counter;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x50A_000FE;
const HORIZON: u64 = 10_000;

fn sparse_sets(clients: usize) -> Vec<TaskSet> {
    let cfg = SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    };
    generate(&cfg, &mut SimRng::seed_from(SEED))
}

fn build_system(
    sets: &[TaskSet],
    work_conserving: bool,
    soa_core: bool,
) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = work_conserving;
    config.soa_core = soa_core;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

/// The differential suites' fingerprint: counts, per-client counts,
/// per-SE forwards, per-port grants and replenishments, full samples.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(HORIZON);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

fn check(
    label: &str,
    mut soa: System<BlueScaleInterconnect>,
    mut legacy: System<BlueScaleInterconnect>,
) {
    let a = fingerprint(&mut soa);
    let b = fingerprint(&mut legacy);
    assert!(b.0[0] > 0, "{label}: the workload must issue requests");
    assert_eq!(a, b, "{label}: SoA engine diverged from the legacy engine");
    println!(
        "soa smoke: {label}: bit-identical ({} issued, {} completed)",
        a.0[0], a.0[1]
    );
}

fn churn_plan(sets: &[TaskSet]) -> ChurnPlan {
    let mut plan = ChurnPlan::new(SEED ^ 0xC482);
    plan.push(
        3_000,
        2,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
        },
    )
    .push(5_000, 9, ChurnKind::Leave)
    .push(
        7_000,
        9,
        ChurnKind::Join {
            tasks: sets[9].clone(),
        },
    );
    plan
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    plan
}

fn main() {
    // Dense fig6 workload, strict mode: the hot arbitration loop.
    let dense = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(SEED));
    check(
        "fig6 strict",
        build_system(&dense, false, true),
        build_system(&dense, false, false),
    );

    // Live churn: deferred (Π,Θ) swaps, slot clears and slot reuse.
    let sparse = sparse_sets(16);
    let mut soa = build_system(&sparse, true, true);
    let mut legacy = build_system(&sparse, true, false);
    soa.set_churn_plan(churn_plan(&sparse));
    legacy.set_churn_plan(churn_plan(&sparse));
    check("churn plan", soa, legacy);

    // Faults with guards armed: masks, jitter, drops, guard timers.
    let guards = GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 1_024,
            max_retries: 3,
        }),
        quarantine: None,
    };
    let mut soa = build_system(&sparse, true, true);
    let mut legacy = build_system(&sparse, true, false);
    soa.set_fault_plan(fault_plan());
    legacy.set_fault_plan(fault_plan());
    // Sub-window timeout (1024 < period_max 4000) on purpose: the
    // differential wants live watchdog traffic in both engines.
    soa.set_guards_unchecked(guards);
    legacy.set_guards_unchecked(guards);
    check("faults + guards", soa, legacy);

    println!("soa smoke: all scenarios bit-identical");
}
