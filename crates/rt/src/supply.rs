//! The periodic resource model and its supply bound function.
//!
//! A Virtual Element (VE) is characterized by `(Π, Θ)`: at least `Θ` time
//! units of transaction time are guaranteed every `Π` units. The supply
//! bound function `sbf(t)` is the minimum supply over *any* interval of
//! length `t` — the worst case places the budget as early as possible in one
//! period and as late as possible in the next, creating a blackout of up to
//! `2(Π−Θ)`.

use crate::Time;

/// A periodic resource interface `(Π, Θ)` with `0 < Θ ≤ Π`.
///
/// # Example
///
/// ```
/// use bluescale_rt::supply::PeriodicResource;
///
/// let ve = PeriodicResource::new(10, 4).expect("valid interface");
/// assert!((ve.bandwidth() - 0.4).abs() < 1e-12);
/// assert_eq!(ve.sbf(12), 0);  // still inside the worst-case blackout
/// assert_eq!(ve.sbf(16), 4);  // one full budget delivered
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeriodicResource {
    period: Time,
    budget: Time,
}

impl PeriodicResource {
    /// Creates an interface with period `Π = period` and budget `Θ = budget`.
    ///
    /// Returns `None` unless `0 < budget ≤ period`.
    pub fn new(period: Time, budget: Time) -> Option<Self> {
        if period == 0 || budget == 0 || budget > period {
            None
        } else {
            Some(Self { period, budget })
        }
    }

    /// A dedicated (full-bandwidth) resource: `Θ = Π`.
    pub fn dedicated(period: Time) -> Self {
        Self::new(period.max(1), period.max(1)).expect("dedicated resource is valid")
    }

    /// The period `Π`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The budget `Θ`.
    pub fn budget(&self) -> Time {
        self.budget
    }

    /// Bandwidth `Θ/Π ∈ (0, 1]`.
    pub fn bandwidth(&self) -> f64 {
        self.budget as f64 / self.period as f64
    }

    /// Supply bound function (paper, Section 5):
    ///
    /// ```text
    /// t' = t − (Π − Θ)
    /// sbf(t) = 0                              if t' < 0
    ///        = ⌊t'/Π⌋·Θ + ε                   otherwise
    /// ε = max(t' − Π·⌊t'/Π⌋ − (Π − Θ), 0)
    /// ```
    pub fn sbf(&self, t: Time) -> Time {
        let blackout = self.period - self.budget;
        if t < blackout {
            return 0;
        }
        let t_prime = t - blackout;
        let full_periods = t_prime / self.period;
        let into_period = t_prime % self.period;
        let epsilon = into_period.saturating_sub(blackout);
        full_periods * self.budget + epsilon
    }

    /// Linear lower bound on the supply:
    /// `lsbf(t) = (Θ/Π)·(t − 2(Π−Θ))`, clamped at 0. Used in the proof of
    /// Theorem 1; exposed for analysis and property testing.
    pub fn lsbf(&self, t: Time) -> f64 {
        let blackout2 = 2.0 * (self.period - self.budget) as f64;
        (self.bandwidth() * (t as f64 - blackout2)).max(0.0)
    }

    /// Compares bandwidth against another interface exactly (integer
    /// cross-multiplication; no floating point).
    pub fn bandwidth_lt(&self, other: &PeriodicResource) -> bool {
        (self.budget as u128) * (other.period as u128)
            < (other.budget as u128) * (self.period as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_bounds() {
        assert!(PeriodicResource::new(0, 0).is_none());
        assert!(PeriodicResource::new(10, 0).is_none());
        assert!(PeriodicResource::new(10, 11).is_none());
        assert!(PeriodicResource::new(10, 10).is_some());
        assert!(PeriodicResource::new(10, 1).is_some());
    }

    #[test]
    fn dedicated_supplies_everything() {
        let r = PeriodicResource::dedicated(5);
        for t in 0..50 {
            assert_eq!(r.sbf(t), t, "dedicated resource supplies t at t={t}");
        }
    }

    #[test]
    fn sbf_zero_during_blackout() {
        let r = PeriodicResource::new(10, 4).unwrap();
        // Blackout is Π−Θ = 6 under the paper's formula (t' < 0).
        for t in 0..6 {
            assert_eq!(r.sbf(t), 0);
        }
    }

    #[test]
    fn sbf_matches_hand_computed_values() {
        // Π=10, Θ=4: t'=t−6.
        let r = PeriodicResource::new(10, 4).unwrap();
        // t=6: t'=0 → 0 full periods, ε=max(0−6,0)=0 → 0.
        assert_eq!(r.sbf(6), 0);
        // t=12: t'=6 → ⌊6/10⌋=0, ε=max(6−0−6,0)=0 → 0.
        assert_eq!(r.sbf(12), 0);
        // t=13: t'=7, ε=1 → 1.
        assert_eq!(r.sbf(13), 1);
        // t=16: t'=10 → 1 period → 4, ε=max(0−6,0)=0 → 4.
        assert_eq!(r.sbf(16), 4);
        // t=26: t'=20 → 2 periods → 8.
        assert_eq!(r.sbf(26), 8);
        // t=23: t'=17 → 1 period + ε=max(7−6,0)=1 → 5.
        assert_eq!(r.sbf(23), 5);
    }

    #[test]
    fn sbf_monotone_nondecreasing() {
        let r = PeriodicResource::new(7, 3).unwrap();
        let mut prev = 0;
        for t in 0..200 {
            let s = r.sbf(t);
            assert!(s >= prev, "sbf must be monotone at t={t}");
            prev = s;
        }
    }

    #[test]
    fn sbf_increments_at_most_one_per_unit() {
        let r = PeriodicResource::new(9, 5).unwrap();
        for t in 1..300 {
            assert!(r.sbf(t) - r.sbf(t - 1) <= 1);
        }
    }

    #[test]
    fn sbf_long_run_rate_equals_bandwidth() {
        let r = PeriodicResource::new(10, 3).unwrap();
        let t = 10_000;
        let rate = r.sbf(t) as f64 / t as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn lsbf_never_exceeds_sbf() {
        for (p, b) in [(10u64, 4u64), (7, 3), (20, 19), (5, 1)] {
            let r = PeriodicResource::new(p, b).unwrap();
            for t in 0..500 {
                assert!(
                    r.lsbf(t) <= r.sbf(t) as f64 + 1e-9,
                    "lsbf > sbf at Π={p}, Θ={b}, t={t}"
                );
            }
        }
    }

    #[test]
    fn bandwidth_lt_is_exact() {
        let a = PeriodicResource::new(3, 1).unwrap(); // 1/3
        let b = PeriodicResource::new(10, 4).unwrap(); // 0.4
        assert!(a.bandwidth_lt(&b));
        assert!(!b.bandwidth_lt(&a));
        let c = PeriodicResource::new(6, 2).unwrap(); // also 1/3
        assert!(!a.bandwidth_lt(&c));
        assert!(!c.bandwidth_lt(&a));
    }
}
