//! Structural cost models per architecture, anchored to the paper's
//! Table 1 at 16 clients.

use crate::cost::HardwareCost;

/// Memory interconnect architectures with a cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Centralized AXI-IC^RT: `O(n²)` switch box + `O(n log n)` arbiter.
    AxiIcRt,
    /// Distributed binary multiplexer tree (`n−1` nodes).
    BlueTree,
    /// BlueTree with deeper stage buffers.
    BlueTreeSmooth,
    /// Binary tree plus a global TDM arbitration unit.
    GsmTree,
    /// Quadtree of Scale Elements (`(4^d−1)/3` SEs).
    BlueScale,
}

impl Architecture {
    /// All modelled interconnects, in the paper's Table 1 order.
    pub const ALL: [Architecture; 5] = [
        Architecture::AxiIcRt,
        Architecture::BlueTree,
        Architecture::BlueTreeSmooth,
        Architecture::GsmTree,
        Architecture::BlueScale,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::AxiIcRt => "AXI-IC^RT",
            Architecture::BlueTree => "BlueTree",
            Architecture::BlueTreeSmooth => "BlueTree-Smooth",
            Architecture::GsmTree => "GSMTree",
            Architecture::BlueScale => "BlueScale",
        }
    }
}

/// Soft processors included in Table 1 for system-level comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Processor {
    /// Fully-featured MicroBlaze (pipeline + data cache).
    MicroBlaze,
    /// Out-of-order RISC-V soft core (Mashimo et al., ICFPT 2019).
    RiscV,
}

/// Number of 2-to-1 nodes in a complete binary tree over `n` clients.
fn binary_tree_nodes(n: usize) -> u64 {
    (n.next_power_of_two().max(2) - 1) as u64
}

/// Number of Scale Elements actually instantiated in a quadtree over `n`
/// clients — unpopulated subtrees are pruned, so each level needs
/// `⌈previous/4⌉` elements down to the single root.
fn quadtree_elements(n: usize) -> u64 {
    let mut total = 0u64;
    let mut width = n.max(1);
    loop {
        width = width.div_ceil(4);
        total += width as u64;
        if width == 1 {
            return total;
        }
    }
}

fn log2f(n: usize) -> f64 {
    (n.max(1) as f64).log2()
}

/// Cost of an interconnect instance supporting `clients` client ports.
///
/// Exactly reproduces the paper's Table 1 at `clients == 16`.
///
/// # Panics
///
/// Panics if `clients` is zero.
///
/// # Example
///
/// ```
/// use bluescale_hwcost::{interconnect_cost, Architecture};
///
/// let c = interconnect_cost(Architecture::BlueScale, 16);
/// assert_eq!(c.luts, 2959); // the paper's Table 1 anchor
/// assert_eq!(c.ram_kb, 10);
/// ```
pub fn interconnect_cost(arch: Architecture, clients: usize) -> HardwareCost {
    assert!(clients > 0, "at least one client required");
    let n = clients as f64;
    match arch {
        Architecture::AxiIcRt => {
            // Fixed controller base + switch box O(n²) + monolithic
            // arbiter O(n log n), split 60/40 at the anchor (16 clients →
            // 3744 LUTs).
            let luts = 1500.0 + 5.259375 * n * n + 14.025 * n * log2f(clients);
            let regs = 1000.0 + 76.59375 * n + 19.1484375 * n * log2f(clients);
            HardwareCost {
                luts: luts.round() as u64,
                registers: regs.round() as u64,
                dsps: 0,
                ram_kb: 0,
                power_mw: 46.0 * luts / 3744.0,
            }
        }
        Architecture::BlueTree => scale_tree(clients, 1683, 2901, 27.0, 0),
        Architecture::BlueTreeSmooth => scale_tree(clients, 2349, 3455, 41.0, 0),
        Architecture::GsmTree => {
            // BlueTree datapath + a fixed global TDM arbitration unit.
            let tree = scale_tree(clients, 1683, 2901, 27.0, 0);
            tree + HardwareCost {
                luts: 760,
                registers: 214,
                dsps: 0,
                ram_kb: 8,
                power_mw: 32.0,
            }
        }
        Architecture::BlueScale => {
            let elements = quadtree_elements(clients);
            HardwareCost {
                luts: (2959.0 * elements as f64 / 5.0).round() as u64,
                registers: (3312.0 * elements as f64 / 5.0).round() as u64,
                dsps: 0,
                // 2 KiB scratchpad per SE (paper, Fig 4).
                ram_kb: 2 * elements,
                power_mw: 67.0 * elements as f64 / 5.0,
            }
        }
    }
}

/// Scales a binary-tree anchor (15 nodes at 16 clients) to `clients`.
fn scale_tree(clients: usize, luts16: u64, regs16: u64, power16: f64, ram16: u64) -> HardwareCost {
    let nodes = binary_tree_nodes(clients) as f64;
    let f = nodes / 15.0;
    HardwareCost {
        luts: (luts16 as f64 * f).round() as u64,
        registers: (regs16 as f64 * f).round() as u64,
        dsps: 0,
        ram_kb: (ram16 as f64 * f).round() as u64,
        power_mw: power16 * f,
    }
}

/// Cost of one fully-featured soft processor (Table 1 rows).
pub fn processor_cost(kind: Processor) -> HardwareCost {
    match kind {
        Processor::MicroBlaze => HardwareCost {
            luts: 4993,
            registers: 4295,
            dsps: 6,
            ram_kb: 256,
            power_mw: 369.0,
        },
        Processor::RiscV => HardwareCost {
            luts: 7433,
            registers: 16544,
            dsps: 21,
            ram_kb: 512,
            power_mw: 583.0,
        },
    }
}

/// Cost of one *legacy-system* client core: the area-optimized MicroBlaze
/// configuration used when packing up to 128 cores on the VC707 (a
/// fully-featured core would not fit 2⁷ times).
pub fn legacy_core_cost() -> HardwareCost {
    HardwareCost {
        luts: 900,
        registers: 750,
        dsps: 0,
        ram_kb: 8,
        power_mw: 12.5,
    }
}

/// Cost of the legacy many-core system (clients only, no interconnect):
/// `clients` area-optimized cores.
pub fn legacy_system_cost(clients: usize) -> HardwareCost {
    legacy_core_cost().replicate(clients as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_anchors_exact_at_16_clients() {
        let axi = interconnect_cost(Architecture::AxiIcRt, 16);
        assert_eq!(
            (axi.luts, axi.registers, axi.dsps, axi.ram_kb),
            (3744, 3451, 0, 0)
        );
        assert!((axi.power_mw - 46.0).abs() < 0.5);

        let bt = interconnect_cost(Architecture::BlueTree, 16);
        assert_eq!((bt.luts, bt.registers, bt.ram_kb), (1683, 2901, 0));
        assert!((bt.power_mw - 27.0).abs() < 1e-9);

        let bts = interconnect_cost(Architecture::BlueTreeSmooth, 16);
        assert_eq!((bts.luts, bts.registers), (2349, 3455));
        assert!((bts.power_mw - 41.0).abs() < 1e-9);

        let gsm = interconnect_cost(Architecture::GsmTree, 16);
        assert_eq!((gsm.luts, gsm.registers, gsm.ram_kb), (2443, 3115, 8));
        assert!((gsm.power_mw - 59.0).abs() < 1e-9);

        let bs = interconnect_cost(Architecture::BlueScale, 16);
        assert_eq!(
            (bs.luts, bs.registers, bs.dsps, bs.ram_kb),
            (2959, 3312, 0, 10)
        );
        assert!((bs.power_mw - 67.0).abs() < 1e-9);
    }

    #[test]
    fn obs1_relations_hold() {
        // Obs 1: BlueScale needs more than distributed trees, less than
        // the centralized interconnect and far less than processors.
        let at = |a| interconnect_cost(a, 16);
        let bs = at(Architecture::BlueScale);
        assert!(bs.luts > at(Architecture::BlueTree).luts);
        assert!(bs.luts > at(Architecture::BlueTreeSmooth).luts);
        assert!(bs.luts > at(Architecture::GsmTree).luts);
        assert!(bs.luts < at(Architecture::AxiIcRt).luts);
        assert!(bs.luts < processor_cost(Processor::MicroBlaze).luts);
        assert!(bs.luts < processor_cost(Processor::RiscV).luts);
    }

    #[test]
    fn bluescale_scales_linearly_in_elements() {
        // 5 SEs at 16 clients, 21 at 64: ratio 21/5.
        let c16 = interconnect_cost(Architecture::BlueScale, 16);
        let c64 = interconnect_cost(Architecture::BlueScale, 64);
        let ratio = c64.luts as f64 / c16.luts as f64;
        assert!((ratio - 21.0 / 5.0).abs() < 0.01, "ratio {ratio}");
        assert_eq!(c64.ram_kb, 42);
    }

    #[test]
    fn axi_grows_superlinearly() {
        let c16 = interconnect_cost(Architecture::AxiIcRt, 16);
        let c64 = interconnect_cost(Architecture::AxiIcRt, 64);
        // 4× clients must cost more than 4× LUTs (quadratic switch box).
        assert!(c64.luts > 4 * c16.luts);
    }

    #[test]
    fn bluescale_beats_axi_at_every_scale() {
        for eta in 1..=7 {
            let n = 1usize << eta;
            let bs = interconnect_cost(Architecture::BlueScale, n);
            let axi = interconnect_cost(Architecture::AxiIcRt, n);
            assert!(
                bs.luts < axi.luts,
                "η={eta}: BlueScale {} vs AXI {}",
                bs.luts,
                axi.luts
            );
        }
    }

    #[test]
    fn quadtree_element_counts() {
        assert_eq!(quadtree_elements(4), 1);
        assert_eq!(quadtree_elements(8), 3); // 2 leaf SEs + root
        assert_eq!(quadtree_elements(16), 5);
        assert_eq!(quadtree_elements(64), 21);
        assert_eq!(quadtree_elements(128), 43); // pruned: 32 + 8 + 2 + 1
        assert_eq!(quadtree_elements(2), 1);
    }

    #[test]
    fn binary_tree_node_counts() {
        assert_eq!(binary_tree_nodes(2), 1);
        assert_eq!(binary_tree_nodes(16), 15);
        assert_eq!(binary_tree_nodes(64), 63);
        assert_eq!(binary_tree_nodes(5), 7);
    }

    #[test]
    fn power_tracks_area() {
        for arch in Architecture::ALL {
            let small = interconnect_cost(arch, 8);
            let large = interconnect_cost(arch, 64);
            assert!(large.power_mw > small.power_mw, "{arch:?}");
        }
    }

    #[test]
    fn legacy_system_is_linear() {
        let one = legacy_system_cost(1);
        let many = legacy_system_cost(128);
        assert_eq!(many.luts, 128 * one.luts);
        // 128 cores fit on the platform (the reason for the area-optimized
        // configuration).
        assert!(many.luts < crate::VC707_LUTS / 2);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let _ = interconnect_cost(Architecture::BlueScale, 0);
    }
}
