//! The automotive case study workload (paper, Section 6.4).
//!
//! Two fixed task suites model the paper's real-world selection:
//!
//! * **Safety tasks** — 10 entries from the Renesas automotive use-case
//!   catalogue (CRC, RSA32, core self-test, …).
//! * **Function tasks** — 10 entries from EEMBC AutoBench (FFT, speed
//!   calculation, …).
//!
//! The 20 base tasks are distributed over the processors at roughly 30 %
//! combined utilization. *Interference tasks* (EEMBC-style for processors,
//! SqueezeNet inference for the DNN hardware accelerators) are then added
//! until the system reaches a target utilization — the sweep variable of
//! Fig 7. The last two clients act as DNN HAs: their traffic is burstier
//! (large jobs, long periods) at the same utilization.

use crate::uunifast::task_with_utilization;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;

/// A named entry of the case-study catalogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogTask {
    /// Task name, for experiment reports.
    pub name: &'static str,
    /// Whether the task belongs to the safety suite.
    pub safety: bool,
    /// Nominal period in cycles (scaled by jitter per trial).
    pub base_period: u64,
    /// Relative memory intensity (scaled to hit the utilization budget).
    pub memory_weight: f64,
}

/// The 10 automotive safety tasks (Renesas use-case catalogue flavour).
pub const SAFETY_TASKS: [CatalogTask; 10] = [
    CatalogTask {
        name: "crc32",
        safety: true,
        base_period: 500,
        memory_weight: 1.2,
    },
    CatalogTask {
        name: "rsa32",
        safety: true,
        base_period: 2000,
        memory_weight: 0.8,
    },
    CatalogTask {
        name: "core-self-test",
        safety: true,
        base_period: 4000,
        memory_weight: 1.5,
    },
    CatalogTask {
        name: "ecc-scrub",
        safety: true,
        base_period: 1000,
        memory_weight: 2.0,
    },
    CatalogTask {
        name: "watchdog-refresh",
        safety: true,
        base_period: 250,
        memory_weight: 0.3,
    },
    CatalogTask {
        name: "lockstep-compare",
        safety: true,
        base_period: 500,
        memory_weight: 1.0,
    },
    CatalogTask {
        name: "voltage-monitor",
        safety: true,
        base_period: 1000,
        memory_weight: 0.4,
    },
    CatalogTask {
        name: "can-frame-check",
        safety: true,
        base_period: 800,
        memory_weight: 0.9,
    },
    CatalogTask {
        name: "flash-signature",
        safety: true,
        base_period: 4000,
        memory_weight: 1.8,
    },
    CatalogTask {
        name: "sensor-plausibility",
        safety: true,
        base_period: 640,
        memory_weight: 1.1,
    },
];

/// The 10 automotive function tasks (EEMBC AutoBench flavour).
pub const FUNCTION_TASKS: [CatalogTask; 10] = [
    CatalogTask {
        name: "fft",
        safety: false,
        base_period: 1000,
        memory_weight: 1.6,
    },
    CatalogTask {
        name: "speed-calc",
        safety: false,
        base_period: 500,
        memory_weight: 0.7,
    },
    CatalogTask {
        name: "angle-to-time",
        safety: false,
        base_period: 640,
        memory_weight: 0.6,
    },
    CatalogTask {
        name: "table-lookup",
        safety: false,
        base_period: 800,
        memory_weight: 1.3,
    },
    CatalogTask {
        name: "fir-filter",
        safety: false,
        base_period: 1000,
        memory_weight: 1.0,
    },
    CatalogTask {
        name: "iir-filter",
        safety: false,
        base_period: 1000,
        memory_weight: 1.0,
    },
    CatalogTask {
        name: "matrix-mult",
        safety: false,
        base_period: 2000,
        memory_weight: 2.2,
    },
    CatalogTask {
        name: "road-speed-limit",
        safety: false,
        base_period: 1600,
        memory_weight: 0.8,
    },
    CatalogTask {
        name: "tooth-to-spark",
        safety: false,
        base_period: 500,
        memory_weight: 0.5,
    },
    CatalogTask {
        name: "idct",
        safety: false,
        base_period: 1250,
        memory_weight: 1.4,
    },
];

/// Parameters of one case-study trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseStudyConfig {
    /// Total clients (processors + HAs). The paper uses 16+2 and 64+2; the
    /// last [`Self::accelerators`] clients are DNN HAs.
    pub clients: usize,
    /// How many of the clients are DNN hardware accelerators.
    pub accelerators: usize,
    /// Combined utilization of the 20 base tasks.
    pub base_utilization: f64,
    /// Target total utilization after adding interference tasks.
    pub target_utilization: f64,
}

impl CaseStudyConfig {
    /// The paper's setup: `processors` MicroBlaze cores plus 2 DNN HAs at
    /// 30 % base utilization, swept to `target_utilization`.
    ///
    /// # Panics
    ///
    /// Panics if `processors` is zero or `target_utilization` is not in
    /// `(0, 1]`.
    pub fn fig7(processors: usize, target_utilization: f64) -> Self {
        assert!(processors > 0, "at least one processor required");
        assert!(
            target_utilization > 0.0 && target_utilization <= 1.0,
            "target utilization must be in (0, 1]"
        );
        Self {
            clients: processors + 2,
            accelerators: 2,
            base_utilization: 0.30_f64.min(target_utilization),
            target_utilization,
        }
    }
}

/// Generates one case-study trial: per-client task sets whose combined
/// utilization approximates `target_utilization`.
///
/// # Panics
///
/// Panics if the configuration is inconsistent (more accelerators than
/// clients, base above target).
pub fn generate(config: &CaseStudyConfig, rng: &mut SimRng) -> Vec<TaskSet> {
    assert!(
        config.accelerators < config.clients,
        "too many accelerators"
    );
    assert!(
        config.base_utilization <= config.target_utilization + 1e-12,
        "base utilization above target"
    );
    let processors = config.clients - config.accelerators;
    let mut per_client: Vec<Vec<Task>> = vec![Vec::new(); config.clients];
    let mut next_id: Vec<u32> = vec![0; config.clients];

    // 1. Place the 20 base tasks on random processors at ~base utilization,
    //    with memory demand proportional to each task's memory weight.
    let catalog: Vec<CatalogTask> = SAFETY_TASKS
        .iter()
        .chain(FUNCTION_TASKS.iter())
        .copied()
        .collect();
    let weight_sum: f64 = catalog.iter().map(|t| t.memory_weight).sum();
    for entry in &catalog {
        let client = rng.range_usize(0, processors);
        let share = config.base_utilization * entry.memory_weight / weight_sum;
        // Jitter the period ±25 % so trials differ.
        let period = (entry.base_period as f64 * rng.range_f64(0.75, 1.25)).round() as u64;
        let period = period.max(((1.0 / share).ceil() as u64).min(8000)).max(64);
        let wcet = ((share * period as f64).round() as u64).clamp(1, period);
        per_client[client].push(Task::new(next_id[client], period, wcet).expect("valid base task"));
        next_id[client] += 1;
    }

    // 2. HA interference: SqueezeNet-style inference — large bursts, long
    //    periods. Each HA gets one task at (target-base)/clients-ish share,
    //    mirroring the paper's 1/#clients bandwidth enforcement.
    let ha_share = (config.target_utilization / config.clients as f64)
        .min(config.target_utilization - config.base_utilization + 1e-9)
        .max(0.002);
    for a in 0..config.accelerators {
        let client = processors + a;
        let period = rng.range_u64(3000, 6000);
        let wcet = ((ha_share * period as f64).round() as u64).clamp(1, period);
        per_client[client].push(Task::new(next_id[client], period, wcet).expect("valid HA task"));
        next_id[client] += 1;
    }

    // 3. Processor interference tasks until the target utilization is hit.
    let mut total: f64 = per_client
        .iter()
        .flatten()
        .map(|t| t.wcet() as f64 / t.period() as f64)
        .sum();
    let mut guard = 0;
    while total < config.target_utilization - 0.005 && guard < 10_000 {
        guard += 1;
        let gap = config.target_utilization - total;
        let u = rng.range_f64(0.004, 0.03).min(gap.max(0.002));
        let client = rng.range_usize(0, processors);
        let task = task_with_utilization(next_id[client], u, 200, 4000, rng);
        next_id[client] += 1;
        total += task.utilization();
        per_client[client].push(task);
    }

    per_client
        .into_iter()
        .map(|tasks| TaskSet::new(tasks).expect("per-client sets stay valid"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_utilization;

    #[test]
    fn catalog_has_twenty_tasks() {
        assert_eq!(SAFETY_TASKS.len(), 10);
        assert_eq!(FUNCTION_TASKS.len(), 10);
        assert!(SAFETY_TASKS.iter().all(|t| t.safety));
        assert!(FUNCTION_TASKS.iter().all(|t| !t.safety));
    }

    #[test]
    fn generates_clients_plus_accelerators() {
        let mut rng = SimRng::seed_from(1);
        let cfg = CaseStudyConfig::fig7(16, 0.5);
        let sets = generate(&cfg, &mut rng);
        assert_eq!(sets.len(), 18);
    }

    #[test]
    fn total_utilization_near_target() {
        let mut rng = SimRng::seed_from(2);
        for &target in &[0.3, 0.5, 0.7, 0.9] {
            let cfg = CaseStudyConfig::fig7(16, target);
            let sets = generate(&cfg, &mut rng);
            let u = total_utilization(&sets);
            assert!((u - target).abs() < 0.12, "target {target}, got {u}");
        }
    }

    #[test]
    fn accelerators_get_bursty_tasks() {
        let mut rng = SimRng::seed_from(3);
        let cfg = CaseStudyConfig::fig7(16, 0.6);
        let sets = generate(&cfg, &mut rng);
        for ha in &sets[16..] {
            assert_eq!(ha.len(), 1);
            assert!(ha.tasks()[0].period() >= 3000, "HA tasks are long-period");
        }
    }

    #[test]
    fn base_tasks_only_on_processors() {
        let mut rng = SimRng::seed_from(4);
        let cfg = CaseStudyConfig::fig7(64, 0.35);
        let sets = generate(&cfg, &mut rng);
        // The 20 catalogue tasks live on clients 0..64; HAs have exactly
        // their single inference task.
        let processor_tasks: usize = sets[..64].iter().map(TaskSet::len).sum();
        assert!(processor_tasks >= 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CaseStudyConfig::fig7(16, 0.6);
        let a = generate(&cfg, &mut SimRng::seed_from(5));
        let b = generate(&cfg, &mut SimRng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    fn low_target_keeps_base_scaled_down() {
        let mut rng = SimRng::seed_from(6);
        let cfg = CaseStudyConfig::fig7(16, 0.2);
        assert!(cfg.base_utilization <= 0.2);
        let sets = generate(&cfg, &mut rng);
        let u = total_utilization(&sets);
        assert!(u < 0.35, "got {u}");
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn bad_target_panics() {
        let _ = CaseStudyConfig::fig7(16, 0.0);
    }
}
