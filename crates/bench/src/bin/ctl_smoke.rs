//! Control-plane smoke check for `scripts/check.sh`: a live daemon and
//! N concurrent client threads over loopback running join → renegotiate
//! → stats → leave, every client severing its own connection on a fixed
//! cadence (responses lost in flight, forcing the reconnect/retry path).
//!
//! Asserts, loudly:
//! * **request conservation** — every admission request the daemon
//!   received got exactly one verdict (admitted / rejected / shed /
//!   timed-out), no silent drops, no stall;
//! * **zero guaranteed-tenant misses** — every guaranteed tenant's
//!   operation sequence completes fully admitted despite the injected
//!   faults (retries + idempotent admission must hide them);
//! * **crash recovery** — killing the daemon afterwards and restarting
//!   from its journal reproduces the admission state digest
//!   bit-identically.

use bluescale_ctl::client::{CtlClient, RetryPolicy};
use bluescale_ctl::proto::{Response, TaskSpec, TenantClass};
use bluescale_ctl::server::{Daemon, DaemonConfig};
use bluescale_sim::metrics::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const CLIENTS: usize = 16;
const GUARANTEED: usize = 8;
const ROUNDS: usize = 3;

fn spec(period: u64, wcet: u64) -> TaskSpec {
    TaskSpec { period, wcet }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("bluescale-ctl-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DaemonConfig {
        capacity: 32,
        queue_depth: 64,
        batch_max: 16,
        sim_cycles_per_batch: 32,
        compact_every: 24,
        queue_deadline: Duration::from_secs(2),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(&dir, config.clone()).expect("daemon start");
    let addr = daemon.addr();

    let guaranteed_misses = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let misses = &guaranteed_misses;
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let guaranteed = c < GUARANTEED;
                let class = if guaranteed {
                    TenantClass::Guaranteed
                } else {
                    TenantClass::BestEffort
                };
                let policy = RetryPolicy {
                    // Every 2nd frame's response is lost in flight.
                    drop_after_send_every: Some(2),
                    max_attempts: 8,
                    deadline: Duration::from_secs(10),
                    ..RetryPolicy::default()
                };
                let mut client = CtlClient::new(addr, policy, 0x5340 + c as u64);
                let id = c as u64;
                for round in 0..ROUNDS {
                    let mut admitted = 0u32;
                    let ops: [Result<Response, _>; 3] = [
                        client.join(id, class, vec![spec(4000, 1)]),
                        client.renegotiate(id, vec![spec(3000 + round as u64, 1)]),
                        client.leave(id),
                    ];
                    for op in ops {
                        if let Ok(Response::Admitted { .. }) = op {
                            admitted += 1;
                        }
                    }
                    let _ = client.stats(id);
                    if guaranteed && admitted != 3 {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let retries = daemon.sim_counter(Counter::Retries);
    let digest = daemon.state_digest();
    let stats = daemon.kill();

    assert!(
        stats.conservation_holds(),
        "request conservation violated: {stats:?}"
    );
    assert_eq!(
        guaranteed_misses.load(Ordering::Relaxed),
        0,
        "guaranteed tenants missed operations under faults"
    );
    assert!(
        retries > 0,
        "fault injection was inert: no retries were forced"
    );

    let revived = Daemon::start(&dir, config).expect("daemon restart");
    assert_eq!(
        revived.state_digest(),
        digest,
        "recovery replay diverged from the pre-crash admission state"
    );
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "ctl smoke: {CLIENTS} clients x {ROUNDS} rounds under dropped-response faults: \
         {} received / {} admitted / {} rejected / {} shed / {} timed-out, {retries} retries, \
         conservation + zero guaranteed misses + bit-identical recovery OK",
        stats.received, stats.admitted, stats.rejected, stats.shed, stats.timed_out
    );
}
