//! Quadtree topology: how Scale Elements are arranged and indexed.
//!
//! SEs form a complete tree with fan-in `branch` (4 in the paper; the
//! branch factor is configurable so the fan-in ablation can compare binary
//! trees). `SE(x, y)` sits at depth `x` (0 = root, next to the memory
//! sub-system) and is the `y`-th element of that depth. Its local clients
//! are `SE(x+1, branch·y + i)` — or system clients when `x` is the deepest
//! SE level.

use crate::rab::QueuePolicy;
use bluescale_mem::{DramConfig, MemPolicyConfig};
use std::fmt;

/// Index of a Scale Element in the tree: depth `x` (0 = root) and order `y`.
///
/// # Example
///
/// ```
/// use bluescale::topology::SeIndex;
///
/// let root = SeIndex::new(0, 0);
/// assert_eq!(root.child(4, 2), SeIndex::new(1, 2));
/// assert_eq!(SeIndex::new(1, 2).parent(4), Some(root));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeIndex {
    /// Depth in the tree (0 = root).
    pub depth: usize,
    /// Order within the depth.
    pub order: usize,
}

impl SeIndex {
    /// Creates an index.
    pub fn new(depth: usize, order: usize) -> Self {
        Self { depth, order }
    }

    /// The `i`-th child of this SE in a `branch`-ary tree.
    pub fn child(&self, branch: usize, i: usize) -> SeIndex {
        SeIndex::new(self.depth + 1, self.order * branch + i)
    }

    /// The parent index, or `None` at the root.
    pub fn parent(&self, branch: usize) -> Option<SeIndex> {
        if self.depth == 0 {
            None
        } else {
            Some(SeIndex::new(self.depth - 1, self.order / branch))
        }
    }

    /// Which client port of the parent this SE is attached to.
    pub fn port_in_parent(&self, branch: usize) -> usize {
        self.order % branch
    }
}

impl fmt::Display for SeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SE({},{})", self.depth, self.order)
    }
}

/// Static configuration of a BlueScale instance.
///
/// # Example
///
/// ```
/// use bluescale::BlueScaleConfig;
///
/// let c = BlueScaleConfig::for_clients(64);
/// assert_eq!(c.levels(), 3);            // 1 + 4 + 16 SEs
/// assert_eq!(c.total_elements(), 21);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlueScaleConfig {
    /// Number of system clients (leaves). Ports beyond this count idle.
    pub num_clients: usize,
    /// Fan-in of every SE (4 in the paper).
    pub branch: usize,
    /// Capacity of each random-access buffer (pending requests per port).
    pub buffer_capacity: usize,
    /// Reserved: the response path is modelled structurally (one
    /// demultiplexer stage per SE, one response per stage per cycle), so
    /// each level inherently costs one cycle. Kept for configurations that
    /// want to model slower response registers in the future.
    pub response_latency_per_level: u64,
    /// Memory service cycles per request (flat model; 1 = the paper's
    /// "transaction time unit"). Ignored when [`Self::dram`] is set.
    pub memory_service_cycles: u64,
    /// Optional full DRAM timing model (row-buffer hits/conflicts). `None`
    /// uses the flat [`Self::memory_service_cycles`] model.
    pub dram: Option<DramConfig>,
    /// If `true`, an SE whose eligible servers are all out of budget may
    /// still forward the earliest-deadline pending request (ablation knob;
    /// the paper's hardware is strictly budget-gated, i.e. `false`).
    pub work_conserving: bool,
    /// Deadline-deflation factor in `(0, 1]` applied to the *leaf* task
    /// parameters: a task with period `T` is analysed against the deadline
    /// `max(C, ⌊margin·T⌋)`. Values below 1 reserve end-to-end slack for
    /// the remaining pipeline stages (request transit, memory service and
    /// the response path); 1.0 reproduces the paper's bare analysis.
    pub analysis_margin: f64,
    /// Granularity divisor for interface selection: candidate server
    /// periods are capped at `min_deadline / divisor`. Finer granularity
    /// shortens worst-case blackouts (less bandwidth inflation, smaller
    /// per-stage delay) at the cost of more frequent replenishments.
    pub granularity_divisor: u64,
    /// Ordering discipline of the low-level (per-port) queues — EDF in the
    /// paper; FIFO as an ablation.
    pub low_level_policy: QueuePolicy,
    /// Run the busy-cycle path on the structure-of-arrays core
    /// ([`crate::soa::SoaCore`]) — arena-indexed server state, linear-scan
    /// GEDF argmin, batched counters. Semantically identical to the legacy
    /// per-SE engine (pinned by the differential suites); `false` selects
    /// the legacy engine, kept as the differential oracle.
    pub soa_core: bool,
    /// Memory-scheduling policy applied at the root-arbitration seam
    /// (before the controller). `Unregulated` is bit-identical to having
    /// no policy at all; active policies may defer per-port grants (the
    /// request stays queued) or reclassify a request's DRAM service.
    pub mem_policy: MemPolicyConfig,
}

impl BlueScaleConfig {
    /// Configuration for `num_clients` clients with the paper's defaults
    /// (quadtree, 8-entry buffers, 1-cycle response hops, unit service).
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero.
    pub fn for_clients(num_clients: usize) -> Self {
        assert!(num_clients > 0, "at least one client required");
        Self {
            num_clients,
            branch: 4,
            buffer_capacity: 8,
            response_latency_per_level: 1,
            memory_service_cycles: 1,
            dram: None,
            work_conserving: false,
            analysis_margin: 0.9,
            granularity_divisor: 1,
            low_level_policy: QueuePolicy::EarliestDeadline,
            soa_core: true,
            mem_policy: MemPolicyConfig::Unregulated,
        }
    }

    /// The analysis deadline for a task with `period` and `wcet` under
    /// this configuration's deflation margin.
    pub fn analysis_deadline(&self, period: u64, wcet: u64) -> u64 {
        let deflated = (self.analysis_margin * period as f64).floor() as u64;
        deflated.clamp(wcet.max(1), period)
    }

    /// Number of SE levels needed: the smallest `d ≥ 1` with
    /// `branch^d ≥ num_clients`.
    pub fn levels(&self) -> usize {
        let mut d = 1;
        let mut capacity = self.branch;
        while capacity < self.num_clients {
            capacity *= self.branch;
            d += 1;
        }
        d
    }

    /// Number of SEs at depth `x` (`branch^x`), independent of how many are
    /// actually populated with clients.
    pub fn elements_at(&self, depth: usize) -> usize {
        self.branch.pow(depth as u32)
    }

    /// Total SEs in the tree: `Σ_{x=0}^{levels-1} branch^x`.
    pub fn total_elements(&self) -> usize {
        (0..self.levels()).map(|d| self.elements_at(d)).sum()
    }

    /// Number of leaf SEs (depth `levels-1`).
    pub fn leaf_elements(&self) -> usize {
        self.elements_at(self.levels() - 1)
    }

    /// Leaf SE order and port for a client id.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn attach_point(&self, client: usize) -> (usize, usize) {
        assert!(client < self.num_clients, "client {client} out of range");
        (client / self.branch, client % self.branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_for_common_sizes() {
        assert_eq!(BlueScaleConfig::for_clients(4).levels(), 1);
        assert_eq!(BlueScaleConfig::for_clients(16).levels(), 2);
        assert_eq!(BlueScaleConfig::for_clients(64).levels(), 3);
        assert_eq!(BlueScaleConfig::for_clients(256).levels(), 4);
        // Non-power-of-four counts round up.
        assert_eq!(BlueScaleConfig::for_clients(5).levels(), 2);
        assert_eq!(BlueScaleConfig::for_clients(17).levels(), 3);
        assert_eq!(BlueScaleConfig::for_clients(1).levels(), 1);
    }

    #[test]
    fn total_elements_matches_geometric_sum() {
        assert_eq!(BlueScaleConfig::for_clients(16).total_elements(), 5);
        assert_eq!(BlueScaleConfig::for_clients(64).total_elements(), 21);
        assert_eq!(BlueScaleConfig::for_clients(256).total_elements(), 85);
    }

    #[test]
    fn binary_branch_supported() {
        let c = BlueScaleConfig {
            branch: 2,
            ..BlueScaleConfig::for_clients(8)
        };
        assert_eq!(c.levels(), 3);
        assert_eq!(c.total_elements(), 7);
    }

    #[test]
    fn attach_points_partition_clients() {
        let c = BlueScaleConfig::for_clients(16);
        assert_eq!(c.attach_point(0), (0, 0));
        assert_eq!(c.attach_point(3), (0, 3));
        assert_eq!(c.attach_point(4), (1, 0));
        assert_eq!(c.attach_point(15), (3, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn attach_point_rejects_out_of_range() {
        BlueScaleConfig::for_clients(4).attach_point(4);
    }

    #[test]
    fn se_index_parent_child_roundtrip() {
        let branch = 4;
        for depth in 0..3 {
            for order in 0..(branch as usize).pow(depth) {
                let se = SeIndex::new(depth as usize, order);
                for i in 0..branch as usize {
                    let child = se.child(branch as usize, i);
                    assert_eq!(child.parent(branch as usize), Some(se));
                    assert_eq!(child.port_in_parent(branch as usize), i);
                }
            }
        }
    }

    #[test]
    fn root_has_no_parent() {
        assert_eq!(SeIndex::new(0, 0).parent(4), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(SeIndex::new(1, 3).to_string(), "SE(1,3)");
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_rejected() {
        let _ = BlueScaleConfig::for_clients(0);
    }

    #[test]
    fn analysis_deadline_deflates_but_respects_wcet() {
        let c = BlueScaleConfig {
            analysis_margin: 0.75,
            ..BlueScaleConfig::for_clients(4)
        };
        assert_eq!(c.analysis_deadline(100, 5), 75);
        // Never below the WCET…
        assert_eq!(c.analysis_deadline(10, 9), 9);
        // …and never above the period.
        let full = BlueScaleConfig {
            analysis_margin: 1.0,
            ..BlueScaleConfig::for_clients(4)
        };
        assert_eq!(full.analysis_deadline(100, 5), 100);
    }
}
