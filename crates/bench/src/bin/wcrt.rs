//! Runs the worst-case-vs-average response time extension (the paper's
//! motivating "up to 6×" BlueTree measurement).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin wcrt -- [--clients N] [--trials N]`

use bluescale_bench::wcrt::{render, run, WcrtConfig};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = WcrtConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    let rows = run(&config);
    println!("{}", render(&config, &rows));
}
