//! Runs the analytic admission-rate extension (schedulability curve).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin admission -- [--clients N] [--trials N]`

use bluescale_bench::admission::{render, run, AdmissionConfig};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = AdmissionConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    let points = run(&config);
    println!("{}", render(&config, &points));
}
