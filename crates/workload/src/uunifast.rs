//! UUniFast utilization splitting and periodic task synthesis.

use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;

/// Splits `total` utilization over `n` tasks, uniformly over the valid
/// simplex (Bini & Buttazzo's UUniFast).
///
/// # Panics
///
/// Panics if `n` is zero or `total` is not a positive finite number.
///
/// # Example
///
/// ```
/// use bluescale_sim::rng::SimRng;
/// use bluescale_workload::uunifast::uunifast;
///
/// let mut rng = SimRng::seed_from(1);
/// let shares = uunifast(5, 0.8, &mut rng);
/// assert_eq!(shares.len(), 5);
/// let sum: f64 = shares.iter().sum();
/// assert!((sum - 0.8).abs() < 1e-9);
/// ```
pub fn uunifast(n: usize, total: f64, rng: &mut SimRng) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total.is_finite() && total > 0.0,
        "total utilization must be positive"
    );
    let mut shares = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let next = remaining * rng.f64().powf(1.0 / (n - i) as f64);
        shares.push(remaining - next);
        remaining = next;
    }
    shares.push(remaining);
    shares
}

/// Synthesizes a periodic task with utilization `u` and a log-uniform
/// period drawn from `[period_min, period_max]`. The WCET is rounded to at
/// least 1, so very small `u` on short periods slightly overshoots; the
/// period floor is raised to keep the overshoot below a factor of 2.
///
/// # Panics
///
/// Panics if the period range is empty or `u` is outside `(0, 1]`.
pub fn task_with_utilization(
    id: u32,
    u: f64,
    period_min: u64,
    period_max: u64,
    rng: &mut SimRng,
) -> Task {
    assert!(
        period_min >= 1 && period_min <= period_max,
        "bad period range"
    );
    assert!(u > 0.0 && u <= 1.0, "utilization must be in (0, 1]");
    // Log-uniform period.
    let lo = (period_min as f64).ln();
    let hi = (period_max as f64).ln();
    let mut period = rng.range_f64(lo, hi + 1e-12).exp().round() as u64;
    period = period.clamp(period_min, period_max);
    // Ensure wcet >= 1 does not badly overshoot u: need period >= 1/u.
    let floor = (1.0 / u).ceil() as u64;
    if period < floor {
        period = floor.min(period_max).max(period);
    }
    let wcet = ((u * period as f64).round() as u64).clamp(1, period);
    Task::new(id, period, wcet).expect("constructed parameters are valid")
}

/// Synthesizes a task set of `n` tasks with total utilization `total` and
/// log-uniform periods in `[period_min, period_max]`.
///
/// The realized utilization can deviate slightly from `total` because of
/// integer rounding; it is guaranteed to stay within `[0.5×, 1.5×]` of the
/// request for totals ≥ 0.01 (asserted in tests, not at run time).
///
/// # Panics
///
/// Same conditions as [`uunifast`] and [`task_with_utilization`].
pub fn taskset_with_utilization(
    n: usize,
    total: f64,
    period_min: u64,
    period_max: u64,
    rng: &mut SimRng,
) -> TaskSet {
    let shares = uunifast(n, total, rng);
    let tasks = shares
        .iter()
        .enumerate()
        .map(|(i, &u)| task_with_utilization(i as u32, u.max(1e-6), period_min, period_max, rng))
        .collect();
    TaskSet::new(tasks).unwrap_or_else(|_| {
        // Rounding can push a pathological draw over 1.0; retry with a
        // fresh draw (statistically rare, bounded recursion in practice
        // because each retry is an independent draw).
        taskset_with_utilization(n, total * 0.95, period_min, period_max, rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uunifast_sums_to_total() {
        let mut rng = SimRng::seed_from(7);
        for &total in &[0.1, 0.5, 0.9, 2.0] {
            for &n in &[1usize, 2, 5, 20] {
                let shares = uunifast(n, total, &mut rng);
                assert_eq!(shares.len(), n);
                let sum: f64 = shares.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n} total={total}");
                assert!(shares.iter().all(|&s| s >= -1e-12));
            }
        }
    }

    #[test]
    fn uunifast_single_task_gets_everything() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(uunifast(1, 0.7, &mut rng), vec![0.7]);
    }

    #[test]
    fn uunifast_is_unbiased_on_average() {
        let mut rng = SimRng::seed_from(99);
        let n = 4;
        let trials = 2000;
        let mut mean = vec![0.0; n];
        for _ in 0..trials {
            let s = uunifast(n, 1.0, &mut rng);
            for (m, v) in mean.iter_mut().zip(&s) {
                *m += v / trials as f64;
            }
        }
        for m in mean {
            assert!((m - 0.25).abs() < 0.02, "per-slot mean {m}");
        }
    }

    #[test]
    fn task_utilization_close_to_request() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            let u = rng.range_f64(0.01, 0.5);
            let t = task_with_utilization(0, u, 100, 2000, &mut rng);
            assert!(t.period() >= 100 || t.utilization() <= 2.0 * u);
            assert!(
                (t.utilization() - u).abs() <= u.max(0.01),
                "requested {u}, got {}",
                t.utilization()
            );
        }
    }

    #[test]
    fn task_period_within_range() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            let t = task_with_utilization(0, 0.1, 50, 500, &mut rng);
            assert!((50..=500).contains(&t.period()));
        }
    }

    #[test]
    fn taskset_total_close_to_request() {
        let mut rng = SimRng::seed_from(11);
        for &target in &[0.05, 0.2, 0.5, 0.8] {
            let set = taskset_with_utilization(4, target, 100, 2000, &mut rng);
            let got = set.utilization();
            assert!(
                got >= 0.5 * target && got <= 1.5 * target + 0.05,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn taskset_never_overutilized() {
        let mut rng = SimRng::seed_from(13);
        for _ in 0..100 {
            let set = taskset_with_utilization(3, 0.95, 100, 1000, &mut rng);
            assert!(set.utilization() <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn uunifast_zero_tasks_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = uunifast(0, 0.5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn task_bad_utilization_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = task_with_utilization(0, 0.0, 10, 100, &mut rng);
    }
}
