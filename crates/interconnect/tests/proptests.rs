//! Randomized tests of the interconnect building blocks, driven by a
//! fixed-seed [`SimRng`] sweep (the container has no registry access for
//! `proptest`; every case is reproducible by seed).

use bluescale_interconnect::buffer::{DelayLine, FifoBuffer};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;

/// A FIFO delivers exactly the accepted items, in acceptance order.
#[test]
fn fifo_preserves_acceptance_order() {
    let mut rng = SimRng::seed_from(0xF1F0);
    for case in 0..200 {
        let capacity = rng.range_usize(1, 16);
        let n_ops = rng.range_usize(1, 200);
        let mut fifo = FifoBuffer::with_capacity(capacity);
        let mut accepted: Vec<u32> = Vec::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if rng.chance(0.5) {
                if fifo.try_push(next).is_ok() {
                    accepted.push(next);
                }
                next += 1;
            } else if let Some(v) = fifo.pop() {
                delivered.push(v);
            }
            assert!(fifo.len() <= capacity, "case {case}: FIFO over capacity");
        }
        while let Some(v) = fifo.pop() {
            delivered.push(v);
        }
        assert_eq!(delivered, accepted, "case {case}");
    }
}

/// A delay line emits every item exactly `latency` cycles after its push,
/// in push order.
#[test]
fn delay_line_is_exact_and_ordered() {
    let mut rng = SimRng::seed_from(0xDE1A);
    for case in 0..200 {
        let latency = rng.range_u64(0, 10);
        let n_gaps = rng.range_usize(1, 50);
        let mut line = DelayLine::new(latency);
        let mut pushes: Vec<(u64, Cycle)> = Vec::new();
        let mut now: Cycle = 0;
        for i in 0..n_gaps {
            now += rng.range_u64(0, 5);
            line.push(i as u64, now);
            pushes.push((i as u64, now));
        }
        // Drain and verify emergence times.
        let mut emerged: Vec<(u64, Cycle)> = Vec::new();
        for t in 0..=now + latency {
            while let Some(item) = line.pop_ready(t) {
                emerged.push((item, t));
            }
        }
        assert_eq!(emerged.len(), pushes.len(), "case {case}");
        for ((item, at), (pushed_item, pushed_at)) in emerged.iter().zip(&pushes) {
            assert_eq!(item, pushed_item, "case {case}");
            // With a per-cycle drain, emergence is exactly push + latency.
            assert_eq!(*at, pushed_at + latency, "case {case}");
        }
        assert!(line.is_empty(), "case {case}");
    }
}

/// Jain fairness is always within [1/n, 1] for positive inputs.
#[test]
fn jain_fairness_bounds() {
    let mut rng = SimRng::seed_from(0x7A13);
    for case in 0..300 {
        let n = rng.range_usize(1, 64);
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.001, 1e6)).collect();
        let j = bluescale_interconnect::metrics::jain_fairness(&values);
        let n = values.len() as f64;
        assert!(j <= 1.0 + 1e-9, "case {case}: fairness {j} above 1");
        assert!(j >= 1.0 / n - 1e-9, "case {case}: fairness {j} below 1/n");
    }
}
