//! Fast sharded-execution smoke check for `scripts/check.sh`.
//!
//! Drives one [`ShardedSystem`] at 4 workers through live churn and all
//! five fault classes at once, then asserts request conservation —
//! every accepted request either completed exactly once, stayed in the
//! client backlog, is still inside the fabric or memory controller, or
//! was dropped by the response-drop fault — and that the run is
//! bit-identical to the serial SoA harness on the same seed. Exits
//! non-zero on violation.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin shard_smoke`

use bluescale::{BlueScaleConfig, BlueScaleInterconnect, ShardedSystem};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x54A2_D0CE;
const HORIZON: u64 = 20_000;
const WORKERS: usize = 4;

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED);
    plan.push(
        FaultKind::RogueDemand {
            client: 0,
            factor: 4,
        },
        FaultWindow::new(500, 3_000),
    )
    .push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 1,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    plan
}

fn churn_plan(sets: &[TaskSet]) -> ChurnPlan {
    let mut plan = ChurnPlan::new(SEED ^ 0xC482);
    plan.push(
        6_000,
        2,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).expect("valid task")])
                .expect("valid set"),
        },
    )
    .push(9_000, 9, ChurnKind::Leave)
    .push(
        13_000,
        9,
        ChurnKind::Join {
            tasks: sets[9].clone(),
        },
    );
    plan
}

fn config_for(clients: usize) -> BlueScaleConfig {
    let mut config = BlueScaleConfig::for_clients(clients);
    config.work_conserving = true;
    config.soa_core = true;
    config
}

fn main() {
    let mut rng = SimRng::seed_from(SEED);
    let sets = generate(
        &SyntheticConfig {
            clients: 64,
            util_lo: 0.05,
            util_hi: 0.10,
            max_tasks_per_client: 1,
            period_min: 2_000,
            period_max: 4_000,
            util_floor: 1e-4,
        },
        &mut rng,
    );

    let mut sys =
        ShardedSystem::new(config_for(sets.len()), &sets, WORKERS).expect("valid workload");
    sys.set_fault_plan(fault_plan());
    sys.set_churn_plan(churn_plan(&sets));
    let mut total = sys.run(HORIZON);

    let pending = sys.pending() as u64;
    let merged = sys.merged_registry();
    let injected = merged.counter(ComponentId::System, Counter::FaultsInjected);
    let dropped = merged.counter(ComponentId::System, Counter::ResponsesDropped);
    let admitted = merged.counter(ComponentId::System, Counter::Admitted);

    println!(
        "shard smoke: workers={} issued={} completed={} backlog={} pending={} \
         faults_injected={} dropped={} admitted={} ff_jumps={}",
        sys.workers(),
        total.issued(),
        total.completed(),
        total.backlog(),
        pending,
        injected,
        dropped,
        admitted,
        sys.fast_forward_jumps(),
    );

    assert_eq!(
        sys.workers(),
        WORKERS,
        "the smoke must actually run 4 workers"
    );
    assert!(injected > 0, "fault plan never fired");
    assert!(dropped > 0, "drop-response fault never fired");
    assert_eq!(admitted, 3, "all three churn events must be admitted");
    assert!(sys.fast_forward_jumps() > 0, "the sparse run must jump");
    assert_eq!(
        total.issued(),
        total.completed() + total.backlog() + pending + dropped,
        "request conservation violated: issued != completed + backlog + pending + dropped"
    );

    // The serial SoA harness on the same seed is the oracle: counts and
    // full sample sequences must be bit-identical at 4 workers.
    let ic = BlueScaleInterconnect::new(config_for(sets.len()), &sets).expect("valid workload");
    let mut oracle = System::new(Box::new(ic), &sets);
    oracle.set_fault_plan(fault_plan());
    oracle.set_churn_plan(churn_plan(&sets));
    let mut expected = oracle.run(HORIZON);
    assert_eq!(
        (
            expected.issued(),
            expected.completed(),
            expected.missed(),
            expected.backlog()
        ),
        (
            total.issued(),
            total.completed(),
            total.missed(),
            total.backlog()
        ),
        "sharded counts diverged from the serial oracle"
    );
    assert_eq!(
        expected.latency().as_slice(),
        total.latency().as_slice(),
        "sharded latency samples diverged from the serial oracle"
    );
    assert_eq!(
        expected.blocking().as_slice(),
        total.blocking().as_slice(),
        "sharded blocking samples diverged from the serial oracle"
    );
    println!("shard smoke: conservation holds, serial oracle matches");
}
