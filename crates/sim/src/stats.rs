//! Statistics collected during simulation runs.
//!
//! Two collectors cover every reporting need in the evaluation:
//!
//! * [`OnlineStats`] — constant-memory Welford accumulator for mean,
//!   variance, min and max (used for per-cycle counters).
//! * [`Samples`] — keeps raw observations so percentiles (p50/p95/p99/max)
//!   of latency distributions can be reported like the paper's box plots.

/// Constant-memory running statistics (Welford's online algorithm).
///
/// # Example
///
/// ```
/// use bluescale_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Deliberately NOT derived: the derive would zero `min`/`max`, clamping
// `min()` to ≤ 0 for all-positive data (and `max()` to ≥ 0 for all-negative
// data) on any default-constructed accumulator.
impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n); 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n-1); 0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    ///
    /// Empty sides contribute nothing: merging an empty `other` is a no-op
    /// and merging into an empty `self` copies `other` wholesale, so the
    /// `±INFINITY` sentinels of an empty accumulator never leak into
    /// `min()`/`max()` of the result.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collector that retains raw observations for percentile reporting.
///
/// # Example
///
/// ```
/// use bluescale_sim::stats::Samples;
///
/// let mut s: Samples = (1..=100).map(|x| x as f64).collect();
/// assert_eq!(s.percentile(50.0), Some(50.0));
/// assert_eq!(s.percentile(99.0), Some(99.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
    /// Lifetime number of observations pushed, including evicted ones.
    total_pushed: u64,
    /// Observations discarded by window eviction (never by the caller).
    evicted: u64,
    /// `Some(cap)` bounds memory: at least the most recent `cap`
    /// observations are retained and never more than `2·cap - 1` (eviction
    /// is amortized). `None` (the default) retains everything, exactly as
    /// before.
    window: Option<usize>,
}

impl Samples {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collector with an optional retention window.
    pub fn with_window(window: Option<usize>) -> Self {
        let mut s = Self::default();
        s.set_window(window);
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
        self.total_pushed += 1;
        if let Some(cap) = self.window {
            // Amortized eviction: let the vector grow to 2×cap, then drop
            // the oldest half in one memmove instead of shifting per push.
            if self.values.len() >= cap.saturating_mul(2) {
                self.evict_to(cap);
            }
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The `p`-th percentile (0..=100) using the nearest-rank method:
    /// the smallest observation such that at least `p`% of the data is
    /// less than or equal to it (`rank = ⌈p/100 · n⌉`, with `p = 0`
    /// mapping to the minimum). Always returns an actual observation;
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.values.is_empty() {
            return None;
        }
        let n = self.values.len();
        // Multiply before dividing so exact cases (e.g. p=7, n=100) don't
        // pick up a ULP of error and ceil to the wrong rank.
        let rank = (p * n as f64 / 100.0).ceil() as usize;
        let idx = rank.clamp(1, n) - 1;
        if self.window.is_some() {
            // Windowed collectors must keep insertion order intact (it is
            // the coordinate system for `tail_from` cursors and eviction),
            // so rank on a scratch copy instead of sorting in place.
            let mut scratch = self.values.clone();
            scratch.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
            return Some(scratch[idx]);
        }
        self.ensure_sorted();
        Some(self.values[idx])
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&mut self) -> Option<f64> {
        if self.window.is_some() {
            return self.values.iter().copied().reduce(f64::max);
        }
        self.ensure_sorted();
        self.values.last().copied()
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&mut self) -> Option<f64> {
        if self.window.is_some() {
            return self.values.iter().copied().reduce(f64::min);
        }
        self.ensure_sorted();
        self.values.first().copied()
    }

    /// Population variance; `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(
            self.values
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f64>()
                / self.values.len() as f64,
        )
    }

    /// Borrowed view of the raw observations (unsorted order not guaranteed).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Lifetime number of observations pushed, including evicted ones.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Observations discarded so far by window eviction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retention window, if bounded.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Sets or clears the retention window. A cap of 0 is clamped to 1.
    ///
    /// Shrinking below the current length evicts the oldest observations
    /// immediately. Windowed collectors preserve insertion order (they never
    /// sort in place), so enable the window before querying percentiles on
    /// an unbounded collector — an earlier in-place sort makes "oldest"
    /// meaningless for the retained prefix.
    pub fn set_window(&mut self, window: Option<usize>) {
        self.window = window.map(|cap| cap.max(1));
        if let Some(cap) = self.window {
            if self.values.len() > cap {
                self.evict_to(cap);
            }
        }
    }

    /// Returns the observations pushed at or after `cursor` (a position in
    /// `total_pushed` coordinates, i.e. the value of [`Samples::total_pushed`]
    /// at the previous visit), plus how many of them were already evicted.
    ///
    /// Unsorted collectors and windowed collectors keep insertion order, so
    /// the returned slice is exactly the new observations in push order.
    /// Advance the cursor to `total_pushed()` after consuming the slice.
    pub fn tail_from(&self, cursor: u64) -> (&[f64], u64) {
        let new = self.total_pushed.saturating_sub(cursor);
        let retained = self.values.len() as u64;
        let lost = new.saturating_sub(retained);
        let keep = (new - lost) as usize;
        (&self.values[self.values.len() - keep..], lost)
    }

    fn evict_to(&mut self, cap: usize) {
        let excess = self.values.len().saturating_sub(cap);
        if excess > 0 {
            self.values.drain(..excess);
            self.evicted += excess as u64;
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
            self.sorted = true;
        }
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_single_value() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn online_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.population_variance() - 2.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = OnlineStats::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    #[test]
    fn online_default_matches_new() {
        // Regression: the old `#[derive(Default)]` zeroed min/max, so a
        // default-constructed accumulator reported min() ≤ 0 for
        // all-positive data.
        assert_eq!(OnlineStats::default(), OnlineStats::new());
        let mut s = OnlineStats::default();
        s.push(5.0);
        s.push(9.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(9.0));
        let mut neg = OnlineStats::default();
        neg.push(-3.0);
        assert_eq!(neg.max(), Some(-3.0));
    }

    #[test]
    fn online_merge_empty_sides_preserve_min_max() {
        // Empty-other: no-op, including the sentinels.
        let mut a = OnlineStats::default();
        a.push(2.0);
        a.push(8.0);
        a.merge(&OnlineStats::default());
        assert_eq!((a.min(), a.max()), (Some(2.0), Some(8.0)));
        // Empty-self: wholesale copy, no 0.0 or ±INFINITY leakage.
        let mut b = OnlineStats::default();
        b.merge(&a);
        assert_eq!((b.min(), b.max()), (Some(2.0), Some(8.0)));
        assert_eq!(b.count(), 2);
        // Empty-empty: still empty.
        let mut e = OnlineStats::default();
        e.merge(&OnlineStats::default());
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
    }

    #[test]
    fn online_merge_matches_sequential_property_sweep() {
        use crate::rng::SimRng;

        let mut rng = SimRng::seed_from(0xB1E5_CA1E);
        for case in 0..64 {
            let n = rng.range_usize(0, 40);
            let split = if n == 0 { 0 } else { rng.range_usize(0, n) };
            let data: Vec<f64> = (0..n).map(|_| rng.range_f64(-50.0, 50.0)).collect();

            let mut whole = OnlineStats::default();
            for &x in &data {
                whole.push(x);
            }
            let mut left = OnlineStats::default();
            let mut right = OnlineStats::default();
            for &x in &data[..split] {
                left.push(x);
            }
            for &x in &data[split..] {
                right.push(x);
            }
            left.merge(&right);

            assert_eq!(left.count(), whole.count(), "case {case}: count");
            assert!(
                (left.mean() - whole.mean()).abs() < 1e-9,
                "case {case}: mean {} vs {}",
                left.mean(),
                whole.mean()
            );
            assert!(
                (left.population_variance() - whole.population_variance()).abs() < 1e-9,
                "case {case}: variance"
            );
            assert_eq!(left.min(), whole.min(), "case {case}: min");
            assert_eq!(left.max(), whole.max(), "case {case}: max");
        }
    }

    #[test]
    fn samples_percentiles() {
        let mut s: Samples = (1..=101).map(|x| x as f64).collect();
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(51.0));
        assert_eq!(s.percentile(100.0), Some(101.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(101.0));
    }

    #[test]
    fn samples_percentile_nearest_rank_table() {
        // (data, p, expected) — hand-computed nearest-rank values.
        let cases: &[(&[f64], f64, f64)] = &[
            // Single sample: every percentile is that sample.
            (&[7.0], 0.0, 7.0),
            (&[7.0], 50.0, 7.0),
            (&[7.0], 100.0, 7.0),
            // Two samples: the median is the FIRST order statistic
            // (⌈0.5·2⌉ = 1); the old round((n-1)·p) formula returned 9.
            (&[3.0, 9.0], 50.0, 3.0),
            (&[3.0, 9.0], 50.1, 9.0),
            (&[3.0, 9.0], 0.0, 3.0),
            (&[3.0, 9.0], 100.0, 9.0),
            // Four samples: p25 → rank 1, p75 → rank 3.
            (&[1.0, 2.0, 3.0, 4.0], 25.0, 1.0),
            (&[1.0, 2.0, 3.0, 4.0], 75.0, 3.0),
            (&[1.0, 2.0, 3.0, 4.0], 75.1, 4.0),
            // Duplicate-heavy vector: ranks land inside the duplicate runs.
            (
                &[1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0],
                10.0,
                1.0,
            ),
            (
                &[1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0],
                50.0,
                5.0,
            ),
            (
                &[1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0],
                90.0,
                5.0,
            ),
            (
                &[1.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0],
                91.0,
                9.0,
            ),
            // All-equal values: any percentile is the value.
            (&[4.0, 4.0, 4.0], 0.0, 4.0),
            (&[4.0, 4.0, 4.0], 100.0, 4.0),
        ];
        for &(data, p, expected) in cases {
            let mut s: Samples = data.iter().copied().collect();
            assert_eq!(
                s.percentile(p),
                Some(expected),
                "percentile({p}) of {data:?}"
            );
        }
        let mut s: Samples = (1..=100).map(|x| x as f64).collect();
        for k in 1..=100u32 {
            assert_eq!(s.percentile(k as f64), Some(k as f64), "p{k} of 1..=100");
        }
        assert_eq!(s.percentile(0.0), Some(1.0));
        // Percentiles are always actual observations (order statistics).
        assert_eq!(s.percentile(99.5), Some(100.0));
    }

    #[test]
    fn samples_empty_returns_none() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn samples_mean_and_variance() {
        let s: Samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn samples_push_after_percentile_stays_correct() {
        let mut s = Samples::new();
        s.push(5.0);
        s.push(1.0);
        assert_eq!(s.percentile(100.0), Some(5.0));
        s.push(10.0);
        assert_eq!(s.percentile(100.0), Some(10.0));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn samples_bad_percentile_panics() {
        let mut s: Samples = [1.0].into_iter().collect();
        let _ = s.percentile(101.0);
    }

    #[test]
    fn samples_unwindowed_behavior_unchanged() {
        // The default collector must behave exactly as before the window
        // mode existed: retain everything, report nothing evicted.
        let mut s = Samples::new();
        for x in 1..=1000 {
            s.push(x as f64);
        }
        assert_eq!(s.len(), 1000);
        assert_eq!(s.total_pushed(), 1000);
        assert_eq!(s.evicted(), 0);
        assert_eq!(s.window(), None);
        assert_eq!(s.percentile(99.0), Some(990.0));
    }

    #[test]
    fn samples_window_bounds_memory() {
        let mut s = Samples::with_window(Some(100));
        for x in 1..=10_000 {
            s.push(x as f64);
        }
        assert!(s.len() >= 100 && s.len() < 200, "len = {}", s.len());
        assert_eq!(s.total_pushed(), 10_000);
        assert_eq!(s.evicted() + s.len() as u64, 10_000);
        // Retained values are the most recent ones, in push order.
        let tail = s.as_slice();
        let first = tail[0];
        for (i, &v) in tail.iter().enumerate() {
            assert_eq!(v, first + i as f64);
        }
        assert_eq!(tail.last().copied(), Some(10_000.0));
    }

    #[test]
    fn samples_window_percentiles_match_retained_set() {
        let mut s = Samples::with_window(Some(50));
        for x in 1..=137 {
            s.push(x as f64);
        }
        let retained: Vec<f64> = s.as_slice().to_vec();
        let mut reference: Samples = retained.iter().copied().collect();
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), reference.percentile(p), "p{p}");
        }
        assert_eq!(s.min(), reference.min());
        assert_eq!(s.max(), reference.max());
        // Percentile queries must not disturb insertion order.
        assert_eq!(s.as_slice(), retained.as_slice());
    }

    #[test]
    fn samples_tail_from_tracks_pushes_and_eviction() {
        let mut s = Samples::with_window(Some(4));
        s.push(1.0);
        s.push(2.0);
        let (tail, lost) = s.tail_from(0);
        assert_eq!(tail, &[1.0, 2.0]);
        assert_eq!(lost, 0);
        let cursor = s.total_pushed();
        for x in 3..=20 {
            s.push(x as f64);
        }
        let (tail, lost) = s.tail_from(cursor);
        // Everything since the cursor is 3..=20 (18 values); whatever the
        // window evicted is reported as lost, the rest in push order.
        assert_eq!(lost + tail.len() as u64, 18);
        let expected_start = 21.0 - tail.len() as f64;
        for (i, &v) in tail.iter().enumerate() {
            assert_eq!(v, expected_start + i as f64);
        }
        // A cursor at the current position yields an empty tail.
        let (tail, lost) = s.tail_from(s.total_pushed());
        assert!(tail.is_empty());
        assert_eq!(lost, 0);
    }

    #[test]
    fn samples_set_window_shrinks_immediately() {
        let mut s = Samples::new();
        for x in 1..=10 {
            s.push(x as f64);
        }
        s.set_window(Some(3));
        assert_eq!(s.as_slice(), &[8.0, 9.0, 10.0]);
        assert_eq!(s.evicted(), 7);
        s.set_window(None);
        for x in 11..=100 {
            s.push(x as f64);
        }
        assert_eq!(s.len(), 93);
    }
}
