//! Runs the temporal-isolation extension (rogue client flooding).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin isolation -- [--clients N] [--trials N] [--factor N]`

use bluescale_bench::isolation::{render, run, IsolationConfig};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = IsolationConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    config.misbehaviour_factor = arg_u64(&args, "--factor", config.misbehaviour_factor);
    let rows = run(&config);
    println!("{}", render(&config, &rows));
}
