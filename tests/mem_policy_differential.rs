//! Differential tests for the memory-policy seam (DESIGN.md §16).
//!
//! Two obligations, one suite:
//!
//! * **`Unregulated` is bit-identical to having no policy at all.** The
//!   default policy must leave every engine on its exact pre-policy code
//!   path. These tests run the identical seeded workload on the legacy
//!   per-SE engine (the differential oracle), the serial SoA engine and
//!   the sharded engine at 1/2/4 workers, over dense, sparse+faulted and
//!   churned scenarios, and require bit-identical fingerprints — counts,
//!   per-client counts, per-SE forwards, per-port grants and
//!   replenishments, and full latency/blocking sample sequences.
//! * **Active policies agree across engines.** A policy's defer verdict is
//!   a pure function of `(now, candidates)`, and all three engines feed it
//!   the same candidates in the same order — so per-bank regulation,
//!   blacklisting and deterministic memory must also fingerprint
//!   identically on legacy, SoA and sharded runs, with the deferral
//!   actually biting (the check would be vacuous otherwise).

use bluescale::{BlueScaleConfig, BlueScaleInterconnect, ShardedSystem};
use bluescale_interconnect::system::System;
use bluescale_mem::MemPolicyConfig;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x3E40;
const HORIZON: u64 = 20_000;
const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

/// Low-utilization, long-period workload: real idle stretches, so the
/// fast-forward path runs against the policy's `next_unblock` bound.
fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn config_for(sets: &[TaskSet], soa_core: bool, policy: &MemPolicyConfig) -> BlueScaleConfig {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    config.soa_core = soa_core;
    config.mem_policy = policy.clone();
    config
}

fn build_serial(
    sets: &[TaskSet],
    soa_core: bool,
    policy: &MemPolicyConfig,
) -> System<BlueScaleInterconnect> {
    let ic =
        BlueScaleInterconnect::new(config_for(sets, soa_core, policy), sets).expect("valid sets");
    System::new(Box::new(ic), sets)
}

fn build_sharded(sets: &[TaskSet], policy: &MemPolicyConfig, workers: usize) -> ShardedSystem {
    ShardedSystem::new(config_for(sets, true, policy), sets, workers).expect("valid sets")
}

/// Everything two runs must agree on to count as bit-identical (the
/// fingerprint of `soa_differential.rs`/`shard_differential.rs`).
fn serial_fingerprint(
    sys: &mut System<BlueScaleInterconnect>,
    horizon: u64,
) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// The sharded twin of [`serial_fingerprint`], field for field.
fn shard_fingerprint(sys: &mut ShardedSystem, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.forward_counts() {
        counts.extend(level);
    }
    let config = sys.config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                let ports =
                    sys.fabric_metrics()
                        .port_counters(depth, order, config.branch, counter);
                counts.extend(ports);
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// Runs the legacy oracle, the serial SoA twin and the sharded twin at
/// every sweep worker count under `policy`; all fingerprints must be
/// bit-identical. Returns the oracle fingerprint for extra assertions.
fn assert_engines_agree(
    sets: &[TaskSet],
    policy: &MemPolicyConfig,
    prepare: &dyn Fn(&mut System<BlueScaleInterconnect>),
    prepare_sharded: &dyn Fn(&mut ShardedSystem),
    label: &str,
) -> (Vec<u64>, Vec<f64>) {
    let mut oracle = build_serial(sets, false, policy);
    prepare(&mut oracle);
    let expected = serial_fingerprint(&mut oracle, HORIZON);
    assert!(
        expected.0[0] > 0,
        "{label}: the workload must issue requests"
    );
    let mut soa = build_serial(sets, true, policy);
    prepare(&mut soa);
    let got = serial_fingerprint(&mut soa, HORIZON);
    assert_eq!(
        got, expected,
        "{label}: SoA engine must match the legacy oracle"
    );
    for &workers in &WORKER_SWEEP {
        let mut sharded = build_sharded(sets, policy, workers);
        prepare_sharded(&mut sharded);
        let got = shard_fingerprint(&mut sharded, HORIZON);
        assert_eq!(
            got, expected,
            "{label}: sharded run must be bit-identical at {workers} workers"
        );
    }
    expected
}

#[test]
fn unregulated_dense_is_bit_identical_across_engines() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    assert_engines_agree(
        &sets,
        &MemPolicyConfig::Unregulated,
        &|_| {},
        &|_| {},
        "unregulated/dense",
    );
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RogueDemand {
            client: 1,
            factor: 4,
        },
        FaultWindow::new(2_000, 6_000),
    )
    .push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    plan
}

#[test]
fn unregulated_sparse_faulted_is_bit_identical_across_engines() {
    // All five fault classes live at once: the policy mask composes with
    // the stuck-grant mask identically on every engine, and fast-forward
    // still jumps.
    let sets = task_sets(&sparse_config(16));
    assert_engines_agree(
        &sets,
        &MemPolicyConfig::Unregulated,
        &|sys| sys.set_fault_plan(fault_plan()),
        &|sys| sys.set_fault_plan(fault_plan()),
        "unregulated/sparse+faults",
    );
}

#[test]
fn unregulated_churn_is_bit_identical_across_engines() {
    use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
    let sets = task_sets(&sparse_config(16));
    let plan = {
        let sets = sets.clone();
        move || {
            let mut plan = ChurnPlan::new(SEED ^ 0xC482);
            plan.push(
                6_000,
                2,
                ChurnKind::UpdateTasks {
                    tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
                },
            )
            .push(9_000, 9, ChurnKind::Leave)
            .push(
                13_000,
                9,
                ChurnKind::Join {
                    tasks: sets[9].clone(),
                },
            );
            plan
        }
    };
    assert_engines_agree(
        &sets,
        &MemPolicyConfig::Unregulated,
        &|sys| sys.set_churn_plan(plan()),
        &|sys| sys.set_churn_plan(plan()),
        "unregulated/churn",
    );
}

#[test]
fn active_policies_agree_across_engines() {
    // The tentpole guarantee beyond bit-identity of the default: each
    // *active* policy also fingerprints identically on legacy, SoA and
    // sharded runs — the defer verdict is a pure function of
    // (now, candidates), and every engine presents the same candidates.
    let sets = task_sets(&SyntheticConfig::fig6(16));
    for policy in [
        MemPolicyConfig::PerBankRegulation {
            window: 400,
            budget: 8,
        },
        MemPolicyConfig::Blacklisting {
            threshold: 6,
            clear_interval: 2_000,
        },
        MemPolicyConfig::DeterministicMemory {
            dm_clients: vec![0, 5, 11],
        },
    ] {
        let label = format!("active/{}", policy.name());
        assert_engines_agree(&sets, &policy, &|_| {}, &|_| {}, &label);
    }
}

#[test]
fn active_regulation_actually_defers_in_the_differential_workload() {
    // Guards the agreement test against vacuity: under the dense fig6
    // workload the tight budget must actually defer grants on both serial
    // engines (same count, since the runs are bit-identical).
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let policy = MemPolicyConfig::PerBankRegulation {
        window: 400,
        budget: 8,
    };
    let mut deferred = Vec::new();
    for soa_core in [false, true] {
        let mut sys = build_serial(&sets, soa_core, &policy);
        sys.run(HORIZON);
        deferred.push(
            sys.merged_registry()
                .counter(ComponentId::Memory, Counter::PolicyDeferred),
        );
    }
    assert!(deferred[0] > 0, "the budget must bite in this workload");
    assert_eq!(deferred[0], deferred[1], "engines defer identically");
}
