//! Differential tests pinning the next-event fast-forward path to the
//! per-cycle baseline.
//!
//! The fast-forward contract: with the flag on, `System::run` may jump over
//! stretches every component proved idle, advancing server counters in
//! closed form — and **nothing externally visible may change**. These tests
//! enforce that bit-for-bit (counts, per-client counts, per-SE forwards,
//! per-port grants *and replenishments*, full latency/blocking sample
//! sequences) across:
//!
//! * the paper's fig6 workloads in both strict and work-conserving modes,
//! * a rogue client overdriving its declared demand,
//! * a windowed fault plan with guards armed (the adversarial case: fault
//!   windows and guard timers must all veto or bound the jump correctly),
//! * a sparse workload where the test additionally asserts that jumps
//!   actually happened, so the equality checks are not vacuous.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::guard::{GuardConfig, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::Counter;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0xFF0D;
const HORIZON: u64 = 20_000;

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

/// A low-utilization workload with long periods: mostly idle cycles, so the
/// fast path has real stretches to jump over.
fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn build_system(sets: &[TaskSet], work_conserving: bool) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = work_conserving;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

/// Everything two runs must agree on to count as bit-identical.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// Runs the same workload with fast-forward on and off and asserts the
/// fingerprints match. Returns the fast-forward system for extra checks.
fn assert_modes_agree(
    mut fast: System<BlueScaleInterconnect>,
    mut slow: System<BlueScaleInterconnect>,
    label: &str,
) -> System<BlueScaleInterconnect> {
    fast.set_fast_forward(true);
    slow.set_fast_forward(false);
    let a = fingerprint(&mut fast, HORIZON);
    let b = fingerprint(&mut slow, HORIZON);
    assert!(b.0[0] > 0, "{label}: the workload must issue requests");
    assert_eq!(a, b, "{label}: fast-forward must be bit-identical");
    assert_eq!(
        slow.fast_forward_jumps(),
        0,
        "{label}: the per-cycle oracle must never jump"
    );
    fast
}

#[test]
fn fig6_work_conserving_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let fast = build_system(&sets, true);
    let slow = build_system(&sets, true);
    assert_modes_agree(fast, slow, "fig6/work-conserving");
}

#[test]
fn fig6_strict_mode_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let fast = build_system(&sets, false);
    let slow = build_system(&sets, false);
    assert_modes_agree(fast, slow, "fig6/strict");
}

#[test]
fn rogue_client_is_bit_identical() {
    // A misbehaving generator floods its port with 5x its declared demand;
    // the backlogged client must veto every jump attempt while it drains.
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let mut fast = build_system(&sets, false);
    let mut slow = build_system(&sets, false);
    fast.set_misbehaviour_factor(0, 5);
    slow.set_misbehaviour_factor(0, 5);
    assert_modes_agree(fast, slow, "rogue client");
}

fn faulted_guarded_system(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
    let mut sys = build_system(sets, true);
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    sys.set_fault_plan(plan);
    // Sub-window timeout (1024 < period_max 4000) on purpose: the
    // differential needs live retry traffic to pin.
    sys.set_guards_unchecked(GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 1_024,
            max_retries: 3,
        }),
        quarantine: None,
    });
    sys
}

#[test]
fn fault_plan_with_guards_is_bit_identical() {
    // The adversarial composition: fault windows must force per-cycle
    // stepping while active and bound jumps when upcoming; guard timers
    // (miss detection + watchdog retries) must wake the harness exactly
    // when they act. Sparse workload so jumps are actually attempted.
    let sets = task_sets(&sparse_config(16));
    let fast = faulted_guarded_system(&sets);
    let slow = faulted_guarded_system(&sets);
    let fast = assert_modes_agree(fast, slow, "faults + guards");
    assert!(
        fast.fast_forwarded_cycles() > 0,
        "the sparse faulted run must still find idle stretches to jump"
    );
}

#[test]
fn sparse_workload_fast_forwards_and_stays_bit_identical() {
    let sets = task_sets(&sparse_config(16));
    let fast = build_system(&sets, true);
    let slow = build_system(&sets, true);
    let fast = assert_modes_agree(fast, slow, "sparse workload");
    assert!(
        fast.fast_forward_jumps() > 0,
        "the equality check must not be vacuous: jumps must have happened"
    );
    assert!(
        fast.fast_forwarded_cycles() > HORIZON / 4,
        "a ~7% utilization workload should skip a large share of cycles, \
         skipped only {} of {HORIZON}",
        fast.fast_forwarded_cycles()
    );
}

#[test]
fn warmup_runs_agree_across_modes() {
    // run_with_warmup composes advance_to + reset + run; both segments must
    // fast-forward identically.
    let sets = task_sets(&sparse_config(16));
    let mut fast = build_system(&sets, true);
    let mut slow = build_system(&sets, true);
    slow.set_fast_forward(false);
    let mut a = fast.run_with_warmup(4_000, HORIZON);
    let mut b = slow.run_with_warmup(4_000, HORIZON);
    assert_eq!(
        (a.issued(), a.completed(), a.missed(), a.backlog()),
        (b.issued(), b.completed(), b.missed(), b.backlog())
    );
    assert_eq!(a.latency().as_slice(), b.latency().as_slice());
    assert_eq!(a.blocking().as_slice(), b.blocking().as_slice());
}
