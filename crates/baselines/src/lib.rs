//! Baseline memory interconnects the paper compares BlueScale against
//! (Section 6 experimental setup):
//!
//! * [`axi::AxiIcRt`] — **AXI-IC^RT** (Jiang et al., RTAS 2021): a
//!   *centralized* real-time interconnect. A monolithic switch box admits
//!   one request per cycle; a central arbiter holds a global EDF view.
//!   Near-optimal scheduling, but admission serializes all clients, client
//!   ports are FIFO-ordered (AXI ordering → head-of-line blocking) and the
//!   central arbiter adds pipeline latency that grows with the port count.
//! * [`bluetree::BlueTree`] — a *distributed* binary multiplexer tree
//!   (Audsley 2013). Each 2-to-1 node applies a static blocking-factor
//!   heuristic: every α requests from the high-priority (left) input, at
//!   most one from the right may pass. Deadline-agnostic by design.
//! * [`bluetree::BlueTree::smooth`] — **BlueTree-Smooth** (Wang et al.,
//!   RTAS 2020): BlueTree with deeper stage buffers that smooth bursts.
//! * [`gsmtree::GsmTree`] — **GSMTree** (Gomony et al., DATE 2015 / TC
//!   2016): a globally-arbitrated tree using TDM slots. `GSMTree-TDM`
//!   reserves equal slots for every client; `GSMTree-FBSP` reserves slots
//!   proportional to each client's workload.
//!
//! All baselines implement the same
//! [`bluescale_interconnect::Interconnect`] trait as BlueScale itself, so
//! the experiment harness treats them interchangeably.

#![warn(missing_docs)]

pub mod axi;
pub mod bluetree;
pub mod gsmtree;

pub use axi::AxiIcRt;
pub use bluetree::BlueTree;
pub use gsmtree::{GsmTree, SlotPolicy};

use bluescale_interconnect::buffer::FifoBuffer;
use bluescale_interconnect::MemoryRequest;

/// Charges one blocked cycle to every request in `fifo` whose deadline is
/// earlier than the `served_deadline` of the request just forwarded —
/// shared blocking-latency accounting for all FIFO-based baselines.
pub(crate) fn charge_fifo(fifo: &mut FifoBuffer<MemoryRequest>, served_deadline: u64) {
    for r in fifo.iter_mut() {
        if r.deadline < served_deadline {
            r.blocked_cycles += 1;
        }
    }
}

/// Smallest power of two ≥ `n` (tree baselines round their leaf count up;
/// surplus leaves idle).
pub(crate) fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(16), 16);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(64), 64);
    }

    #[test]
    fn charge_fifo_earlier_deadlines_only() {
        let mut f = FifoBuffer::with_capacity(4);
        for (id, dl) in [(1u64, 10u64), (2, 50)] {
            f.try_push(MemoryRequest {
                id,
                client: 0,
                task: 0,
                addr: 0,
                kind: AccessKind::Read,
                issued_at: 0,
                deadline: dl,
                blocked_cycles: 0,
            })
            .unwrap();
        }
        charge_fifo(&mut f, 30);
        let blocked: Vec<u64> = f.iter().map(|r| r.blocked_cycles).collect();
        assert_eq!(blocked, vec![1, 0]);
    }
}
