//! Exact rational accumulation of utilizations and bandwidths.
//!
//! The admission checks of the composition (`Σ Cᵢ/Tᵢ ≤ 1` for task sets,
//! `Σ Θᵢ/Πᵢ ≤ 1` at the root) were originally computed in `f64` with a
//! `1e-9` tolerance. That tolerance can *admit* a system whose exact sum is
//! marginally above 1 — precisely the case the check exists to reject. This
//! module accumulates the sum exactly in `u128` rational arithmetic
//! (gcd-reduced fractions), so the comparison against 1 is exact for every
//! input the rest of the analysis can produce.
//!
//! Should the reduced denominator ever overflow `u128` (astronomically
//! unlikely for periods bounded by the interface-selection cap, but possible
//! for adversarial 64-bit periods), the accumulator falls back to a
//! *conservative* truncated fixed-point sum: it may then reject a sum lying
//! within `terms · 2⁻⁶⁴` below 1, but it can never admit a sum above 1.
//! Rejection is the safe direction for an admission test.

use crate::Time;

/// Greatest common divisor (Euclid).
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// `⌊num · 2⁶⁴ / den⌋` for `num < den < 2¹²⁷`, by binary long division
/// (no 256-bit intermediate needed).
fn scale_frac(num: u128, den: u128) -> u128 {
    debug_assert!(num < den && den < 1u128 << 127);
    let mut quotient = 0u128;
    let mut rem = num;
    for _ in 0..64 {
        quotient <<= 1;
        rem <<= 1; // rem < den < 2^127, so this cannot overflow
        if rem >= den {
            rem -= den;
            quotient |= 1;
        }
    }
    quotient
}

/// Denominators are kept below this so the fallback's long division cannot
/// overflow; a reduced lcm at or above it triggers the fixed-point fallback.
const DEN_LIMIT: u128 = 1u128 << 127;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Exact value `whole + num/den` with `num < den`, `gcd(num, den) = 1`.
    Exact { whole: u128, num: u128, den: u128 },
    /// Truncated fixed-point lower bound at scale `2⁶⁴` plus the number of
    /// truncations folded in (each truncation loses `< 2⁻⁶⁴`).
    Approx { fixed_lo: u128, slop: u64 },
    /// The fixed-point accumulator itself overflowed: the sum is vastly
    /// above any admissible limit.
    Saturated,
}

/// Exact accumulator for sums of non-negative rationals `numer/denom`.
///
/// # Example
///
/// ```
/// use bluescale_rt::rational::UtilizationSum;
///
/// let mut sum = UtilizationSum::new();
/// sum.add(1, 3);
/// sum.add(1, 3);
/// sum.add(1, 3);
/// assert!(sum.at_most_one()); // exactly 1, admitted — no tolerance games
/// sum.add(1, u64::MAX);
/// assert!(!sum.at_most_one()); // exceeds 1 by 1/u64::MAX, rejected
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationSum {
    state: State,
}

impl Default for UtilizationSum {
    fn default() -> Self {
        Self::new()
    }
}

impl UtilizationSum {
    /// The empty sum (exactly zero).
    pub fn new() -> Self {
        Self {
            state: State::Exact {
                whole: 0,
                num: 0,
                den: 1,
            },
        }
    }

    /// Adds `numer / denom` to the sum.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn add(&mut self, numer: Time, denom: Time) {
        assert!(denom > 0, "denominator must be positive");
        let whole_part = (numer / denom) as u128;
        let rem = (numer % denom) as u128;
        let denom = denom as u128;
        match self.state {
            State::Exact { whole, num, den } => {
                match Self::add_exact(whole, num, den, whole_part, rem, denom) {
                    Some(state) => self.state = state,
                    None => {
                        // Downgrade the exact prefix (one truncation), then
                        // fold the new term through the fallback path.
                        self.state = Self::downgrade(whole, num, den);
                        self.add_approx(whole_part, rem, denom);
                    }
                }
            }
            State::Approx { .. } => self.add_approx(whole_part, rem, denom),
            State::Saturated => {}
        }
    }

    fn add_exact(
        whole: u128,
        num: u128,
        den: u128,
        whole_part: u128,
        rem: u128,
        denom: u128,
    ) -> Option<State> {
        let mut whole = whole.checked_add(whole_part)?;
        if rem == 0 {
            return Some(State::Exact { whole, num, den });
        }
        // num/den + rem/denom = (num·(l/den) + rem·(l/denom)) / l,  l = lcm.
        let g = gcd(den, denom);
        let lcm = (den / g).checked_mul(denom)?;
        if lcm >= DEN_LIMIT {
            return None;
        }
        let scaled = num
            .checked_mul(lcm / den)?
            .checked_add(rem.checked_mul(lcm / denom)?)?;
        whole = whole.checked_add(scaled / lcm)?;
        let mut num = scaled % lcm;
        let mut den = lcm;
        if num == 0 {
            den = 1;
        } else {
            let g = gcd(num, den);
            num /= g;
            den /= g;
        }
        Some(State::Exact { whole, num, den })
    }

    fn downgrade(whole: u128, num: u128, den: u128) -> State {
        let Some(base) = whole.checked_shl(64).filter(|b| b >> 64 == whole) else {
            return State::Saturated;
        };
        match base.checked_add(scale_frac(num, den)) {
            Some(fixed_lo) => State::Approx { fixed_lo, slop: 1 },
            None => State::Saturated,
        }
    }

    fn add_approx(&mut self, whole_part: u128, rem: u128, denom: u128) {
        let State::Approx { fixed_lo, slop } = self.state else {
            return;
        };
        // rem < denom ≤ 2⁶⁴, so rem · 2⁶⁴ fits in u128.
        let term = match whole_part
            .checked_shl(64)
            .filter(|b| b >> 64 == whole_part)
            .and_then(|b| b.checked_add((rem << 64) / denom))
        {
            Some(t) => t,
            None => {
                self.state = State::Saturated;
                return;
            }
        };
        match fixed_lo.checked_add(term) {
            Some(fixed_lo) => {
                self.state = State::Approx {
                    fixed_lo,
                    slop: slop.saturating_add(1),
                }
            }
            None => self.state = State::Saturated,
        }
    }

    /// Whether the accumulated sum is at most `limit` (exactly, when the
    /// accumulator never overflowed; conservatively — never a false
    /// positive — otherwise).
    pub fn at_most(&self, limit: u64) -> bool {
        match self.state {
            State::Exact { whole, num, .. } => {
                whole < limit as u128 || (whole == limit as u128 && num == 0)
            }
            State::Approx { fixed_lo, slop } => {
                // exact·2⁶⁴ ∈ [fixed_lo, fixed_lo + slop): admissible iff the
                // upper bound still fits under the limit.
                match (limit as u128).checked_shl(64) {
                    Some(scaled) => fixed_lo.saturating_add(slop as u128) <= scaled,
                    None => true,
                }
            }
            State::Saturated => false,
        }
    }

    /// Whether the accumulated sum is at most one — the admission condition
    /// `Σ Θ/Π ≤ 1` / `Σ C/T ≤ 1`, evaluated exactly.
    pub fn at_most_one(&self) -> bool {
        self.at_most(1)
    }

    /// The sum as an `f64` approximation (for diagnostics only — never use
    /// this for admission decisions).
    pub fn approx_f64(&self) -> f64 {
        match self.state {
            State::Exact { whole, num, den } => whole as f64 + num as f64 / den as f64,
            State::Approx { fixed_lo, .. } => fixed_lo as f64 / (1u128 << 64) as f64,
            State::Saturated => f64::INFINITY,
        }
    }
}

/// Exact check that the total utilization of `(wcet, period)` pairs stays
/// at or below 1.
pub fn utilization_at_most_one(terms: impl IntoIterator<Item = (Time, Time)>) -> bool {
    let mut sum = UtilizationSum::new();
    for (num, den) in terms {
        sum.add(num, den);
        if let State::Saturated = sum.state {
            return false;
        }
    }
    sum.at_most_one()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        let sum = UtilizationSum::new();
        assert!(sum.at_most_one());
        assert!(sum.at_most(0));
        assert_eq!(sum.approx_f64(), 0.0);
    }

    #[test]
    fn exact_third_thrice_is_one() {
        let mut sum = UtilizationSum::new();
        for _ in 0..3 {
            sum.add(1, 3);
        }
        assert!(sum.at_most_one());
        assert!(!sum.at_most(0));
    }

    #[test]
    fn epsilon_over_one_is_rejected() {
        // Σ = 1 + 1/u64::MAX: far inside any float tolerance, exactly over.
        let mut sum = UtilizationSum::new();
        sum.add(1, 2);
        sum.add(1, 2);
        sum.add(1, u64::MAX);
        assert!(!sum.at_most_one());
    }

    #[test]
    fn float_tolerance_counterexample() {
        // Seven sevenths plus a sliver: f64 summation of 1/7 seven times is
        // 0.9999999999999998; adding 1e-12 keeps the float sum under the old
        // 1 + 1e-9 tolerance even though the exact sum is over 1.
        let mut sum = UtilizationSum::new();
        for _ in 0..7 {
            sum.add(1_000_000_000_000, 7_000_000_000_000);
        }
        assert!(sum.at_most_one()); // exactly 1
        sum.add(1, 1_000_000_000_000);
        assert!(!sum.at_most_one()); // exactly 1 + 1e-12
        let float_sum: f64 = (0..7).map(|_| 1.0f64 / 7.0).sum::<f64>() + 1e-12;
        assert!(float_sum <= 1.0 + 1e-9, "the old check admits this");
    }

    #[test]
    fn whole_numbers_accumulate() {
        let mut sum = UtilizationSum::new();
        sum.add(10, 2); // 5
        assert!(!sum.at_most_one());
        assert!(sum.at_most(5));
        assert!(!sum.at_most(4));
    }

    #[test]
    fn coprime_denominators_reduce() {
        let mut sum = UtilizationSum::new();
        sum.add(1, 6);
        sum.add(1, 10);
        sum.add(1, 15); // 5/30 + 3/30 + 2/30 = 1/3
        assert!((sum.approx_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!(sum.at_most_one());
    }

    #[test]
    fn overflow_fallback_is_conservative() {
        // Large coprime 64-bit denominators overflow any common u128
        // denominator quickly; the fallback must stay sound (reject sums
        // over 1) without panicking.
        let primes: [u64; 6] = [
            18_446_744_073_709_551_557,
            18_446_744_073_709_551_533,
            18_446_744_073_709_551_521,
            18_446_744_073_709_551_437,
            18_446_744_073_709_551_427,
            18_446_744_073_709_551_359,
        ];
        let mut under = UtilizationSum::new();
        for &p in &primes {
            under.add(p / 7, p);
        }
        // 6 · (~1/7) ≈ 0.857 < 1: must still be admitted via the fallback.
        assert!(under.at_most_one());

        let mut over = UtilizationSum::new();
        for &p in &primes {
            over.add(p / 5 + 1, p);
        }
        // 6 · (~1/5) ≈ 1.2 > 1: must be rejected.
        assert!(!over.at_most_one());
    }

    #[test]
    fn saturation_rejects() {
        // Whole parts stay exact in u128 no matter how huge the inputs.
        let mut sum = UtilizationSum::new();
        for _ in 0..8 {
            sum.add(u64::MAX, 1);
        }
        assert!(!sum.at_most_one());
        assert!(sum.approx_f64() > 1e19);

        // Force the fixed-point fallback (coprime near-2⁶⁴ denominators),
        // then overflow its 2⁶⁴-scaled accumulator with huge whole parts:
        // the accumulator must saturate and keep rejecting.
        let mut sat = UtilizationSum::new();
        sat.add(1, 18_446_744_073_709_551_557);
        sat.add(1, 18_446_744_073_709_551_533);
        for _ in 0..8 {
            sat.add(u64::MAX, 1);
        }
        assert!(!sat.at_most_one());
        assert!(sat.approx_f64().is_infinite());
    }

    #[test]
    fn scale_frac_matches_division() {
        assert_eq!(scale_frac(1, 2), 1u128 << 63);
        assert_eq!(scale_frac(1, 4), 1u128 << 62);
        assert_eq!(scale_frac(0, 7), 0);
        // ⌊(2⁶⁴·3)/7⌋ computed directly in u128 for a small case.
        assert_eq!(scale_frac(3, 7), (3u128 << 64) / 7);
    }

    #[test]
    fn helper_checks_task_utilizations() {
        assert!(utilization_at_most_one([(1, 2), (1, 2)]));
        assert!(!utilization_at_most_one([(1, 2), (1, 2), (1, 1_000_000)]));
        assert!(utilization_at_most_one(std::iter::empty()));
    }
}
