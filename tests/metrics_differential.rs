//! Differential test: enabling the observability layer's detail recording
//! (typed events + request lifecycles) must not change a single
//! scheduling decision or latency result.
//!
//! Two identical BlueScale systems run the same seeded workload; one has
//! detail recording on, the other off. Every externally visible quantity
//! — issue/completion/miss counts, the full latency sample sequences,
//! per-SE forward counts and per-port grant tallies — must be
//! bit-identical. The detail-enabled run must additionally have recorded
//! events and lifecycle breakdowns, proving it actually observed the run
//! it did not perturb.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::system::System;
use bluescale_rt::task::TaskSet;
use bluescale_sim::metrics::{ComponentId, Counter, SampleKind};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0xD1FF;
const HORIZON: u64 = 20_000;

fn task_sets(clients: usize) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(&SyntheticConfig::fig6(clients), &mut rng)
}

fn build_system(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

#[test]
fn detail_recording_does_not_change_any_decision() {
    let sets = task_sets(16);

    let mut plain = build_system(&sets);
    let mut observed = build_system(&sets);
    observed.enable_detail();

    let mut m_plain = plain.run(HORIZON);
    let mut m_observed = observed.run(HORIZON);

    // Aggregate counts are identical.
    assert_eq!(m_plain.issued(), m_observed.issued());
    assert_eq!(m_plain.completed(), m_observed.completed());
    assert_eq!(m_plain.missed(), m_observed.missed());
    assert_eq!(m_plain.backlog(), m_observed.backlog());
    assert!(
        m_plain.completed() > 0,
        "the workload must exercise the tree"
    );

    // The full latency/blocking sample sequences are identical — not just
    // summary statistics, every response in order.
    assert_eq!(
        m_plain.latency().as_slice(),
        m_observed.latency().as_slice()
    );
    assert_eq!(
        m_plain.blocking().as_slice(),
        m_observed.blocking().as_slice()
    );

    // Per-client slices are identical.
    let per_plain = plain.per_client_metrics();
    let per_observed = observed.per_client_metrics();
    for (a, b) in per_plain.iter().zip(&per_observed) {
        assert_eq!(a.issued(), b.issued());
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.missed(), b.missed());
    }

    // Every SE forwarded the same requests and every port granted the
    // same number of times.
    let ic_plain = plain.interconnect();
    let ic_observed = observed.interconnect();
    assert_eq!(ic_plain.forward_counts(), ic_observed.forward_counts());
    let config = BlueScaleConfig::for_clients(16);
    for depth in 0..config.levels() {
        for order in 0..config.elements_at(depth) {
            let grants_plain =
                ic_plain
                    .metrics()
                    .port_counters(depth, order, config.branch, Counter::Grants);
            let grants_observed =
                ic_observed
                    .metrics()
                    .port_counters(depth, order, config.branch, Counter::Grants);
            assert_eq!(grants_plain, grants_observed, "se.{depth}.{order} grants");
        }
    }

    // The observed run actually recorded detail; the plain one stayed dark.
    assert!(ic_plain.metrics().events().is_empty());
    assert!(!ic_observed.metrics().events().is_empty());
    let breakdowns = ic_observed
        .metrics()
        .samples(ComponentId::Client(0), SampleKind::Queueing)
        .expect("lifecycle breakdowns recorded");
    assert!(!breakdowns.as_slice().is_empty());
}

#[test]
fn detail_recording_is_inert_under_a_rogue_client() {
    // The throttling path (budget exhaustion, Throttle events) fires hard
    // when a client floods; detail recording must stay inert there too.
    let sets = task_sets(16);

    let mut plain = build_system(&sets);
    plain.set_misbehaviour_factor(0, 8);
    let mut observed = build_system(&sets);
    observed.set_misbehaviour_factor(0, 8);
    observed.enable_detail();

    let m_plain = plain.run(HORIZON);
    let m_observed = observed.run(HORIZON);

    assert_eq!(m_plain.issued(), m_observed.issued());
    assert_eq!(m_plain.completed(), m_observed.completed());
    assert_eq!(m_plain.missed(), m_observed.missed());
    assert_eq!(
        plain.interconnect().forward_counts(),
        observed.interconnect().forward_counts()
    );
    // Throttling happened and was observed — without changing it.
    let root = ComponentId::Se { depth: 0, order: 0 };
    let t_plain = plain
        .interconnect()
        .metrics()
        .counter(root, Counter::ThrottledCycles);
    let t_observed = observed
        .interconnect()
        .metrics()
        .counter(root, Counter::ThrottledCycles);
    assert_eq!(t_plain, t_observed);
}
