//! Runs every experiment (paper tables/figures + extensions) with default
//! settings and writes the markdown outputs into `results/`.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin report -- [--out DIR]`

use bluescale_bench::{
    ablation, admission, arg_value, dram, export, fig5, fig6, fig7, isolation, reconfig,
    scalability, table1, wcrt,
};
use bluescale_sim::metrics::MetricsRegistry;
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, contents: String) {
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn write_json(dir: &Path, name: &str, registry: &mut MetricsRegistry) {
    let path = dir.join(name);
    match export::write_snapshot(&path, registry) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results".to_owned());
    let dir = Path::new(&out);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }

    write(dir, "table1.md", table1::render());
    write(dir, "fig5.md", fig5::render());
    let mut fig5_reg = MetricsRegistry::new();
    fig5::record_into(&mut fig5_reg);
    write_json(dir, "fig5_metrics.json", &mut fig5_reg);

    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut fig6_out = String::new();
    for clients in [16, 64] {
        let config = fig6::Fig6Config::new(clients);
        let (rows, mut registry) = fig6::run_with_threads_registry(&config, threads);
        fig6_out.push_str(&fig6::render(&config, &rows));
        fig6_out.push('\n');
        let name = if clients == 16 {
            "fig6_metrics.json".to_owned()
        } else {
            format!("fig6_{clients}_metrics.json")
        };
        write_json(dir, &name, &mut registry);
    }
    write(dir, "fig6.md", fig6_out);

    let mut fig7_out = String::new();
    for processors in [16, 64] {
        let config = fig7::Fig7Config::new(processors);
        let points = fig7::run(&config);
        fig7_out.push_str(&fig7::render(&config, &points));
        fig7_out.push('\n');
    }
    write(dir, "fig7.md", fig7_out);

    let config = ablation::AblationConfig::default();
    write(
        dir,
        "ablation.md",
        ablation::render(&config, &ablation::run(&config)),
    );

    let config = wcrt::WcrtConfig::default();
    write(dir, "wcrt.md", wcrt::render(&config, &wcrt::run(&config)));

    let config = dram::DramConfigSweep::default();
    write(dir, "dram.md", dram::render(&config, &dram::run(&config)));

    let config = scalability::ScalabilityConfig::default();
    write(
        dir,
        "scalability.md",
        scalability::render(&config, &scalability::run(&config)),
    );

    let config = isolation::IsolationConfig::default();
    let (rows, mut registry) = isolation::run_with_registry(&config);
    write(dir, "isolation.md", isolation::render(&config, &rows));
    write_json(dir, "isolation_metrics.json", &mut registry);

    let config = reconfig::ReconfigConfig::default();
    write(
        dir,
        "reconfig.md",
        reconfig::render(&config, &reconfig::run(&config)),
    );

    let config = admission::AdmissionConfig::default();
    write(
        dir,
        "admission.md",
        admission::render(&config, &admission::run(&config)),
    );

    println!("\nall experiments written to {}/", dir.display());
}
