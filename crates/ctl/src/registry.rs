//! The tenant registry: durable admission state over a live BlueScale
//! system.
//!
//! The registry owns a [`System`] sized for `capacity` client slots (all
//! initially idle) and maps tenant identities onto slots. Every admission
//! decision runs through the interconnect's real, deterministic admission
//! path — trial on cloned selectors, exact rational root test, commit at
//! replenishment boundaries — so replaying the same operation sequence
//! from the same starting state reproduces the same decisions and the
//! same slot assignments bit-for-bit. That determinism is what makes the
//! journal a sufficient crash record: recovery is replay, not state
//! surgery.
//!
//! The **admission state** a recovery pins bit-identical is captured by
//! [`state_digest`](ControlRegistry::state_digest): the tenant table
//! (identity, class, slot, declared tasks) plus the free-slot set.
//! Sim-side metric streams (per-tenant miss/latency) are volatile and
//! restart empty after a crash — by design; they are measurements, not
//! reservations.

use crate::journal::{Op, Snapshot, SnapshotTenant};
use crate::proto::{RejectReason, TaskSpec, TenantClass, TenantStats};
use bluescale::{BlueScaleConfig, BlueScaleInterconnect, BuildError};
use bluescale_interconnect::admission::{CancelToken, ReconfigOutcome};
use bluescale_interconnect::metrics::RunMetrics;
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One admitted tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantEntry {
    /// Service class, fixed at join.
    pub class: TenantClass,
    /// The client slot the tenant's traffic runs on.
    pub slot: u32,
    /// Currently-declared tasks.
    pub tasks: Vec<TaskSpec>,
}

/// Outcome of applying an admission operation at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Applied; the caller journals the op and replies after the sync.
    Admitted {
        /// Slot the operation ran on.
        slot: u32,
        /// Mode-change transition latency from the interconnect.
        transition_cycles: u64,
    },
    /// Refused; nothing changed, nothing to journal.
    Rejected(RejectReason),
}

/// Replay of a journaled operation diverged from the journaled record —
/// the deterministic admission re-run rejected it or picked a different
/// slot. Either means the journal does not describe this code's history.
#[derive(Debug)]
pub struct ReplayDiverged {
    /// Journal sequence number of the divergent record (if known).
    pub seq: Option<u64>,
    /// The operation that failed to replay.
    pub op: Op,
    /// What the re-run produced.
    pub outcome: ApplyOutcome,
}

impl fmt::Display for ReplayDiverged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal replay diverged at seq {:?}: op for tenant {} slot {} re-ran to {:?}",
            self.seq,
            self.op.tenant(),
            self.op.slot(),
            self.outcome
        )
    }
}

impl std::error::Error for ReplayDiverged {}

/// The control plane's tenant registry over a live BlueScale system.
pub struct ControlRegistry {
    sys: System<BlueScaleInterconnect>,
    tenants: BTreeMap<u64, TenantEntry>,
    free: BTreeSet<u32>,
    capacity: usize,
}

impl ControlRegistry {
    /// Builds an empty registry with `capacity` tenant slots.
    pub fn new(capacity: usize) -> Result<Self, BuildError> {
        let sets = vec![TaskSet::empty(); capacity];
        let config = BlueScaleConfig::for_clients(capacity);
        let ic = BlueScaleInterconnect::new(config, &sets)?;
        Ok(ControlRegistry {
            sys: System::new(Box::new(ic), &sets),
            tenants: BTreeMap::new(),
            free: (0..capacity as u32).collect(),
            capacity,
        })
    }

    /// Total tenant slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently admitted tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The admitted entry for `tenant`, if any.
    pub fn tenant(&self, tenant: u64) -> Option<&TenantEntry> {
        self.tenants.get(&tenant)
    }

    /// The service class of `tenant`, if admitted.
    pub fn class_of(&self, tenant: u64) -> Option<TenantClass> {
        self.tenants.get(&tenant).map(|e| e.class)
    }

    fn install(&mut self, slot: u32, tasks: &TaskSet) -> ReconfigOutcome {
        let now = self.sys.now();
        let token = CancelToken::new();
        self.sys
            .apply_reconfiguration_cancellable(slot, tasks, now, &token)
    }

    fn build_task_set(specs: &[TaskSpec]) -> Result<TaskSet, RejectReason> {
        if specs.is_empty() || specs.len() > crate::proto::MAX_TASKS as usize {
            return Err(RejectReason::InvalidTasks);
        }
        let mut tasks = Vec::with_capacity(specs.len());
        for (i, s) in specs.iter().enumerate() {
            tasks.push(
                Task::new(i as u32, s.period, s.wcet).map_err(|_| RejectReason::InvalidTasks)?,
            );
        }
        TaskSet::new(tasks).map_err(|_| RejectReason::InvalidTasks)
    }

    /// Admits `tenant` on the first free slot. Idempotent: a retry of an
    /// already-applied join with identical parameters re-reports success
    /// (transition 0) instead of failing, so a client whose response
    /// frame was lost can safely resend.
    pub fn try_join(
        &mut self,
        tenant: u64,
        class: TenantClass,
        specs: &[TaskSpec],
    ) -> ApplyOutcome {
        if let Some(e) = self.tenants.get(&tenant) {
            return if e.class == class && e.tasks == specs {
                ApplyOutcome::Admitted {
                    slot: e.slot,
                    transition_cycles: 0,
                }
            } else {
                ApplyOutcome::Rejected(RejectReason::AlreadyJoined)
            };
        }
        let Some(&slot) = self.free.iter().next() else {
            return ApplyOutcome::Rejected(RejectReason::CapacityFull);
        };
        let set = match Self::build_task_set(specs) {
            Ok(set) => set,
            Err(reason) => return ApplyOutcome::Rejected(reason),
        };
        match self.install(slot, &set) {
            ReconfigOutcome::Admitted { transition_cycles } => {
                self.free.remove(&slot);
                self.tenants.insert(
                    tenant,
                    TenantEntry {
                        class,
                        slot,
                        tasks: specs.to_vec(),
                    },
                );
                ApplyOutcome::Admitted {
                    slot,
                    transition_cycles,
                }
            }
            _ => ApplyOutcome::Rejected(RejectReason::Inadmissible),
        }
    }

    /// Replaces the tenant's declared task set, admission-tested.
    /// Idempotent on retries that match the installed set.
    pub fn try_renegotiate(&mut self, tenant: u64, specs: &[TaskSpec]) -> ApplyOutcome {
        let Some(entry) = self.tenants.get(&tenant) else {
            return ApplyOutcome::Rejected(RejectReason::UnknownTenant);
        };
        let slot = entry.slot;
        if entry.tasks == specs {
            return ApplyOutcome::Admitted {
                slot,
                transition_cycles: 0,
            };
        }
        let set = match Self::build_task_set(specs) {
            Ok(set) => set,
            Err(reason) => return ApplyOutcome::Rejected(reason),
        };
        match self.install(slot, &set) {
            ReconfigOutcome::Admitted { transition_cycles } => {
                self.tenants
                    .get_mut(&tenant)
                    .expect("looked up above")
                    .tasks = specs.to_vec();
                ApplyOutcome::Admitted {
                    slot,
                    transition_cycles,
                }
            }
            _ => ApplyOutcome::Rejected(RejectReason::Inadmissible),
        }
    }

    /// Releases the tenant's reservation. Shedding demand cannot fail the
    /// root test, so this rejects only for unknown tenants.
    pub fn try_leave(&mut self, tenant: u64) -> ApplyOutcome {
        let Some(entry) = self.tenants.get(&tenant) else {
            return ApplyOutcome::Rejected(RejectReason::UnknownTenant);
        };
        let slot = entry.slot;
        match self.install(slot, &TaskSet::empty()) {
            ReconfigOutcome::Admitted { transition_cycles } => {
                self.tenants.remove(&tenant);
                self.free.insert(slot);
                ApplyOutcome::Admitted {
                    slot,
                    transition_cycles,
                }
            }
            _ => ApplyOutcome::Rejected(RejectReason::Inadmissible),
        }
    }

    /// Re-applies one journaled operation during recovery. The re-run
    /// must admit on the journaled slot — anything else is divergence.
    /// Counts one `RecoveryReplays` per record.
    pub fn replay(&mut self, seq: u64, op: &Op) -> Result<(), ReplayDiverged> {
        let outcome = match op {
            Op::Join {
                tenant,
                class,
                tasks,
                ..
            } => self.try_join(*tenant, *class, tasks),
            Op::Renegotiate { tenant, tasks, .. } => self.try_renegotiate(*tenant, tasks),
            Op::Leave { tenant, .. } => self.try_leave(*tenant),
            Op::Quarantine { tenant, .. } => match self.quarantine(*tenant) {
                Some(slot) => ApplyOutcome::Admitted {
                    slot,
                    transition_cycles: 0,
                },
                None => ApplyOutcome::Rejected(RejectReason::UnknownTenant),
            },
        };
        match outcome {
            ApplyOutcome::Admitted { slot, .. } if slot == op.slot() => {
                self.count(Counter::RecoveryReplays);
                let now = self.sys.now();
                self.sys
                    .registry_mut()
                    .record(now, bluescale_sim::metrics::Event::RecoveryReplay { seq });
                Ok(())
            }
            other => Err(ReplayDiverged {
                seq: Some(seq),
                op: op.clone(),
                outcome: other,
            }),
        }
    }

    /// Restores the compacted tenant table, forcing the snapshot's slot
    /// assignments (compaction may leave slot holes that first-free
    /// assignment would not reproduce).
    ///
    /// Quarantined tenants are registered without re-installing their
    /// declared reservation: the demotion shed it, and later admissions
    /// may have consumed the freed capacity, so re-installing could fail
    /// the root test against state that was legal live.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), ReplayDiverged> {
        for t in &snapshot.tenants {
            if snapshot.quarantined.contains(&t.slot) {
                self.free.remove(&t.slot);
                self.tenants.insert(
                    t.tenant,
                    TenantEntry {
                        class: t.class,
                        slot: t.slot,
                        tasks: t.tasks.clone(),
                    },
                );
                continue;
            }
            let set = match Self::build_task_set(&t.tasks) {
                Ok(set) => set,
                Err(reason) => {
                    return Err(ReplayDiverged {
                        seq: None,
                        op: Op::Join {
                            tenant: t.tenant,
                            class: t.class,
                            slot: t.slot,
                            tasks: t.tasks.clone(),
                        },
                        outcome: ApplyOutcome::Rejected(reason),
                    })
                }
            };
            match self.install(t.slot, &set) {
                ReconfigOutcome::Admitted { .. } => {
                    self.free.remove(&t.slot);
                    self.tenants.insert(
                        t.tenant,
                        TenantEntry {
                            class: t.class,
                            slot: t.slot,
                            tasks: t.tasks.clone(),
                        },
                    );
                }
                outcome => {
                    return Err(ReplayDiverged {
                        seq: None,
                        op: Op::Join {
                            tenant: t.tenant,
                            class: t.class,
                            slot: t.slot,
                            tasks: t.tasks.clone(),
                        },
                        outcome: match outcome {
                            ReconfigOutcome::Admitted { .. } => unreachable!(),
                            _ => ApplyOutcome::Rejected(RejectReason::Inadmissible),
                        },
                    })
                }
            }
        }
        // Re-mark every demoted slot (owned or orphaned — a tenant may
        // have left after its demotion). The slots hold no reservation,
        // so the demotion's empty-set reconfiguration is a no-op shed.
        for &slot in &snapshot.quarantined {
            self.sys.quarantine_client(slot);
        }
        Ok(())
    }

    /// The compacted image of the current tenant table, slot-ascending.
    /// `next_seq` comes from the journal (the records folded in).
    pub fn snapshot(&self, next_seq: u64) -> Snapshot {
        let mut tenants: Vec<SnapshotTenant> = self
            .tenants
            .iter()
            .map(|(&tenant, e)| SnapshotTenant {
                tenant,
                class: e.class,
                slot: e.slot,
                tasks: e.tasks.clone(),
            })
            .collect();
        tenants.sort_by_key(|t| t.slot);
        Snapshot {
            next_seq,
            tenants,
            quarantined: self.sys.quarantined_clients(),
        }
    }

    /// FNV-1a digest over the admission state: capacity, the tenant
    /// table (identity, class, slot, tasks), the free-slot set and the
    /// quarantined-slot set (a demoted slot holds no reservation, so two
    /// states differing only in quarantine hold different capacity). Two
    /// registries with equal digests hold the same reservations — the
    /// recovery invariant asserts digest equality across a crash.
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.capacity as u64);
        for (&tenant, e) in &self.tenants {
            eat(tenant);
            eat(match e.class {
                TenantClass::Guaranteed => 0,
                TenantClass::BestEffort => 1,
            });
            eat(e.slot as u64);
            eat(e.tasks.len() as u64);
            for t in &e.tasks {
                eat(t.period);
                eat(t.wcet);
            }
        }
        for &slot in &self.free {
            eat(slot as u64);
        }
        let quarantined = self.sys.quarantined_clients();
        eat(quarantined.len() as u64);
        for slot in quarantined {
            eat(slot as u64);
        }
        h
    }

    /// Advances the live simulation, driving tenant traffic through the
    /// admitted reservations (releases, arbitration, completions, the
    /// miss/latency streams Stats reads). With telemetry attached, due
    /// epochs are flushed after the batch — between simulated spans,
    /// never inside the cycle loop.
    pub fn step(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.sys.step();
        }
        self.sys.flush_telemetry_due();
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.sys.now()
    }

    /// The tenant's own miss/latency stream from the sim registry.
    pub fn stats_for(&self, tenant: u64) -> Option<TenantStats> {
        let slot = self.tenants.get(&tenant)?.slot;
        let mut m = RunMetrics::from_registry(self.sys.registry(), ComponentId::Client(slot));
        let p99 = m.latency().percentile(0.99).unwrap_or(0.0);
        Some(TenantStats {
            issued: m.issued(),
            completed: m.completed(),
            missed: m.missed(),
            p99_latency: p99,
        })
    }

    /// Trips the tenant into the guard quarantine path (the circuit
    /// breaker's demotion): the slot's reservation is shed through the
    /// admission-tested reconfiguration path. Returns the demoted slot,
    /// or `None` for unknown or already-quarantined tenants.
    ///
    /// The demotion changes durable admission capacity — later joins may
    /// fit only because of the freed reservation — so the caller must
    /// journal it ([`Op::Quarantine`]); [`replay`](Self::replay) re-sheds
    /// the slot to keep recovered capacity identical to live capacity.
    pub fn quarantine(&mut self, tenant: u64) -> Option<u32> {
        let entry = self.tenants.get(&tenant)?;
        let slot = entry.slot;
        self.sys.quarantine_client(slot).then_some(slot)
    }

    /// Increments a System-scope counter in the sim registry (the control
    /// plane's AdmissionTimeouts / Sheds / Retries / RecoveryReplays).
    pub fn count(&mut self, counter: Counter) {
        self.sys.registry_mut().inc(ComponentId::System, counter);
    }

    /// Adds to a System-scope counter in the sim registry.
    pub fn count_by(&mut self, counter: Counter, delta: u64) {
        self.sys
            .registry_mut()
            .add(ComponentId::System, counter, delta);
    }

    /// Reads a System-scope counter from the sim registry.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.sys.registry().counter(ComponentId::System, counter)
    }

    /// The harness-side sim registry (counters, events, samples).
    pub fn sim_registry(&self) -> &MetricsRegistry {
        self.sys.registry()
    }

    /// Slots demoted through the quarantine path.
    pub fn quarantined_slots(&self) -> Vec<u32> {
        self.sys.quarantined_clients()
    }

    /// The client slot backing `tenant`, if admitted.
    pub fn slot_of(&self, tenant: u64) -> Option<u32> {
        self.tenants.get(&tenant).map(|e| e.slot)
    }

    /// Attaches a telemetry pipeline to the live system (flushed from
    /// [`step`](Self::step) batch boundaries). Returns any previous one.
    pub fn attach_telemetry(
        &mut self,
        pipeline: bluescale_telemetry::Pipeline,
    ) -> Option<bluescale_telemetry::Pipeline> {
        self.sys.attach_telemetry(pipeline)
    }

    /// Final telemetry flush + sink finalization (no-op when detached).
    pub fn finish_telemetry(&mut self) {
        self.sys.finish_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(period: u64, wcet: u64) -> TaskSpec {
        TaskSpec { period, wcet }
    }

    #[test]
    fn join_renegotiate_leave_cycle_reuses_slots() {
        let mut reg = ControlRegistry::new(8).expect("build");
        let a = reg.try_join(100, TenantClass::Guaranteed, &[spec(400, 2)]);
        let ApplyOutcome::Admitted { slot: s0, .. } = a else {
            panic!("join must admit: {a:?}");
        };
        assert_eq!(s0, 0, "first free slot");
        assert!(matches!(
            reg.try_join(101, TenantClass::BestEffort, &[spec(1000, 3)]),
            ApplyOutcome::Admitted { slot: 1, .. }
        ));
        assert!(matches!(
            reg.try_renegotiate(100, &[spec(200, 2)]),
            ApplyOutcome::Admitted { slot: 0, .. }
        ));
        assert_eq!(reg.tenant(100).unwrap().tasks, vec![spec(200, 2)]);
        assert!(matches!(
            reg.try_leave(100),
            ApplyOutcome::Admitted { slot: 0, .. }
        ));
        assert_eq!(reg.tenant_count(), 1);
        // The freed slot is the next first-free choice.
        assert!(matches!(
            reg.try_join(102, TenantClass::Guaranteed, &[spec(500, 1)]),
            ApplyOutcome::Admitted { slot: 0, .. }
        ));
    }

    #[test]
    fn joins_are_idempotent_and_conflicts_rejected() {
        let mut reg = ControlRegistry::new(4).expect("build");
        let tasks = [spec(400, 2)];
        assert!(matches!(
            reg.try_join(7, TenantClass::Guaranteed, &tasks),
            ApplyOutcome::Admitted { slot: 0, .. }
        ));
        // Same request again: idempotent success (lost-response retry).
        assert!(matches!(
            reg.try_join(7, TenantClass::Guaranteed, &tasks),
            ApplyOutcome::Admitted {
                slot: 0,
                transition_cycles: 0
            }
        ));
        // Different parameters: a real conflict.
        assert!(matches!(
            reg.try_join(7, TenantClass::BestEffort, &tasks),
            ApplyOutcome::Rejected(RejectReason::AlreadyJoined)
        ));
    }

    #[test]
    fn unknown_and_invalid_requests_are_typed_rejections() {
        let mut reg = ControlRegistry::new(4).expect("build");
        assert!(matches!(
            reg.try_renegotiate(9, &[spec(100, 1)]),
            ApplyOutcome::Rejected(RejectReason::UnknownTenant)
        ));
        assert!(matches!(
            reg.try_leave(9),
            ApplyOutcome::Rejected(RejectReason::UnknownTenant)
        ));
        assert!(matches!(
            reg.try_join(9, TenantClass::Guaranteed, &[]),
            ApplyOutcome::Rejected(RejectReason::InvalidTasks)
        ));
        assert!(matches!(
            reg.try_join(9, TenantClass::Guaranteed, &[spec(10, 0)]),
            ApplyOutcome::Rejected(RejectReason::InvalidTasks)
        ));
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut reg = ControlRegistry::new(4).expect("build");
        for t in 0..4u64 {
            assert!(matches!(
                reg.try_join(t, TenantClass::BestEffort, &[spec(4000, 1)]),
                ApplyOutcome::Admitted { .. }
            ));
        }
        assert!(matches!(
            reg.try_join(99, TenantClass::BestEffort, &[spec(4000, 1)]),
            ApplyOutcome::Rejected(RejectReason::CapacityFull)
        ));
    }

    #[test]
    fn overload_joins_are_rejected_by_the_root_test() {
        let mut reg = ControlRegistry::new(4).expect("build");
        // Three tenants at ~19% demand each fit under the root budget
        // (which also pays for the tree's request/response path); a 4th
        // identical tenant blows it and is refused.
        for t in 0..3u64 {
            assert!(matches!(
                reg.try_join(t, TenantClass::Guaranteed, &[spec(16, 3)]),
                ApplyOutcome::Admitted { .. }
            ));
        }
        assert!(matches!(
            reg.try_join(3, TenantClass::Guaranteed, &[spec(16, 3)]),
            ApplyOutcome::Rejected(RejectReason::Inadmissible)
        ));
        // Rejection mutated nothing: once a reservation frees, the same
        // tenant's identical demand fits again.
        assert!(matches!(reg.try_leave(0), ApplyOutcome::Admitted { .. }));
        assert!(matches!(
            reg.try_join(3, TenantClass::Guaranteed, &[spec(16, 3)]),
            ApplyOutcome::Admitted { .. }
        ));
    }

    #[test]
    fn digest_tracks_admission_state_exactly() {
        let mut a = ControlRegistry::new(8).expect("build");
        let mut b = ControlRegistry::new(8).expect("build");
        assert_eq!(a.state_digest(), b.state_digest());
        a.try_join(1, TenantClass::Guaranteed, &[spec(400, 2)]);
        assert_ne!(a.state_digest(), b.state_digest());
        b.try_join(1, TenantClass::Guaranteed, &[spec(400, 2)]);
        assert_eq!(a.state_digest(), b.state_digest());
        // Stepping the sim (metrics churn) must NOT move the digest:
        // admission state is reservations, not measurements.
        a.step(500);
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn replay_reproduces_state_and_counts() {
        let mut live = ControlRegistry::new(8).expect("build");
        live.try_join(1, TenantClass::Guaranteed, &[spec(400, 2)]);
        live.try_join(2, TenantClass::BestEffort, &[spec(1000, 5)]);
        live.try_renegotiate(1, &[spec(200, 2)]);
        live.try_leave(2);

        let ops = [
            Op::Join {
                tenant: 1,
                class: TenantClass::Guaranteed,
                slot: 0,
                tasks: vec![spec(400, 2)],
            },
            Op::Join {
                tenant: 2,
                class: TenantClass::BestEffort,
                slot: 1,
                tasks: vec![spec(1000, 5)],
            },
            Op::Renegotiate {
                tenant: 1,
                slot: 0,
                tasks: vec![spec(200, 2)],
            },
            Op::Leave { tenant: 2, slot: 1 },
        ];
        let mut recovered = ControlRegistry::new(8).expect("build");
        for (seq, op) in ops.iter().enumerate() {
            recovered.replay(seq as u64, op).expect("replay admits");
        }
        assert_eq!(recovered.state_digest(), live.state_digest());
        assert_eq!(recovered.counter(Counter::RecoveryReplays), 4);
    }

    #[test]
    fn restore_forces_snapshot_slots_across_holes() {
        let mut live = ControlRegistry::new(8).expect("build");
        live.try_join(1, TenantClass::Guaranteed, &[spec(400, 2)]);
        live.try_join(2, TenantClass::BestEffort, &[spec(1000, 5)]);
        live.try_join(3, TenantClass::Guaranteed, &[spec(500, 1)]);
        live.try_leave(2); // slot 1 becomes a hole

        let snap = live.snapshot(4);
        let mut recovered = ControlRegistry::new(8).expect("build");
        recovered.restore(&snap).expect("restore admits");
        assert_eq!(recovered.state_digest(), live.state_digest());
        assert_eq!(recovered.tenant(3).unwrap().slot, 2, "hole preserved");
    }

    #[test]
    fn quarantine_demotes_the_tenant_slot() {
        let mut reg = ControlRegistry::new(4).expect("build");
        reg.try_join(5, TenantClass::BestEffort, &[spec(400, 2)]);
        assert_eq!(reg.quarantine(5), Some(0));
        assert_eq!(reg.quarantine(5), None, "second trip is a no-op");
        assert_eq!(reg.quarantined_slots(), vec![0]);
        assert_eq!(reg.quarantine(99), None, "unknown tenant");
    }

    #[test]
    fn quarantine_moves_the_digest_and_replays() {
        // Two tenants saturating the root budget; quarantining one frees
        // capacity a third join consumes. Replay must reproduce that
        // sequence exactly — the regression this guards: an unjournaled
        // demotion made the post-demotion join replay as Rejected.
        let mut live = ControlRegistry::new(4).expect("build");
        for t in 0..3u64 {
            assert!(matches!(
                live.try_join(t, TenantClass::Guaranteed, &[spec(16, 3)]),
                ApplyOutcome::Admitted { .. }
            ));
        }
        let before = live.state_digest();
        assert_eq!(live.quarantine(1), Some(1));
        assert_ne!(
            live.state_digest(),
            before,
            "demotion changes capacity, so it must move the digest"
        );
        // The freed reservation admits a tenant that did not fit before.
        assert!(matches!(
            live.try_join(9, TenantClass::Guaranteed, &[spec(16, 3)]),
            ApplyOutcome::Admitted { slot: 3, .. }
        ));

        let ops = [
            Op::Join {
                tenant: 0,
                class: TenantClass::Guaranteed,
                slot: 0,
                tasks: vec![spec(16, 3)],
            },
            Op::Join {
                tenant: 1,
                class: TenantClass::Guaranteed,
                slot: 1,
                tasks: vec![spec(16, 3)],
            },
            Op::Join {
                tenant: 2,
                class: TenantClass::Guaranteed,
                slot: 2,
                tasks: vec![spec(16, 3)],
            },
            Op::Quarantine { tenant: 1, slot: 1 },
            Op::Join {
                tenant: 9,
                class: TenantClass::Guaranteed,
                slot: 3,
                tasks: vec![spec(16, 3)],
            },
        ];
        let mut recovered = ControlRegistry::new(4).expect("build");
        for (seq, op) in ops.iter().enumerate() {
            recovered.replay(seq as u64, op).expect("replay admits");
        }
        assert_eq!(recovered.state_digest(), live.state_digest());
        assert_eq!(recovered.quarantined_slots(), vec![1]);
    }

    #[test]
    fn restore_skips_quarantined_reservations() {
        // Live history: a big tenant joins, is quarantined (frees its
        // reservation), then other tenants consume the freed capacity.
        // Restoring the snapshot must NOT re-install the quarantined
        // reservation — doing so would fail the root test against
        // tenants that were legally admitted after the demotion.
        let mut live = ControlRegistry::new(4).expect("build");
        assert!(matches!(
            live.try_join(1, TenantClass::Guaranteed, &[spec(8, 3)]),
            ApplyOutcome::Admitted { slot: 0, .. }
        ));
        assert_eq!(live.quarantine(1), Some(0));
        for t in 2..=3u64 {
            assert!(matches!(
                live.try_join(t, TenantClass::Guaranteed, &[spec(16, 3)]),
                ApplyOutcome::Admitted { .. }
            ));
        }

        let snap = live.snapshot(3);
        assert_eq!(snap.quarantined, vec![0]);
        let mut recovered = ControlRegistry::new(4).expect("build");
        recovered.restore(&snap).expect("restore admits");
        assert_eq!(recovered.state_digest(), live.state_digest());
        assert_eq!(recovered.quarantined_slots(), vec![0]);
        assert_eq!(recovered.tenant_count(), 3);
    }
}
