//! Fig 5: hardware scalability — area, power and maximum frequency as the
//! client count scales with η (`clients = 2^η`, η = 1..7).

use bluescale_hwcost::frequency::{max_frequency_mhz, FrequencyTarget};
use bluescale_hwcost::{area_fraction, interconnect_cost, legacy_system_cost, Architecture};
use bluescale_sim::metrics::{ComponentId, MetricsRegistry};

/// One sweep point of Fig 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Scaling factor η.
    pub eta: u32,
    /// Client count `2^η`.
    pub clients: usize,
    /// Area fraction of the legacy system (Fig 5(a)).
    pub legacy_area: f64,
    /// Area fraction of AXI-IC^RT alone.
    pub axi_area: f64,
    /// Area fraction of BlueScale alone.
    pub bluescale_area: f64,
    /// Power of the legacy system in watts (Fig 5(b)).
    pub legacy_power_w: f64,
    /// Power of AXI-IC^RT alone, watts.
    pub axi_power_w: f64,
    /// Power of BlueScale alone, watts.
    pub bluescale_power_w: f64,
    /// Maximum frequency of the legacy system, MHz (Fig 5(c)).
    pub legacy_fmax: f64,
    /// Maximum frequency with AXI-IC^RT, MHz.
    pub axi_fmax: f64,
    /// Maximum frequency with BlueScale, MHz.
    pub bluescale_fmax: f64,
}

/// Computes the full η = 1..=7 sweep.
pub fn sweep() -> Vec<Point> {
    (1..=7u32)
        .map(|eta| {
            let clients = 1usize << eta;
            let legacy = legacy_system_cost(clients);
            let axi = interconnect_cost(Architecture::AxiIcRt, clients);
            let bs = interconnect_cost(Architecture::BlueScale, clients);
            Point {
                eta,
                clients,
                legacy_area: area_fraction(&legacy),
                axi_area: area_fraction(&axi),
                bluescale_area: area_fraction(&bs),
                legacy_power_w: legacy.power_mw / 1000.0,
                axi_power_w: axi.power_mw / 1000.0,
                bluescale_power_w: bs.power_mw / 1000.0,
                legacy_fmax: max_frequency_mhz(FrequencyTarget::Legacy, clients),
                axi_fmax: max_frequency_mhz(FrequencyTarget::AxiIcRt, clients),
                bluescale_fmax: max_frequency_mhz(FrequencyTarget::BlueScale, clients),
            }
        })
        .collect()
}

/// Records the sweep into `registry` as gauges keyed by
/// [`ComponentId::Series`]\(η\): one series per scaling point, one gauge
/// per Fig 5 quantity. The sweep is analytic, so the gauges are exact.
pub fn record_into(registry: &mut MetricsRegistry) {
    for p in sweep() {
        let s = ComponentId::Series(p.eta as u16);
        registry.set_gauge(s, "clients", p.clients as f64);
        registry.set_gauge(s, "legacy_area", p.legacy_area);
        registry.set_gauge(s, "axi_area", p.axi_area);
        registry.set_gauge(s, "bluescale_area", p.bluescale_area);
        registry.set_gauge(s, "legacy_power_w", p.legacy_power_w);
        registry.set_gauge(s, "axi_power_w", p.axi_power_w);
        registry.set_gauge(s, "bluescale_power_w", p.bluescale_power_w);
        registry.set_gauge(s, "legacy_fmax_mhz", p.legacy_fmax);
        registry.set_gauge(s, "axi_fmax_mhz", p.axi_fmax);
        registry.set_gauge(s, "bluescale_fmax_mhz", p.bluescale_fmax);
    }
}

/// Renders the three panels of Fig 5 as markdown tables.
pub fn render() -> String {
    let points = sweep();
    let mut s = String::new();
    s.push_str("# Fig 5(a): Area consumption (fraction of VC707 LUTs) vs η\n\n");
    s.push_str(
        "| η | clients | Legacy | AXI-IC^RT | BlueScale | Legacy+AXI | Legacy+BlueScale |\n",
    );
    s.push_str("|---:|---:|---:|---:|---:|---:|---:|\n");
    for p in &points {
        s.push_str(&format!(
            "| {} | {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.1}% |\n",
            p.eta,
            p.clients,
            100.0 * p.legacy_area,
            100.0 * p.axi_area,
            100.0 * p.bluescale_area,
            100.0 * (p.legacy_area + p.axi_area),
            100.0 * (p.legacy_area + p.bluescale_area),
        ));
    }
    s.push_str("\n# Fig 5(b): Power consumption (W) vs η\n\n");
    s.push_str("| η | Legacy | AXI-IC^RT | BlueScale | Legacy+AXI | Legacy+BlueScale |\n");
    s.push_str("|---:|---:|---:|---:|---:|---:|\n");
    for p in &points {
        s.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |\n",
            p.eta,
            p.legacy_power_w,
            p.axi_power_w,
            p.bluescale_power_w,
            p.legacy_power_w + p.axi_power_w,
            p.legacy_power_w + p.bluescale_power_w,
        ));
    }
    s.push_str("\n# Fig 5(c): Maximum frequency (MHz) vs η\n\n");
    s.push_str("| η | Legacy | AXI-IC^RT | BlueScale |\n");
    s.push_str("|---:|---:|---:|---:|\n");
    for p in &points {
        s.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.0} |\n",
            p.eta, p.legacy_fmax, p.axi_fmax, p.bluescale_fmax,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_eta_1_to_7() {
        let pts = sweep();
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0].clients, 2);
        assert_eq!(pts[6].clients, 128);
    }

    #[test]
    fn obs2_bluescale_less_area_than_axi() {
        for p in sweep() {
            assert!(
                p.bluescale_area < p.axi_area,
                "η={}: {} vs {}",
                p.eta,
                p.bluescale_area,
                p.axi_area
            );
        }
    }

    #[test]
    fn obs2_interconnect_margin_small_at_16_clients() {
        // "The additionally introduced area consumption was bounded within
        // a small margin – less than 5%" — at the paper's synthesized
        // scale (quoted for the 16-client build).
        let p = sweep().into_iter().find(|p| p.clients == 16).unwrap();
        assert!(p.bluescale_area < 0.05, "{}", p.bluescale_area);
    }

    #[test]
    fn obs2_power_increases_with_eta() {
        let pts = sweep();
        for w in pts.windows(2) {
            assert!(w[1].legacy_power_w > w[0].legacy_power_w);
            // BlueScale power is a step function of the SE count (2 and 4
            // clients share a single SE), hence non-strict per step…
            assert!(w[1].bluescale_power_w >= w[0].bluescale_power_w);
            assert!(w[1].axi_power_w > w[0].axi_power_w);
        }
        // …but strictly increasing across the full sweep.
        assert!(pts[6].bluescale_power_w > pts[0].bluescale_power_w);
    }

    #[test]
    fn obs2_bluescale_power_slightly_above_centralized_at_anchor() {
        // Table 1: BlueScale 67 mW vs AXI-IC^RT 46 mW at 16 clients.
        let p = sweep().into_iter().find(|p| p.clients == 16).unwrap();
        assert!(p.bluescale_power_w > p.axi_power_w);
    }

    #[test]
    fn obs3_axi_fmax_crosses_legacy_past_32() {
        let pts = sweep();
        let at = |n: usize| pts.iter().find(|p| p.clients == n).unwrap().axi_fmax;
        assert!(at(32) > 200.0 * 0.9);
        assert!(at(64) < 200.0);
        for p in &pts {
            assert!(p.bluescale_fmax > p.legacy_fmax);
        }
    }

    #[test]
    fn registry_gauges_mirror_the_sweep() {
        let mut registry = MetricsRegistry::new();
        record_into(&mut registry);
        for p in sweep() {
            let s = ComponentId::Series(p.eta as u16);
            assert_eq!(registry.gauge(s, "clients"), Some(p.clients as f64));
            assert_eq!(registry.gauge(s, "bluescale_area"), Some(p.bluescale_area));
            assert_eq!(registry.gauge(s, "axi_fmax_mhz"), Some(p.axi_fmax));
        }
    }

    #[test]
    fn render_mentions_all_panels() {
        let text = render();
        assert!(text.contains("Fig 5(a)"));
        assert!(text.contains("Fig 5(b)"));
        assert!(text.contains("Fig 5(c)"));
    }
}
