//! Workload generation for the BlueScale evaluation.
//!
//! Three generators cover the paper's experiments:
//!
//! * [`uunifast`] — the UUniFast algorithm (Bini & Buttazzo) for unbiased
//!   utilization splits, plus periodic task-set synthesis.
//! * [`synthetic`] — the Section 6.3 traffic-generator workloads: random
//!   periodic task sets with implicit deadlines bounding interconnect
//!   utilization between 70 % and 90 %.
//! * [`mod@file`] — a portable text format to save and replay exact trial
//!   workloads.
//! * [`casestudy`] — the Section 6.4 automotive case study: 10 safety tasks
//!   (Renesas use-case catalogue) + 10 function tasks (EEMBC AutoBench),
//!   ~30 % base utilization, plus interference tasks that sweep the target
//!   utilization, with the last clients acting as DNN hardware
//!   accelerators issuing burstier traffic.

#![warn(missing_docs)]

pub mod casestudy;
pub mod file;
pub mod synthetic;
pub mod uunifast;

use bluescale_rt::task::TaskSet;

/// Total utilization of a collection of per-client task sets.
pub fn total_utilization(sets: &[TaskSet]) -> f64 {
    sets.iter().map(TaskSet::utilization).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_rt::task::Task;

    #[test]
    fn total_utilization_sums_sets() {
        let sets = vec![
            TaskSet::new(vec![Task::new(0, 10, 1).unwrap()]).unwrap(),
            TaskSet::new(vec![Task::new(0, 10, 2).unwrap()]).unwrap(),
            TaskSet::empty(),
        ];
        assert!((total_utilization(&sets) - 0.3).abs() < 1e-12);
    }
}
