//! An Earliest-Deadline-First priority queue.
//!
//! This is the *low-level* nested priority queue of a Scale Element: the
//! random-access buffer holds pending memory requests and always surfaces
//! the one with the earliest absolute deadline (ties broken FIFO, matching
//! the register-chain order of the hardware in the paper's Section 4.1).

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<T> {
    deadline: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline (then
        // the earliest arrival) is on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An EDF-ordered queue of items tagged with absolute deadlines.
///
/// # Example
///
/// ```
/// use bluescale_rt::edf::EdfQueue;
///
/// let mut q = EdfQueue::new();
/// q.push("late", 100);
/// q.push("early", 10);
/// q.push("middle", 50);
/// assert_eq!(q.pop(), Some(("early", 10)));
/// assert_eq!(q.pop(), Some(("middle", 50)));
/// assert_eq!(q.pop(), Some(("late", 100)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EdfQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EdfQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `item` with absolute `deadline`.
    pub fn push(&mut self, item: T, deadline: Time) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            deadline,
            seq,
            item,
        });
    }

    /// Removes and returns the earliest-deadline item with its deadline.
    pub fn pop(&mut self) -> Option<(T, Time)> {
        self.heap.pop().map(|e| (e.item, e.deadline))
    }

    /// The earliest deadline currently enqueued, without removing it.
    pub fn peek_deadline(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.deadline)
    }

    /// Borrow of the earliest-deadline item.
    pub fn peek(&self) -> Option<&T> {
        self.heap.peek().map(|e| &e.item)
    }

    /// Number of enqueued items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EdfQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut q = EdfQueue::new();
        for (i, d) in [30u64, 10, 20, 40, 5].into_iter().enumerate() {
            q.push(i, d);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, d)| d)).collect();
        assert_eq!(order, vec![5, 10, 20, 30, 40]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EdfQueue::new();
        q.push("first", 10);
        q.push("second", 10);
        q.push("third", 10);
        assert_eq!(q.pop().unwrap().0, "first");
        assert_eq!(q.pop().unwrap().0, "second");
        assert_eq!(q.pop().unwrap().0, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EdfQueue::new();
        q.push(1, 7);
        assert_eq!(q.peek_deadline(), Some(7));
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EdfQueue<u8> = EdfQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_deadline(), None);
    }

    #[test]
    fn clear_empties() {
        let mut q = EdfQueue::new();
        q.push(1, 1);
        q.push(2, 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EdfQueue::new();
        q.push('a', 50);
        q.push('b', 20);
        assert_eq!(q.pop().unwrap().0, 'b');
        q.push('c', 10);
        q.push('d', 60);
        assert_eq!(q.pop().unwrap().0, 'c');
        assert_eq!(q.pop().unwrap().0, 'a');
        assert_eq!(q.pop().unwrap().0, 'd');
    }
}
