//! Builds interconnects behind the common trait and runs seeded trials.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_interconnect::metrics::RunMetrics;
use bluescale_interconnect::system::System;
use bluescale_interconnect::Interconnect;
use bluescale_noc::NocMemoryInterconnect;
use bluescale_rt::task::TaskSet;
use bluescale_sim::Cycle;

/// The six interconnects of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterconnectKind {
    /// Centralized real-time interconnect.
    AxiIcRt,
    /// Distributed binary tree, blocking factor 2 (the paper's default).
    BlueTree,
    /// BlueTree with smoothing buffers.
    BlueTreeSmooth,
    /// Globally-arbitrated tree, equal TDM slots.
    GsmTreeTdm,
    /// Globally-arbitrated tree, workload-proportional slots.
    GsmTreeFbsp,
    /// The proposed architecture.
    BlueScale,
    /// Memory routed over the general-purpose mesh NoC (the "Legacy"
    /// system of Fig 5 — no real-time memory interconnect at all). Not
    /// part of the paper's Fig 6/7 comparisons; used by the extension
    /// experiments via [`InterconnectKind::EXTENDED`].
    LegacyNoc,
}

impl InterconnectKind {
    /// All six of the paper's evaluation, in its legend order.
    pub const ALL: [InterconnectKind; 6] = [
        InterconnectKind::AxiIcRt,
        InterconnectKind::BlueTree,
        InterconnectKind::BlueTreeSmooth,
        InterconnectKind::GsmTreeTdm,
        InterconnectKind::GsmTreeFbsp,
        InterconnectKind::BlueScale,
    ];

    /// The paper's six plus the legacy memory-over-NoC path.
    pub const EXTENDED: [InterconnectKind; 7] = [
        InterconnectKind::AxiIcRt,
        InterconnectKind::BlueTree,
        InterconnectKind::BlueTreeSmooth,
        InterconnectKind::GsmTreeTdm,
        InterconnectKind::GsmTreeFbsp,
        InterconnectKind::BlueScale,
        InterconnectKind::LegacyNoc,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            InterconnectKind::AxiIcRt => "AXI-IC^RT",
            InterconnectKind::BlueTree => "BlueTree",
            InterconnectKind::BlueTreeSmooth => "BlueTree-Smooth",
            InterconnectKind::GsmTreeTdm => "GSMTree-TDM",
            InterconnectKind::GsmTreeFbsp => "GSMTree-FBSP",
            InterconnectKind::BlueScale => "BlueScale",
            InterconnectKind::LegacyNoc => "Legacy-NoC",
        }
    }
}

/// Builds an interconnect of `kind` for the given per-client task sets
/// (needed by BlueScale's interface selection and GSMTree-FBSP's slot
/// weights; the others only use the client count).
///
/// All instances use unit memory service so one cycle is one transaction
/// time unit, and 8-entry port buffers.
///
/// # Panics
///
/// Panics if `task_sets` is empty.
pub fn build(kind: InterconnectKind, task_sets: &[TaskSet]) -> Box<dyn Interconnect> {
    let n = task_sets.len();
    assert!(n > 0, "at least one client required");
    match kind {
        InterconnectKind::AxiIcRt => Box::new(AxiIcRt::new(n, 8, 1)),
        InterconnectKind::BlueTree => Box::new(BlueTree::new(n, 2, 1)),
        InterconnectKind::BlueTreeSmooth => Box::new(BlueTree::smooth(n, 2, 1)),
        InterconnectKind::GsmTreeTdm => Box::new(GsmTree::new(n, SlotPolicy::Tdm, 1)),
        InterconnectKind::GsmTreeFbsp => {
            let weights: Vec<f64> = task_sets
                .iter()
                .map(|s| s.utilization().max(1e-4))
                .collect();
            Box::new(GsmTree::new(n, SlotPolicy::Fbsp(weights), 1))
        }
        InterconnectKind::LegacyNoc => Box::new(NocMemoryInterconnect::new(n, 1)),
        InterconnectKind::BlueScale => {
            let mut config = BlueScaleConfig::for_clients(n);
            // Idle provider cycles are granted to the earliest-deadline
            // pending port (budgets still gate contention). The extra
            // grant can transiently occupy a downstream slot, so this is
            // heuristic rather than provably supply-preserving; the
            // analysis_vs_simulation integration tests verify that
            // admitted systems stay miss-free in both modes.
            config.work_conserving = true;
            Box::new(
                BlueScaleInterconnect::new(config, task_sets)
                    .expect("client count matches task sets"),
            )
        }
    }
}

/// Runs one trial of `kind` on `task_sets` for `horizon` cycles and
/// returns the collected metrics.
pub fn run_trial(kind: InterconnectKind, task_sets: &[TaskSet], horizon: Cycle) -> RunMetrics {
    let ic = build(kind, task_sets);
    let mut system = System::new(ic, task_sets);
    system.run(horizon)
}

/// Runs one trial with detail recording (typed events + request
/// lifecycles) enabled and returns the run metrics together with the
/// merged harness + interconnect registry snapshot.
pub fn run_trial_detailed(
    kind: InterconnectKind,
    task_sets: &[TaskSet],
    horizon: Cycle,
) -> (RunMetrics, bluescale_sim::metrics::MetricsRegistry) {
    let ic = build(kind, task_sets);
    let mut system = System::new(ic, task_sets);
    system.enable_detail();
    let metrics = system.run(horizon);
    let registry = system.merged_registry();
    (metrics, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_rt::task::Task;

    fn sets(n: usize) -> Vec<TaskSet> {
        (0..n)
            .map(|_| TaskSet::new(vec![Task::new(0, 400, 2).unwrap()]).unwrap())
            .collect()
    }

    #[test]
    fn builds_all_kinds() {
        let task_sets = sets(16);
        for kind in InterconnectKind::EXTENDED {
            let ic = build(kind, &task_sets);
            assert_eq!(ic.num_clients(), 16, "{}", kind.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = InterconnectKind::EXTENDED
            .iter()
            .map(|k| k.name())
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn detailed_trial_matches_plain_trial_and_adds_detail() {
        use bluescale_sim::metrics::{ComponentId, Counter, SampleKind};

        let task_sets = sets(16);
        let plain = run_trial(InterconnectKind::BlueScale, &task_sets, 4000);
        let (detailed, registry) =
            run_trial_detailed(InterconnectKind::BlueScale, &task_sets, 4000);
        // Observability must not perturb the simulation.
        assert_eq!(plain.issued(), detailed.issued());
        assert_eq!(plain.completed(), detailed.completed());
        assert_eq!(plain.missed(), detailed.missed());
        // The merged registry carries both harness aggregates and
        // interconnect component tallies.
        assert_eq!(
            registry.counter(ComponentId::System, Counter::Completed),
            detailed.completed()
        );
        assert!(registry.counter(ComponentId::Memory, Counter::MemAccepted) > 0);
        let root = ComponentId::Se { depth: 0, order: 0 };
        assert!(registry.counter(root, Counter::Forwarded) > 0);
        // Lifecycle breakdowns were recorded per client.
        let q = registry
            .samples(ComponentId::Client(0), SampleKind::Queueing)
            .expect("lifecycle stages recorded");
        assert!(!q.as_slice().is_empty());
        assert!(detailed.mean_latency() >= 1.0);
    }

    #[test]
    fn light_load_no_misses_for_all_kinds() {
        let task_sets = sets(16);
        for kind in InterconnectKind::EXTENDED {
            let m = run_trial(kind, &task_sets, 4000);
            assert!(m.issued() > 0, "{}", kind.name());
            assert!(
                m.success(),
                "{} missed {} of {}",
                kind.name(),
                m.missed(),
                m.issued()
            );
        }
    }
}
