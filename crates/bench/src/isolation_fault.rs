//! Extension experiment: temporal isolation under injected faults, with
//! the runtime guard layer active.
//!
//! The [`isolation`](crate::isolation) experiment shows one failure mode
//! (a rogue flooding client). This one drives BlueScale — in its strict
//! budget-gated mode, where the compositional analysis guarantees every
//! admitted request finishes inside its deadline window — through **every
//! fault class** of [`bluescale_sim::fault`] and checks the guarantee for
//! the *non-faulted* clients:
//!
//! * each victim's worst **normalized response time** stays ≤ 1.0 (the
//!   analytic WCRT bound: latency never exceeds the deadline window), and
//! * victims record **zero deadline misses**,
//!
//! while the guard layer detects and contains the misbehaviour (rogues
//! quarantined, dropped responses recovered by the watchdog). The run
//! **asserts** these properties — the bench doubles as an executable
//! isolation proof.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::guard::{GuardConfig, QuarantinePolicy, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultClass, FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of the fault-isolation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationFaultConfig {
    /// Number of clients (client 0 is the fault target where applicable).
    pub clients: usize,
    /// Horizon per scenario.
    pub horizon: Cycle,
    /// Master seed (workload and fault plans).
    pub seed: u64,
}

impl Default for IsolationFaultConfig {
    fn default() -> Self {
        Self {
            clients: 16,
            horizon: 20_000,
            seed: 0xFA_17,
        }
    }
}

/// Results of one fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationFaultRow {
    /// The injected fault class (`None` = fault-free control).
    pub class: Option<FaultClass>,
    /// Total deadline misses across all victims (must be 0).
    pub victim_missed: u64,
    /// Worst normalized response time over all victims (must be ≤ 1.0).
    pub victim_worst_normalized: f64,
    /// The faulted client's own miss ratio (only it may pay).
    pub target_miss_ratio: f64,
    /// Fault activations recorded (harness + interconnect registries).
    pub faults_injected: u64,
    /// Watchdog re-injections.
    pub retries: u64,
    /// Quarantine demotions.
    pub quarantines: u64,
    /// Tracked requests never delivered (lost or still in flight).
    pub outstanding: u64,
}

/// The faulted client for client-targeted classes.
pub const TARGET: u32 = 0;

fn scenario_plan(class: FaultClass, horizon: Cycle, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    match class {
        FaultClass::RogueDemand => plan.push(
            FaultKind::RogueDemand {
                client: TARGET,
                factor: 8,
            },
            FaultWindow::ALWAYS,
        ),
        FaultClass::RequestBurst => plan.push(
            FaultKind::RequestBurst {
                client: TARGET,
                requests: 60,
            },
            FaultWindow::new(horizon / 4, horizon / 4 + 1),
        ),
        // Client 0 attaches to the first leaf SE's port 0: hold that
        // grant port low for a stretch.
        FaultClass::StuckGrant => plan.push(
            FaultKind::StuckGrant {
                depth: 1,
                order: 0,
                port: 0,
            },
            FaultWindow::new(horizon / 4, horizon / 2),
        ),
        FaultClass::DramJitter => plan.push(
            FaultKind::DramJitter {
                bank: 0,
                max_extra_cycles: 2,
            },
            FaultWindow::new(0, horizon / 2),
        ),
        FaultClass::DropResponse => plan.push(
            FaultKind::DropResponse {
                client: TARGET,
                every: 2,
            },
            FaultWindow::new(0, horizon / 2),
        ),
    };
    plan
}

fn scenario_guards(class: Option<FaultClass>) -> GuardConfig {
    match class {
        // The control runs guarded too: idle guards must cost nothing.
        // A stuck grant port delays requests without losing them, so the
        // watchdog stays off there — re-injecting requests that are still
        // in flight would add undeclared duplicate traffic.
        None
        | Some(FaultClass::RequestBurst)
        | Some(FaultClass::DramJitter)
        | Some(FaultClass::StuckGrant) => GuardConfig {
            deadline_miss_detection: true,
            ..GuardConfig::disabled()
        },
        Some(FaultClass::RogueDemand) => GuardConfig {
            deadline_miss_detection: true,
            watchdog: None,
            quarantine: Some(QuarantinePolicy { miss_threshold: 20 }),
        },
        // The watchdog timeout must exceed the longest legitimate deadline
        // window (period_max = 4000 cycles here), or it would re-inject
        // healthy slow requests and perturb the very clients it protects.
        Some(FaultClass::DropResponse) => GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 4_096,
                max_retries: 4,
            }),
            quarantine: None,
        },
    }
}

/// Runs all scenarios and returns one row per entry of
/// `[None, RogueDemand, RequestBurst, StuckGrant, DramJitter,
/// DropResponse]`, asserting the isolation properties as it goes.
///
/// # Panics
///
/// Panics if any victim misses a deadline or exceeds its normalized WCRT
/// bound under any fault class — that would falsify the isolation claim
/// this experiment exists to demonstrate.
pub fn run(config: &IsolationFaultConfig) -> Vec<IsolationFaultRow> {
    run_with_registry(config).0
}

/// Like [`run`], also returning a registry with one
/// [`ComponentId::Series`] slice per scenario (same order as the rows):
/// victim aggregates as custom samples plus the guard/fault counters.
pub fn run_with_registry(
    config: &IsolationFaultConfig,
) -> (Vec<IsolationFaultRow>, MetricsRegistry) {
    let mut rng = SimRng::seed_from(config.seed);
    // Moderate declared load: the analysis admits it, leaving the faults
    // (not over-subscription) as the only threat to deadlines.
    let synthetic = SyntheticConfig {
        util_lo: 0.40,
        util_hi: 0.50,
        ..SyntheticConfig::fig6(config.clients)
    };
    let sets = generate(&synthetic, &mut rng);
    let mut registry = MetricsRegistry::new();
    registry.set_gauge(ComponentId::System, "clients", config.clients as f64);
    registry.set_gauge(ComponentId::System, "horizon", config.horizon as f64);

    let scenarios: Vec<Option<FaultClass>> = std::iter::once(None)
        .chain(FaultClass::ALL.into_iter().map(Some))
        .collect();
    let rows: Vec<IsolationFaultRow> = scenarios
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let row = run_scenario(config, &sets, class);
            let series = ComponentId::Series(i as u16);
            registry.inc(series, Counter::Trials);
            registry.add(series, Counter::Missed, row.victim_missed);
            registry.add(series, Counter::FaultsInjected, row.faults_injected);
            registry.add(series, Counter::Retries, row.retries);
            registry.add(series, Counter::Quarantines, row.quarantines);
            registry.observe(
                series,
                SampleKind::Custom("victim_worst_normalized"),
                row.victim_worst_normalized,
            );
            registry.observe(
                series,
                SampleKind::Custom("target_miss_ratio"),
                row.target_miss_ratio,
            );
            row
        })
        .collect();
    (rows, registry)
}

fn run_scenario(
    config: &IsolationFaultConfig,
    sets: &[TaskSet],
    class: Option<FaultClass>,
) -> IsolationFaultRow {
    // Strict budget gating: the mode the analytic WCRT bound speaks about.
    let bs_config = BlueScaleConfig::for_clients(config.clients);
    let ic = BlueScaleInterconnect::new(bs_config, sets).expect("admitted workload");
    assert!(
        ic.composition().schedulable,
        "the declared workload must pass admission"
    );
    let mut sys: System<BlueScaleInterconnect> = System::new(Box::new(ic), sets);
    if let Some(class) = class {
        sys.set_fault_plan(scenario_plan(class, config.horizon, config.seed));
    }
    sys.set_guards(scenario_guards(class))
        .expect("scenario guards clear the 4000-cycle deadline window");
    let total = sys.run(config.horizon);

    let (mut victim_missed, mut victim_worst) = (0u64, 0.0f64);
    let mut per_client = sys.per_client_metrics();
    for (c, m) in per_client.iter_mut().enumerate() {
        if c == TARGET as usize {
            continue;
        }
        victim_missed += m.missed();
        victim_worst = victim_worst.max(m.normalized_response().max().unwrap_or(0.0));
    }
    let target_miss_ratio = per_client[TARGET as usize].miss_ratio();

    let merged = sys.merged_registry();
    let row = IsolationFaultRow {
        class,
        victim_missed,
        victim_worst_normalized: victim_worst,
        target_miss_ratio,
        faults_injected: merged.counter(ComponentId::System, Counter::FaultsInjected),
        retries: merged.counter(ComponentId::System, Counter::Retries),
        quarantines: merged.counter(ComponentId::System, Counter::Quarantines),
        outstanding: sys.guard_outstanding() as u64,
    };

    // The isolation claim, checked on every scenario.
    let label = class.map_or("control", |c| c.name());
    assert_eq!(
        row.victim_missed, 0,
        "[{label}] victims must stay miss-free"
    );
    assert!(
        row.victim_worst_normalized <= 1.0,
        "[{label}] victim exceeded its WCRT bound: {}",
        row.victim_worst_normalized
    );
    match class {
        None => assert_eq!(row.faults_injected, 0, "control must be fault-free"),
        Some(c) => {
            assert!(row.faults_injected > 0, "[{label}] fault never fired");
            if c == FaultClass::RogueDemand {
                assert!(row.quarantines >= 1, "rogue must be quarantined");
            }
            if c == FaultClass::DropResponse {
                assert!(row.retries > 0, "watchdog must re-issue dropped requests");
            }
        }
    }
    // Request conservation under guard tracking: everything accepted
    // either completed exactly once or is still outstanding.
    assert_eq!(
        total.issued(),
        total.completed() + total.backlog() + row.outstanding,
        "[{label}] conservation: issued = completed + backlog + outstanding"
    );
    row
}

/// Renders the table.
pub fn render(config: &IsolationFaultConfig, rows: &[IsolationFaultRow]) -> String {
    let mut s = format!(
        "# Extension: isolation under fault injection ({} clients, horizon {}, \
         strict gating, guards on)\n\nVictim = any client the fault does not \
         target. Asserted per scenario: victims miss-free and within the \
         normalized WCRT bound (≤ 1.0).\n\n",
        config.clients, config.horizon
    );
    s.push_str(
        "| Fault class | Victim misses | Victim worst norm. resp. | Target miss | \
         Faults fired | Retries | Quarantines | Outstanding |\n",
    );
    s.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {} | {:.3} | {:.1}% | {} | {} | {} | {} |\n",
            r.class.map_or("none (control)", |c| c.name()),
            r.victim_missed,
            r.victim_worst_normalized,
            100.0 * r.target_miss_ratio,
            r.faults_injected,
            r.retries,
            r.quarantines,
            r.outstanding,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IsolationFaultConfig {
        IsolationFaultConfig {
            clients: 16,
            horizon: 10_000,
            seed: 0xFA_17,
        }
    }

    #[test]
    fn all_fault_classes_hold_the_isolation_bound() {
        // run() asserts the bound internally; surviving it is the test.
        let rows = run(&tiny());
        assert_eq!(rows.len(), 1 + FaultClass::ALL.len());
        assert!(rows[0].class.is_none());
    }

    #[test]
    fn registry_mirrors_the_rows() {
        let (rows, registry) = run_with_registry(&tiny());
        for (i, row) in rows.iter().enumerate() {
            let series = ComponentId::Series(i as u16);
            assert_eq!(
                registry.counter(series, Counter::FaultsInjected),
                row.faults_injected
            );
            let worst = registry.stat(series, SampleKind::Custom("victim_worst_normalized"));
            assert!((worst.mean() - row.victim_worst_normalized).abs() < 1e-12);
        }
    }

    #[test]
    fn render_lists_every_class() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        for class in FaultClass::ALL {
            assert!(text.contains(class.name()), "missing {}", class.name());
        }
        assert!(text.contains("none (control)"));
    }
}
