//! The control-plane daemon: a TCP admission front-end over the tenant
//! registry, hardened for overload and crashes.
//!
//! # Threads
//!
//! * **Acceptor** — non-blocking accept loop; one handler thread per
//!   connection.
//! * **Handlers** — decode one request frame at a time. Read-only
//!   requests (`Ping`, `Stats`) answer immediately. Admission requests
//!   pass tiered overload control and enter the bounded queue with a
//!   per-request decision deadline; the handler blocks on its reply
//!   channel and writes whatever verdict the worker sends.
//! * **Worker** — the single owner of the journal and circuit breaker.
//!   Drains the queue in batches; for each request: expire (TimedOut) →
//!   breaker fast-fail → registry apply → journal append. One
//!   `sync` per batch (group commit) and **replies are sent only after
//!   the sync** — an acknowledged admission is durable. Between batches
//!   the worker advances the live simulation so admitted tenants' traffic
//!   generates the miss/latency streams `Stats` serves.
//!
//! # Shedding tiers
//!
//! The queue is bounded. As occupancy rises, tiers shed in a fixed
//! severity order — best-effort renegotiations first, guaranteed joins
//! last, leaves never (shrinking load must always get through):
//!
//! | tier | class      | op          | shed at occupancy ≥ |
//! |------|------------|-------------|---------------------|
//! | 0    | best-effort| renegotiate | 50% of depth        |
//! | 1    | best-effort| join        | 65%                 |
//! | 2    | guaranteed | renegotiate | 80%                 |
//! | 3    | guaranteed | join        | 95%                 |
//!
//! A shed request receives an explicit [`Response::Shed`] — the daemon
//! degrades by refusing work, never by stalling or silently dropping.

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::journal::{self, Journal, Op, RecoveryError};
use crate::proto::TelemetryUpdate;
use crate::proto::{
    write_frame, FrameReader, RejectReason, Request, Response, TaskSpec, TenantClass,
};
use crate::registry::{ApplyOutcome, ControlRegistry, ReplayDiverged};
use bluescale::BuildError;
use bluescale_sim::metrics::Counter;
use bluescale_telemetry::{FanOut, FanOutSink, JsonlSink, Pipeline, SloConfig};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Streaming-telemetry tuning. Enabling telemetry never changes what the
/// daemon simulates — extraction is read-only and flushes run between
/// simulated spans from the worker thread.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Flush period in simulation cycles.
    pub period: u64,
    /// SLO derivation window, in flush epochs.
    pub slo_window: usize,
    /// Per-subscriber channel depth; a subscriber this far behind is
    /// shed (updates dropped, `subscriber_lagged` counted).
    pub subscriber_depth: usize,
    /// Mirror every epoch to this JSONL file, if set.
    pub jsonl_path: Option<PathBuf>,
    /// Test knob: sleep this long before each pushed frame, simulating a
    /// subscriber whose reads cannot keep up.
    pub slow_subscriber_writes: Option<Duration>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            period: 256,
            slo_window: 16,
            subscriber_depth: 32,
            jsonl_path: None,
            slow_subscriber_writes: None,
        }
    }
}

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Tenant slots in the registry (clients in the BlueScale tree).
    pub capacity: usize,
    /// Bound on queued admission requests (leaves may exceed it).
    pub queue_depth: usize,
    /// Most requests decided under one registry lock / journal sync.
    pub batch_max: usize,
    /// Simulation cycles advanced after each batch.
    pub sim_cycles_per_batch: u64,
    /// Journal records between snapshot compactions (0 = never).
    pub compact_every: u64,
    /// Per-request decision deadline once queued.
    pub queue_deadline: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Streaming telemetry; `None` (the default) disables it and
    /// [`Request::Subscribe`] answers `Err { code: 3 }`.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            capacity: 64,
            queue_depth: 256,
            batch_max: 32,
            sim_cycles_per_batch: 64,
            compact_every: 0,
            queue_deadline: Duration::from_secs(1),
            breaker: BreakerConfig::default(),
            telemetry: None,
        }
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum StartError {
    /// Journal recovery failed (I/O, corrupt snapshot, sequence gap).
    Recovery(RecoveryError),
    /// Replaying the journal against the admission path diverged.
    Replay(ReplayDiverged),
    /// Building the BlueScale system failed.
    Build(BuildError),
    /// Binding the listener or spawning threads failed.
    Io(io::Error),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Recovery(e) => write!(f, "journal recovery failed: {e}"),
            StartError::Replay(e) => write!(f, "journal replay diverged: {e}"),
            StartError::Build(e) => write!(f, "system build failed: {e}"),
            StartError::Io(e) => write!(f, "daemon I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

/// Monotone request accounting, for the conservation invariant.
#[derive(Debug, Default)]
struct Stats {
    received: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    retries: AtomicU64,
    /// Sheds not yet folded into the sim registry's `Sheds` counter.
    shed_unfolded: AtomicU64,
}

/// A point-in-time copy of the daemon's request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Admission requests that entered the daemon.
    pub received: u64,
    /// Requests applied and made durable.
    pub admitted: u64,
    /// Requests refused with a typed reason.
    pub rejected: u64,
    /// Requests shed by tiered overload control.
    pub shed: u64,
    /// Requests whose queueing deadline expired.
    pub timed_out: u64,
    /// Requests that arrived with `attempt > 0`.
    pub retries: u64,
}

impl StatsSnapshot {
    /// Every admission request got exactly one disposition. Holds once
    /// the daemon is quiescent (no queued requests in flight).
    pub fn conservation_holds(&self) -> bool {
        self.received == self.admitted + self.rejected + self.shed + self.timed_out
    }
}

/// One queued admission request.
struct Pending {
    op: PendingOp,
    attempt: u32,
    deadline: Instant,
    reply: mpsc::Sender<Response>,
}

enum PendingOp {
    Join {
        tenant: u64,
        class: TenantClass,
        tasks: Vec<TaskSpec>,
    },
    Renegotiate {
        tenant: u64,
        tasks: Vec<TaskSpec>,
    },
    Leave {
        tenant: u64,
    },
}

impl PendingOp {
    fn tenant(&self) -> u64 {
        match *self {
            PendingOp::Join { tenant, .. }
            | PendingOp::Renegotiate { tenant, .. }
            | PendingOp::Leave { tenant } => tenant,
        }
    }
}

struct QueueState {
    items: VecDeque<Pending>,
    closed: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

/// Shedding tier for an admission op, or `None` when the op must never
/// be shed (leaves).
fn shed_tier(op: &PendingOp, classes: &BTreeMap<u64, TenantClass>) -> Option<u8> {
    match op {
        PendingOp::Leave { .. } => None,
        PendingOp::Join { class, .. } => Some(match class {
            TenantClass::BestEffort => 1,
            TenantClass::Guaranteed => 3,
        }),
        PendingOp::Renegotiate { tenant, .. } => Some(match classes.get(tenant) {
            Some(TenantClass::Guaranteed) => 2,
            // Unknown tenants shed with best-effort renegotiations: the
            // request would be rejected anyway.
            Some(TenantClass::BestEffort) | None => 0,
        }),
    }
}

/// Occupancy at which each tier starts shedding, as a fraction of depth.
fn watermarks(depth: usize) -> [usize; 4] {
    let at = |pct: usize| (depth * pct / 100).max(1);
    [at(50), at(65), at(80), at(95)]
}

/// A running control-plane daemon. Dropping the handle does NOT stop the
/// daemon; call [`shutdown`](Self::shutdown) (graceful drain) or
/// [`kill`](Self::kill) (simulated crash).
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// When set with `stop`, the worker abandons the queue (crash-style).
    abandon: Arc<AtomicBool>,
    queue: Arc<Queue>,
    registry: Arc<Mutex<ControlRegistry>>,
    stats: Arc<Stats>,
    acceptor: Option<JoinHandle<()>>,
    worker: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    /// Telemetry fan-out hub, present when streaming is enabled.
    fanout: Option<Arc<FanOut>>,
}

impl Daemon {
    /// Recovers the journal in `dir`, replays it to the pre-crash
    /// admission state, and starts serving on an ephemeral loopback port.
    pub fn start(dir: &Path, config: DaemonConfig) -> Result<Daemon, StartError> {
        std::fs::create_dir_all(dir).map_err(StartError::Io)?;
        let recovery = journal::recover(dir).map_err(StartError::Recovery)?;
        let mut registry = ControlRegistry::new(config.capacity).map_err(StartError::Build)?;
        if let Some(snapshot) = &recovery.snapshot {
            registry.restore(snapshot).map_err(StartError::Replay)?;
        }
        for (seq, op) in &recovery.ops {
            registry.replay(*seq, op).map_err(StartError::Replay)?;
        }
        let journal = Journal::open(dir, &recovery).map_err(StartError::Io)?;

        let fanout = match &config.telemetry {
            Some(tcfg) => {
                let mut pipeline = Pipeline::new(
                    tcfg.period,
                    SloConfig {
                        window_epochs: tcfg.slo_window,
                        ..SloConfig::default()
                    },
                );
                if let Some(path) = &tcfg.jsonl_path {
                    pipeline.add_sink(JsonlSink::create(path).map_err(StartError::Io)?);
                }
                let hub = FanOut::new();
                pipeline.add_sink(FanOutSink::new(Arc::clone(&hub)));
                registry.attach_telemetry(pipeline);
                Some(hub)
            }
            None => None,
        };

        let classes: BTreeMap<u64, TenantClass> = recovery
            .snapshot
            .iter()
            .flat_map(|s| s.tenants.iter().map(|t| (t.tenant, t.class)))
            .chain(recovery.ops.iter().filter_map(|(_, op)| match op {
                Op::Join { tenant, class, .. } => Some((*tenant, *class)),
                _ => None,
            }))
            .filter(|(tenant, _)| registry.tenant(*tenant).is_some())
            .collect();

        let listener = TcpListener::bind("127.0.0.1:0").map_err(StartError::Io)?;
        listener.set_nonblocking(true).map_err(StartError::Io)?;
        let addr = listener.local_addr().map_err(StartError::Io)?;

        let stop = Arc::new(AtomicBool::new(false));
        let abandon = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        let registry = Arc::new(Mutex::new(registry));
        let stats = Arc::new(Stats::default());
        let classes = Arc::new(Mutex::new(classes));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let classes = Arc::clone(&classes);
            let handlers = Arc::clone(&handlers);
            let config = config.clone();
            let fanout = fanout.as_ref().map(Arc::clone);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let ctx = HandlerCtx {
                            stop: Arc::clone(&stop),
                            queue: Arc::clone(&queue),
                            registry: Arc::clone(&registry),
                            stats: Arc::clone(&stats),
                            classes: Arc::clone(&classes),
                            config: config.clone(),
                            fanout: fanout.as_ref().map(Arc::clone),
                        };
                        let handle = std::thread::spawn(move || handle_connection(stream, &ctx));
                        let mut list = handlers.lock().expect("handler list");
                        // Reap finished handlers so a long-lived daemon
                        // serving many short connections doesn't grow the
                        // list (and retain dead threads) without bound.
                        let mut i = 0;
                        while i < list.len() {
                            if list[i].is_finished() {
                                let _ = list.swap_remove(i).join();
                            } else {
                                i += 1;
                            }
                        }
                        list.push(handle);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                }
            })
        };

        let worker = {
            let stop = Arc::clone(&stop);
            let abandon = Arc::clone(&abandon);
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let stats = Arc::clone(&stats);
            let classes = Arc::clone(&classes);
            let config = config.clone();
            let fanout = fanout.as_ref().map(Arc::clone);
            std::thread::spawn(move || {
                admission_worker(
                    journal,
                    &config,
                    &stop,
                    &abandon,
                    &queue,
                    &registry,
                    &stats,
                    &classes,
                    fanout.as_deref(),
                )
            })
        };

        Ok(Daemon {
            addr,
            stop,
            abandon,
            queue,
            registry,
            stats,
            acceptor: Some(acceptor),
            worker: Some(worker),
            handlers,
            fanout,
        })
    }

    /// The loopback address the daemon serves on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time request accounting.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            received: self.stats.received.load(Ordering::Relaxed),
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            timed_out: self.stats.timed_out.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
        }
    }

    /// The admission-state digest (see
    /// [`ControlRegistry::state_digest`]). Stable once every in-flight
    /// request has been answered.
    pub fn state_digest(&self) -> u64 {
        self.registry.lock().expect("registry").state_digest()
    }

    /// Reads a System-scope sim counter (AdmissionTimeouts, Sheds,
    /// Retries, RecoveryReplays, ...).
    pub fn sim_counter(&self, counter: Counter) -> u64 {
        self.registry.lock().expect("registry").counter(counter)
    }

    /// Admitted tenant count.
    pub fn tenant_count(&self) -> usize {
        self.registry.lock().expect("registry").tenant_count()
    }

    /// Slots demoted through the quarantine path (circuit-breaker trips).
    pub fn quarantined_slots(&self) -> Vec<u32> {
        self.registry.lock().expect("registry").quarantined_slots()
    }

    /// Live telemetry subscribers (0 when streaming is disabled).
    pub fn subscriber_count(&self) -> usize {
        self.fanout.as_ref().map_or(0, |f| f.subscriber_count())
    }

    fn stop_threads(&mut self, abandon: bool) {
        self.abandon.store(abandon, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut q = self.queue.state.lock().expect("queue");
            q.closed = true;
        }
        self.queue.cv.notify_all();
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handlers: Vec<_> = std::mem::take(&mut *self.handlers.lock().expect("handler list"));
        for h in handlers {
            let _ = h.join();
        }
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: drains the queue (every queued request still gets
    /// its verdict), then joins all threads.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.stop_threads(false);
        self.stats()
    }

    /// Simulated crash: stops without draining. Queued requests are
    /// dropped (their clients see a connection-level error, never a fake
    /// verdict); the journal keeps only what was synced. Use with a
    /// subsequent [`Daemon::start`] on the same directory to exercise
    /// recovery.
    pub fn kill(mut self) -> StatsSnapshot {
        self.stop_threads(true);
        self.stats()
    }
}

struct HandlerCtx {
    stop: Arc<AtomicBool>,
    queue: Arc<Queue>,
    registry: Arc<Mutex<ControlRegistry>>,
    stats: Arc<Stats>,
    classes: Arc<Mutex<BTreeMap<u64, TenantClass>>>,
    config: DaemonConfig,
    fanout: Option<Arc<FanOut>>,
}

fn handle_connection(mut stream: TcpStream, ctx: &HandlerCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    // The reader buffers partial progress across the 100ms poll timeouts:
    // a timeout that fires mid-frame (slow-but-healthy peer) must not
    // restart the framing mid-stream.
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.read(&mut stream) {
            Ok(Some(p)) => p,
            // Poll timeout — idle or mid-frame, consumed bytes are kept.
            Ok(None) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            // Disconnect or protocol violation: drop the connection.
            Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(_) => {
                let _ = write_frame(&mut stream, &Response::Err { code: 1 }.encode());
                return;
            }
        };
        if let Request::Subscribe { tenant } = request {
            // The connection becomes a one-way push stream (or gets a
            // typed refusal and stays in request/response mode).
            if serve_subscription(&mut stream, tenant, ctx) {
                return;
            }
            continue;
        }
        let response = dispatch(request, ctx);
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Streams the tenant's own SLO series over `stream` until the client
/// disconnects or the daemon stops. Returns `true` when the connection
/// was converted to a stream (and is now done), `false` when the
/// subscription was refused with a typed response and the connection
/// should continue serving requests.
fn serve_subscription(stream: &mut TcpStream, tenant: u64, ctx: &HandlerCtx) -> bool {
    let Some(fanout) = &ctx.fanout else {
        // Streaming disabled on this daemon.
        let _ = write_frame(stream, &Response::Err { code: 3 }.encode());
        return false;
    };
    let slot = {
        let reg = ctx.registry.lock().expect("registry");
        reg.slot_of(tenant)
    };
    let Some(slot) = slot else {
        let _ = write_frame(
            stream,
            &Response::Rejected {
                reason: RejectReason::UnknownTenant,
            }
            .encode(),
        );
        return false;
    };
    let depth = ctx
        .config
        .telemetry
        .as_ref()
        .map_or(32, |t| t.subscriber_depth);
    let slow = ctx
        .config
        .telemetry
        .as_ref()
        .and_then(|t| t.slow_subscriber_writes);
    let (id, rx) = fanout.subscribe(slot, depth);
    if write_frame(stream, &Response::Subscribed.encode()).is_err() {
        fanout.unsubscribe(id);
        return true;
    }
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(point) => {
                if let Some(delay) = slow {
                    std::thread::sleep(delay);
                }
                let update = TelemetryUpdate {
                    tenant,
                    epoch: point.epoch,
                    cycle: point.cycle,
                    issued: point.issued,
                    completed: point.completed,
                    missed: point.missed,
                    miss_rate: point.miss_rate,
                    p99_normalized: point.p99_normalized,
                    overrun_rate: point.overrun_rate,
                };
                if write_frame(stream, &Response::Telemetry(update).encode()).is_err() {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if ctx.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    fanout.unsubscribe(id);
    true
}

fn dispatch(request: Request, ctx: &HandlerCtx) -> Response {
    let (op, attempt) = match request {
        Request::Ping => return Response::Pong,
        // Intercepted in handle_connection; unreachable here.
        Request::Subscribe { .. } => return Response::Err { code: 1 },
        Request::Stats { tenant } => {
            let reg = ctx.registry.lock().expect("registry");
            return match reg.stats_for(tenant) {
                Some(stats) => Response::Stats(stats),
                None => Response::Rejected {
                    reason: RejectReason::UnknownTenant,
                },
            };
        }
        Request::Join {
            tenant,
            class,
            tasks,
            attempt,
        } => (
            PendingOp::Join {
                tenant,
                class,
                tasks,
            },
            attempt,
        ),
        Request::Renegotiate {
            tenant,
            tasks,
            attempt,
        } => (PendingOp::Renegotiate { tenant, tasks }, attempt),
        Request::Leave { tenant, attempt } => (PendingOp::Leave { tenant }, attempt),
    };

    ctx.stats.received.fetch_add(1, Ordering::Relaxed);
    if attempt > 0 {
        ctx.stats.retries.fetch_add(1, Ordering::Relaxed);
    }

    // Tiered overload control, decided against current queue occupancy
    // without touching the registry lock (the worker may be mid-batch).
    let tier = {
        let classes = ctx.classes.lock().expect("classes");
        shed_tier(&op, &classes)
    };
    let marks = watermarks(ctx.config.queue_depth);

    let (tx, rx) = mpsc::channel();
    {
        let mut q = ctx.queue.state.lock().expect("queue");
        if q.closed {
            drop(q);
            // Refused at the door (shutdown or journal failure): a typed
            // verdict that keeps the conservation invariant.
            ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::Err { code: 1 };
        }
        let occupancy = q.items.len();
        if let Some(tier) = tier {
            if occupancy >= marks[tier as usize] {
                drop(q);
                ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
                ctx.stats.shed_unfolded.fetch_add(1, Ordering::Relaxed);
                return Response::Shed { tier };
            }
        }
        q.items.push_back(Pending {
            op,
            attempt,
            deadline: Instant::now() + ctx.config.queue_deadline,
            reply: tx,
        });
    }
    ctx.queue.cv.notify_one();

    // The worker replies to every drained request; a dropped sender means
    // the daemon died (or was killed) with the request queued.
    rx.recv().unwrap_or(Response::Err { code: 1 })
}

#[allow(clippy::too_many_arguments)]
fn admission_worker(
    mut journal: Journal,
    config: &DaemonConfig,
    stop: &AtomicBool,
    abandon: &AtomicBool,
    queue: &Queue,
    registry: &Mutex<ControlRegistry>,
    stats: &Stats,
    classes: &Mutex<BTreeMap<u64, TenantClass>>,
    fanout: Option<&FanOut>,
) {
    // Folds the fan-out's shed tally into the sim registry. Runs right
    // after each sim advance, so the counter lives next to the metrics
    // stream it explains.
    let fold_lagged = |reg: &mut ControlRegistry| {
        if let Some(hub) = fanout {
            let lagged = hub.take_lagged();
            if lagged > 0 {
                reg.count_by(Counter::SubscriberLagged, lagged);
            }
        }
    };
    let mut breaker = CircuitBreaker::new(config.breaker);
    let mut records_since_compact = 0u64;
    loop {
        // Collect one batch (blocking until work, stop, or a sim tick is
        // due).
        let mut batch = Vec::new();
        {
            let mut q = queue.state.lock().expect("queue");
            while q.items.is_empty() && !q.closed {
                let (next, _timeout) = queue
                    .cv
                    .wait_timeout(q, Duration::from_millis(20))
                    .expect("queue wait");
                q = next;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // Periodic sim advance even when idle, so admitted
                // tenants' streams keep flowing.
                if q.items.is_empty() {
                    drop(q);
                    {
                        let mut reg = registry.lock().expect("registry");
                        reg.step(config.sim_cycles_per_batch);
                        fold_lagged(&mut reg);
                    }
                    q = queue.state.lock().expect("queue");
                }
            }
            if q.items.is_empty() && (stop.load(Ordering::Relaxed) || q.closed) {
                break;
            }
            if abandon.load(Ordering::SeqCst) {
                // Simulated crash: drop queued requests unanswered.
                q.items.clear();
                break;
            }
            for _ in 0..config.batch_max {
                match q.items.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
        }
        if batch.is_empty() {
            continue;
        }

        let mut reg = registry.lock().expect("registry");
        // Deferred replies: admitted ops reply only after the group sync.
        let mut durable: Vec<(mpsc::Sender<Response>, Response)> = Vec::new();
        let mut appended = 0u64;
        // Set when a journal append fails: the daemon can no longer make
        // state changes durable and must stop serving admissions.
        let mut journal_failed = false;
        let mut batch_iter = batch.into_iter();
        for pending in batch_iter.by_ref() {
            let now = Instant::now();
            if now >= pending.deadline {
                reg.count(Counter::AdmissionTimeouts);
                stats.timed_out.fetch_add(1, Ordering::Relaxed);
                let _ = pending.reply.send(Response::TimedOut);
                continue;
            }
            if pending.attempt > 0 {
                reg.count(Counter::Retries);
            }
            let tenant = pending.op.tenant();
            if breaker.is_open(tenant) {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = pending.reply.send(Response::Rejected {
                    reason: RejectReason::Quarantined,
                });
                continue;
            }
            let (outcome, journal_op) = apply(&mut reg, &pending.op);
            match outcome {
                ApplyOutcome::Admitted {
                    slot,
                    transition_cycles,
                } => {
                    let op = journal_op.expect("admitted ops are journaled");
                    match journal.append(&op) {
                        Ok(seq) => {
                            appended += 1;
                            durable.push((
                                pending.reply,
                                Response::Admitted {
                                    seq,
                                    transition_cycles,
                                },
                            ));
                        }
                        Err(_) => {
                            // Applied but not durable: fatal. Stop the
                            // daemon rather than serve un-journaled state.
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = pending.reply.send(Response::Err { code: 2 });
                            journal_failed = true;
                        }
                    }
                    let _ = slot;
                    breaker.record(tenant, false);
                    let mut c = classes.lock().expect("classes");
                    match &pending.op {
                        PendingOp::Join { class, .. } => {
                            c.insert(tenant, *class);
                        }
                        PendingOp::Leave { .. } => {
                            c.remove(&tenant);
                        }
                        PendingOp::Renegotiate { .. } => {}
                    }
                }
                ApplyOutcome::Rejected(RejectReason::UnknownTenant)
                    if pending.attempt > 0 && matches!(pending.op, PendingOp::Leave { .. }) =>
                {
                    // Idempotent leave retry: the first attempt applied
                    // (and journaled) but its response was lost in
                    // flight. "Ensure absent" already holds — acknowledge
                    // without a second journal record, which would replay
                    // as UnknownTenant and poison recovery.
                    stats.admitted.fetch_add(1, Ordering::Relaxed);
                    let _ = pending.reply.send(Response::Admitted {
                        seq: 0,
                        transition_cycles: 0,
                    });
                }
                ApplyOutcome::Rejected(reason) => {
                    stats.rejected.fetch_add(1, Ordering::Relaxed);
                    // Only admission failures count as flapping evidence;
                    // a leave for an unknown tenant is noise, not flap.
                    let flap = matches!(
                        reason,
                        RejectReason::Inadmissible
                            | RejectReason::AlreadyJoined
                            | RejectReason::InvalidTasks
                    );
                    if flap && breaker.record(tenant, true) {
                        // The demotion sheds the tenant's reservation —
                        // durable capacity later admissions may consume —
                        // so it must be journaled: replay re-sheds it, or
                        // a post-demotion join that only fit because of
                        // the freed capacity would replay as Rejected.
                        if let Some(slot) = reg.quarantine(tenant) {
                            match journal.append(&Op::Quarantine { tenant, slot }) {
                                Ok(_) => appended += 1,
                                Err(_) => journal_failed = true,
                            }
                        }
                    }
                    let _ = pending.reply.send(Response::Rejected { reason });
                }
            }
            if journal_failed {
                break;
            }
        }

        if journal_failed {
            // Nothing appended in this batch can be promised durable, and
            // nothing still queued ever will be: answer everything with a
            // typed error (never a silent drop, never a blocked handler)
            // and close the queue so no new requests enqueue.
            for (reply, _) in durable {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Err { code: 2 });
            }
            for pending in batch_iter {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = pending.reply.send(Response::Err { code: 2 });
            }
            drop(reg);
            fail_queue(queue, stats);
            stop.store(true, Ordering::SeqCst);
            break;
        }

        // Group commit: one sync covers the whole batch, then reply.
        if appended > 0 {
            match journal.sync() {
                Ok(()) => {
                    stats
                        .admitted
                        .fetch_add(durable.len() as u64, Ordering::Relaxed);
                    for (reply, response) in durable {
                        let _ = reply.send(response);
                    }
                }
                Err(_) => {
                    // Same fatality as a failed append: answer the batch,
                    // close and drain the queue, stop the daemon.
                    for (reply, _) in durable {
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = reply.send(Response::Err { code: 2 });
                    }
                    drop(reg);
                    fail_queue(queue, stats);
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
            records_since_compact += appended;
            if config.compact_every > 0 && records_since_compact >= config.compact_every {
                let snapshot = reg.snapshot(journal.next_seq());
                if journal.compact(&snapshot).is_ok() {
                    records_since_compact = 0;
                }
            }
        }

        // Fold handler-side shed tallies into the sim registry.
        let sheds = stats.shed_unfolded.swap(0, Ordering::Relaxed);
        if sheds > 0 {
            reg.count_by(Counter::Sheds, sheds);
        }
        reg.step(config.sim_cycles_per_batch);
        fold_lagged(&mut reg);
    }
    let _ = journal.sync();
    // Fold any sheds recorded after the last batch.
    {
        let mut reg = registry.lock().expect("registry");
        let sheds = stats.shed_unfolded.swap(0, Ordering::Relaxed);
        if sheds > 0 {
            reg.count_by(Counter::Sheds, sheds);
        }
        fold_lagged(&mut reg);
        // Graceful stop: flush the telemetry tail so the JSONL stream's
        // fold matches the final registry. A simulated crash keeps the
        // stream truncated, exactly as a real crash would.
        if !abandon.load(Ordering::SeqCst) {
            reg.finish_telemetry();
        }
    }
}

/// Journal failure: the daemon can no longer make admissions durable.
/// Closes the queue (handlers stop enqueueing; dispatch answers at the
/// door) and answers everything still queued with a typed error, so no
/// handler blocks forever on a reply that will never come and every
/// received request keeps its disposition.
fn fail_queue(queue: &Queue, stats: &Stats) {
    let drained: Vec<Pending> = {
        let mut q = queue.state.lock().expect("queue");
        q.closed = true;
        q.items.drain(..).collect()
    };
    queue.cv.notify_all();
    for pending in drained {
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        let _ = pending.reply.send(Response::Err { code: 2 });
    }
}

/// Runs one pending op against the registry, returning the outcome and —
/// for admitted ops — the journal record (with the slot the admission
/// assigned).
fn apply(reg: &mut ControlRegistry, op: &PendingOp) -> (ApplyOutcome, Option<Op>) {
    match op {
        PendingOp::Join {
            tenant,
            class,
            tasks,
        } => {
            let outcome = reg.try_join(*tenant, *class, tasks);
            let journal_op = match outcome {
                ApplyOutcome::Admitted { slot, .. } => Some(Op::Join {
                    tenant: *tenant,
                    class: *class,
                    slot,
                    tasks: tasks.clone(),
                }),
                _ => None,
            };
            (outcome, journal_op)
        }
        PendingOp::Renegotiate { tenant, tasks } => {
            let outcome = reg.try_renegotiate(*tenant, tasks);
            let journal_op = match outcome {
                ApplyOutcome::Admitted { slot, .. } => Some(Op::Renegotiate {
                    tenant: *tenant,
                    slot,
                    tasks: tasks.clone(),
                }),
                _ => None,
            };
            (outcome, journal_op)
        }
        PendingOp::Leave { tenant } => {
            let outcome = reg.try_leave(*tenant);
            let journal_op = match outcome {
                ApplyOutcome::Admitted { slot, .. } => Some(Op::Leave {
                    tenant: *tenant,
                    slot,
                }),
                _ => None,
            };
            (outcome, journal_op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_rise_with_tier() {
        let m = watermarks(256);
        assert!(m[0] < m[1] && m[1] < m[2] && m[2] < m[3]);
        assert_eq!(m, [128, 166, 204, 243]);
        // Tiny queues still shed in order without zero watermarks.
        let tiny = watermarks(2);
        assert!(tiny.iter().all(|&w| w >= 1));
    }

    #[test]
    fn leaves_are_never_shed() {
        let classes = BTreeMap::new();
        assert_eq!(shed_tier(&PendingOp::Leave { tenant: 1 }, &classes), None);
    }

    #[test]
    fn tier_order_matches_the_severity_table() {
        let mut classes = BTreeMap::new();
        classes.insert(1, TenantClass::BestEffort);
        classes.insert(2, TenantClass::Guaranteed);
        let re = |tenant| PendingOp::Renegotiate {
            tenant,
            tasks: vec![],
        };
        let join = |class| PendingOp::Join {
            tenant: 9,
            class,
            tasks: vec![],
        };
        assert_eq!(shed_tier(&re(1), &classes), Some(0));
        assert_eq!(shed_tier(&join(TenantClass::BestEffort), &classes), Some(1));
        assert_eq!(shed_tier(&re(2), &classes), Some(2));
        assert_eq!(shed_tier(&join(TenantClass::Guaranteed), &classes), Some(3));
        // Unknown tenant renegotiation sheds first.
        assert_eq!(shed_tier(&re(99), &classes), Some(0));
    }
}
