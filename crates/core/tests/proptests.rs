//! Property-based tests of the BlueScale composition invariants.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_rt::task::{Task, TaskSet};
use proptest::prelude::*;

fn arb_client_sets(clients: usize) -> impl Strategy<Value = Vec<TaskSet>> {
    prop::collection::vec((100u64..2000, 1u64..20), clients).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(period, wcet)| {
                let wcet = wcet.min(period / 8).max(1);
                TaskSet::new(vec![Task::new(0, period, wcet).expect("valid")])
                    .expect("valid set")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every SE's allocated bandwidth stays within its unit capacity, at
    /// every level, whenever the analysis succeeded.
    #[test]
    fn per_se_bandwidth_within_capacity(sets in arb_client_sets(16)) {
        let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets)
            .expect("construction succeeds");
        let comp = ic.composition();
        if comp.analysis_ok {
            for level in &comp.interfaces {
                for se in level {
                    let bw: f64 = se.iter().flatten().map(|r| r.bandwidth()).sum();
                    prop_assert!(bw <= 1.0 + 1e-9, "SE over-allocated: {bw}");
                }
            }
        }
    }

    /// Updating a client to its *current* task set is idempotent: every
    /// interface in the tree is bit-identical afterwards.
    #[test]
    fn identity_update_is_idempotent(sets in arb_client_sets(16), client in 0usize..16) {
        let mut ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets)
            .expect("construction succeeds");
        let before = ic.composition().interfaces.clone();
        let schedulable_before = ic.composition().schedulable;
        ic.update_client_tasks(client, sets[client].clone())
            .expect("identity update succeeds");
        prop_assert_eq!(&ic.composition().interfaces, &before);
        prop_assert_eq!(ic.composition().schedulable, schedulable_before);
    }

    /// Construction is deterministic: the same inputs produce the same
    /// composition.
    #[test]
    fn construction_is_deterministic(sets in arb_client_sets(8)) {
        let a = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(8), &sets)
            .expect("valid");
        let b = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(8), &sets)
            .expect("valid");
        prop_assert_eq!(&a.composition().interfaces, &b.composition().interfaces);
        prop_assert_eq!(a.composition().root_bandwidth, b.composition().root_bandwidth);
    }

    /// Admission control never leaves the composition unschedulable: after
    /// any admit attempt on a schedulable system, it stays schedulable.
    #[test]
    fn admission_preserves_schedulability(
        sets in arb_client_sets(16),
        client in 0usize..16,
        period in 50u64..500,
        wcet in 1u64..200,
    ) {
        let mut ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets)
            .expect("valid");
        prop_assume!(ic.composition().schedulable);
        let wcet = wcet.min(period);
        let candidate =
            TaskSet::new(vec![Task::new(0, period, wcet).expect("valid")]).expect("valid");
        let _ = ic.admit_client_tasks(client, candidate).expect("no build error");
        prop_assert!(
            ic.composition().schedulable,
            "admission left the system unschedulable"
        );
    }
}
