//! The local scheduler — the upper-level nested priority queue.
//!
//! One server task per local client port, realized as P-counter/B-counter
//! pairs ([`bluescale_rt::server::ServerTask`]). Every cycle the scheduling
//! circuits pick, among servers that (a) hold budget and (b) have a pending
//! request, the one with the earliest server deadline (its next
//! replenishment) — Algorithm 1 of the paper with the hardware's budget
//! gating. The decision is "combinational": exactly one grant per cycle.

use bluescale_rt::server::ServerTask;
use bluescale_rt::supply::PeriodicResource;
use bluescale_sim::Cycle;

/// GEDF arbiter over up to `branch` server tasks.
#[derive(Debug, Clone)]
pub struct LocalScheduler {
    servers: Vec<Option<ServerTask>>,
    /// Count of grants per port (introspection for tests / ablations).
    grants: Vec<u64>,
    /// Cycles where at least one port had a pending request but no eligible
    /// server held budget (budget-induced idling).
    throttled_cycles: u64,
    work_conserving: bool,
}

impl LocalScheduler {
    /// Creates a scheduler with `ports` unprogrammed server slots.
    pub fn new(ports: usize, work_conserving: bool) -> Self {
        Self {
            servers: vec![None; ports],
            grants: vec![0; ports],
            throttled_cycles: 0,
            work_conserving,
        }
    }

    /// Number of client ports.
    pub fn ports(&self) -> usize {
        self.servers.len()
    }

    /// Programs (or reprograms) the server task of `port` with `interface`,
    /// as the interface selector does through the counters' program ports.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn program(&mut self, port: usize, interface: PeriodicResource) {
        match &mut self.servers[port] {
            Some(server) => server.reprogram(interface),
            slot => *slot = Some(ServerTask::new(interface)),
        }
    }

    /// Removes the server of `port` (the client became idle).
    pub fn clear(&mut self, port: usize) {
        self.servers[port] = None;
    }

    /// The interface currently programmed at `port`.
    pub fn interface(&self, port: usize) -> Option<PeriodicResource> {
        self.servers[port].map(|s| s.interface())
    }

    /// Remaining budget at `port` in the current period.
    pub fn budget_remaining(&self, port: usize) -> Option<u64> {
        self.servers[port].map(|s| s.budget_remaining())
    }

    /// Picks the port to grant this cycle. `pending[p]` tells whether port
    /// `p` has a request ready; the winner is the budget-holding server
    /// with the earliest deadline among pending ports.
    ///
    /// In work-conserving mode (ablation), if no budgeted server is
    /// pending, the pending port whose server has the earliest deadline is
    /// granted anyway (unprogrammed ports use their request order).
    pub fn select(&self, pending: &[bool], now: Cycle) -> Option<usize> {
        debug_assert_eq!(pending.len(), self.servers.len());
        let mut winner: Option<(Cycle, usize)> = None;
        for (port, server) in self.servers.iter().enumerate() {
            if !pending[port] {
                continue;
            }
            let Some(server) = server else { continue };
            if !server.has_budget() {
                continue;
            }
            let deadline = server.deadline(now);
            if winner.is_none_or(|(best, _)| deadline < best) {
                winner = Some((deadline, port));
            }
        }
        if winner.is_none() && self.work_conserving {
            // Grant the earliest-deadline pending port ignoring budgets.
            for (port, server) in self.servers.iter().enumerate() {
                if !pending[port] {
                    continue;
                }
                let deadline = server.map_or(Cycle::MAX, |s| s.deadline(now));
                if winner.is_none_or(|(best, _)| deadline < best) {
                    winner = Some((deadline, port));
                }
            }
        }
        winner.map(|(_, port)| port)
    }

    /// Commits a grant: consumes one budget unit at `port` (no-op on an
    /// unprogrammed or exhausted server, which can only happen in
    /// work-conserving mode).
    pub fn commit_grant(&mut self, port: usize) {
        self.grants[port] += 1;
        if let Some(server) = &mut self.servers[port] {
            if server.has_budget() {
                server.consume();
            }
        }
    }

    /// Advances all period counters by one cycle. `any_pending` feeds the
    /// throttled-cycles statistic: true when some port had work this cycle.
    pub fn tick(&mut self, any_pending_without_grant: bool) {
        if any_pending_without_grant {
            self.throttled_cycles += 1;
        }
        for server in self.servers.iter_mut().flatten() {
            server.tick();
        }
    }

    /// Grants issued per port so far.
    pub fn grants(&self) -> &[u64] {
        &self.grants
    }

    /// Cycles in which pending work existed but nothing was granted.
    pub fn throttled_cycles(&self) -> u64 {
        self.throttled_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(p: u64, b: u64) -> PeriodicResource {
        PeriodicResource::new(p, b).unwrap()
    }

    #[test]
    fn selects_earliest_server_deadline() {
        let mut s = LocalScheduler::new(4, false);
        s.program(0, iface(10, 2));
        s.program(1, iface(4, 1)); // earliest replenishment → earliest deadline
        s.program(2, iface(20, 5));
        assert_eq!(s.select(&[true, true, true, false], 0), Some(1));
    }

    #[test]
    fn skips_ports_without_pending() {
        let mut s = LocalScheduler::new(2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(10, 2));
        assert_eq!(s.select(&[false, true], 0), Some(1));
        assert_eq!(s.select(&[false, false], 0), None);
    }

    #[test]
    fn skips_exhausted_budgets() {
        let mut s = LocalScheduler::new(2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(10, 2));
        s.commit_grant(0); // budget of port 0 now 0
        assert_eq!(s.select(&[true, true], 0), Some(1));
        s.commit_grant(1);
        s.commit_grant(1);
        // All budgets exhausted → idle even with pending work.
        assert_eq!(s.select(&[true, true], 0), None);
    }

    #[test]
    fn budget_replenishes_on_period() {
        let mut s = LocalScheduler::new(1, false);
        s.program(0, iface(3, 1));
        s.commit_grant(0);
        assert_eq!(s.select(&[true], 0), None);
        s.tick(true);
        s.tick(true);
        s.tick(true); // period boundary
        assert_eq!(s.select(&[true], 3), Some(0));
        assert_eq!(s.throttled_cycles(), 3);
    }

    #[test]
    fn unprogrammed_ports_never_win_strict_mode() {
        let mut s = LocalScheduler::new(2, false);
        s.program(0, iface(8, 2));
        assert_eq!(s.select(&[false, true], 0), None);
    }

    #[test]
    fn work_conserving_grants_without_budget() {
        let mut s = LocalScheduler::new(2, true);
        s.program(0, iface(4, 1));
        s.commit_grant(0);
        // Strictly, port 0 is out of budget; work-conserving grants anyway.
        assert_eq!(s.select(&[true, false], 0), Some(0));
        // Unprogrammed port also eligible in work-conserving mode.
        assert_eq!(s.select(&[false, true], 0), Some(1));
    }

    #[test]
    fn reprogram_changes_interface() {
        let mut s = LocalScheduler::new(1, false);
        s.program(0, iface(10, 1));
        assert_eq!(s.interface(0).unwrap().period(), 10);
        s.program(0, iface(6, 3));
        assert_eq!(s.interface(0).unwrap().period(), 6);
        assert_eq!(s.budget_remaining(0), Some(3));
    }

    #[test]
    fn grants_counted_per_port() {
        let mut s = LocalScheduler::new(2, false);
        s.program(0, iface(10, 5));
        s.commit_grant(0);
        s.commit_grant(0);
        assert_eq!(s.grants(), &[2, 0]);
    }

    #[test]
    fn long_run_grant_share_matches_bandwidth() {
        // Two saturated ports with bandwidths 1/4 and 1/2: over many
        // periods grants split 1:2.
        let mut s = LocalScheduler::new(2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(4, 2));
        for now in 0..4000 {
            if let Some(p) = s.select(&[true, true], now) {
                s.commit_grant(p);
            }
            s.tick(true);
        }
        let g = s.grants();
        assert_eq!(g[0], 1000);
        assert_eq!(g[1], 2000);
    }
}
