//! Fast admission-control smoke check for `scripts/check.sh`.
//!
//! Drives one BlueScale system through the full reconfiguration surface in
//! a single run: a tenant joins an empty slot, one retasks, one leaves,
//! one is rejected by admission control, and a rogue client is demoted by
//! the guard layer *through the same reconfiguration path*. Then asserts
//! request conservation (issued = completed + backlog + guard-outstanding)
//! and that every counter saw the event it pins. Exits non-zero on
//! violation.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin admission_smoke`

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::guard::{GuardConfig, QuarantinePolicy};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};

const SEED: u64 = 0x00AD_0051;
const HORIZON: u64 = 8_000;

fn set(period: u64, wcet: u64) -> TaskSet {
    TaskSet::new(vec![Task::new(0, period, wcet).expect("valid task")]).expect("valid set")
}

fn main() {
    // 15 light tenants plus one empty slot for the join; ~10% combined
    // utilization so every churn event below is analytically feasible.
    let mut sets: Vec<TaskSet> = (0..16).map(|i| set(400 + 10 * (i % 7), 2)).collect();
    sets[15] = TaskSet::empty();
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = false; // strict gating: a rogue must miss
    let ic = BlueScaleInterconnect::new(config, &sets).expect("valid workload");
    let mut sys = System::new(Box::new(ic), &sets);

    let mut churn = ChurnPlan::new(SEED);
    churn
        .push(1_000, 15, ChurnKind::Join { tasks: set(500, 2) })
        .push(2_000, 2, ChurnKind::UpdateTasks { tasks: set(300, 3) })
        .push(2_500, 4, ChurnKind::UpdateTasks { tasks: set(10, 9) })
        .push(3_000, 14, ChurnKind::Leave);
    sys.set_churn_plan(churn);

    // A rogue tenant overdrives its declared demand 6x; with strict
    // budgets it starts missing deadlines and the guard layer demotes it
    // through the reconfiguration path.
    let mut faults = FaultPlan::new(SEED);
    faults.push(
        FaultKind::RogueDemand {
            client: 0,
            factor: 6,
        },
        FaultWindow::new(500, HORIZON),
    );
    sys.set_fault_plan(faults);
    sys.set_guards(GuardConfig {
        deadline_miss_detection: true,
        watchdog: None,
        quarantine: Some(QuarantinePolicy { miss_threshold: 8 }),
    })
    .expect("no watchdog to validate");

    let total = sys.run(HORIZON);
    let outstanding = sys.guard_outstanding() as u64;
    let reg = sys.registry();
    let admitted = reg.counter(ComponentId::System, Counter::Admitted);
    let rejected = reg.counter(ComponentId::System, Counter::AdmissionRejected);
    let reconfigurations = reg.counter(ComponentId::System, Counter::Reconfigurations);
    let transition_cycles = reg.counter(ComponentId::System, Counter::TransitionCycles);
    let quarantines = reg.counter(ComponentId::System, Counter::Quarantines);

    println!(
        "admission smoke: issued={} completed={} backlog={} outstanding={} \
         admitted={} rejected={} reconfigurations={} transition_cycles={} \
         quarantines={}",
        total.issued(),
        total.completed(),
        total.backlog(),
        outstanding,
        admitted,
        rejected,
        reconfigurations,
        transition_cycles,
        quarantines,
    );

    assert_eq!(admitted, 3, "join + update + leave must pass admission");
    assert_eq!(rejected, 1, "the hog must be rejected and rolled back");
    assert_eq!(quarantines, 1, "the rogue tenant must be quarantined");
    assert_eq!(
        reconfigurations, 4,
        "3 admitted churn events + 1 quarantine demotion"
    );
    assert!(
        transition_cycles > 0,
        "staged swaps must wait for replenishment boundaries"
    );
    assert_eq!(
        total.issued(),
        total.completed() + total.backlog() + outstanding,
        "request conservation violated: issued != completed + backlog + outstanding"
    );
    println!("admission smoke: conservation holds");
}
