//! JSON metric snapshots: serializes a [`MetricsRegistry`] next to the
//! markdown tables in `results/`.
//!
//! The format is the registry's own deterministic export (see
//! [`MetricsRegistry::to_json`]): one object with `counters`, `gauges`,
//! `stats` and `samples` maps keyed `"{component}/{metric}"`. Experiment
//! sweeps key their per-interconnect series as `series.N`, where `N` is the
//! index into [`crate::runner::InterconnectKind::ALL`].

use bluescale_sim::metrics::MetricsRegistry;
use std::path::Path;

/// Writes `registry` as JSON to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_snapshot(path: &Path, registry: &mut MetricsRegistry) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, registry.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_sim::metrics::{ComponentId, Counter};

    #[test]
    fn snapshot_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("bluescale_export_test");
        let path = dir.join("nested").join("snap.json");
        let mut reg = MetricsRegistry::new();
        reg.add(ComponentId::Series(0), Counter::Trials, 3);
        write_snapshot(&path, &mut reg).expect("write succeeds");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"series.0/trials\": 3"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
