//! GSMTree: a globally-arbitrated memory tree with TDM bandwidth
//! reservation (Gomony et al.).
//!
//! A global slot table gates admission into the tree: in slot `s`, only the
//! client that owns `s` may launch a request toward the memory. The tree
//! itself is contention-free once a request is admitted (that is the point
//! of global arbitration), so transit is a fixed pipeline of `depth`
//! cycles. Two reservation strategies from the paper's setup:
//!
//! * **TDM** — equal slots for every client.
//! * **FBSP** — slots proportional to each client's maximum workload.

use crate::{charge_fifo, next_pow2};
use bluescale_interconnect::buffer::{DelayLine, FifoBuffer};
use bluescale_interconnect::{Interconnect, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{DramConfig, MemoryController};
use bluescale_sim::Cycle;
use std::collections::VecDeque;

/// Slot reservation strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotPolicy {
    /// One slot per client, round-robin (equal bandwidth).
    Tdm,
    /// Slots proportional to the given per-client workload weights
    /// (frame-based static priority assignment; heavier clients get more
    /// slots). Weights must be positive.
    Fbsp(Vec<f64>),
}

/// The GSMTree baseline.
///
/// # Example
///
/// ```
/// use bluescale_baselines::{GsmTree, SlotPolicy};
/// use bluescale_interconnect::Interconnect;
///
/// let tdm = GsmTree::new(16, SlotPolicy::Tdm, 1);
/// assert_eq!(tdm.name(), "GSMTree-TDM");
/// assert_eq!(tdm.frame_len(), 16);
/// ```
#[derive(Debug)]
pub struct GsmTree {
    name: &'static str,
    num_clients: usize,
    ports: Vec<FifoBuffer<MemoryRequest>>,
    /// The slot table: `frame[s]` owns slot `s`.
    frame: Vec<u32>,
    /// Fixed transit pipeline through the (contention-free) tree.
    transit: DelayLine<MemoryRequest>,
    /// Requests that crossed the tree and wait for the controller.
    at_root: VecDeque<MemoryRequest>,
    controller: MemoryController<MemoryRequest>,
    response_line: DelayLine<MemoryRequest>,
    ready: VecDeque<MemoryResponse>,
    service_events: VecDeque<ServiceEvent>,
}

impl GsmTree {
    /// Creates a GSMTree for `num_clients` clients under `policy`, with
    /// `service_cycles` flat memory service and 8-entry port buffers.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero, or if an FBSP weight vector has the
    /// wrong length or non-positive weights.
    pub fn new(num_clients: usize, policy: SlotPolicy, service_cycles: u64) -> Self {
        Self::with_dram(num_clients, policy, DramConfig::flat(service_cycles))
    }

    /// Creates a GSMTree backed by a full DRAM timing model.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn with_dram(num_clients: usize, policy: SlotPolicy, dram: DramConfig) -> Self {
        assert!(num_clients > 0, "at least one client required");
        let (frame, name) = match &policy {
            SlotPolicy::Tdm => ((0..num_clients as u32).collect::<Vec<_>>(), "GSMTree-TDM"),
            SlotPolicy::Fbsp(weights) => {
                assert_eq!(
                    weights.len(),
                    num_clients,
                    "one FBSP weight per client required"
                );
                assert!(
                    weights.iter().all(|w| *w > 0.0 && w.is_finite()),
                    "FBSP weights must be positive"
                );
                (Self::weighted_frame(weights), "GSMTree-FBSP")
            }
        };
        let depth = next_pow2(num_clients).max(2).trailing_zeros() as u64;
        Self {
            name,
            num_clients,
            ports: (0..num_clients)
                .map(|_| FifoBuffer::with_capacity(8))
                .collect(),
            frame,
            transit: DelayLine::new(depth),
            at_root: VecDeque::new(),
            controller: MemoryController::new(dram),
            response_line: DelayLine::new(depth),
            ready: VecDeque::new(),
            service_events: VecDeque::new(),
        }
    }

    /// Builds a slot frame proportional to `weights` (largest remainder,
    /// frame length = 2 × clients so granularity is at least half a slot),
    /// interleaving each client's slots across the frame.
    fn weighted_frame(weights: &[f64]) -> Vec<u32> {
        let n = weights.len();
        let frame_len = 2 * n;
        let total: f64 = weights.iter().sum();
        // Integer slot counts, at least one per client.
        let mut slots: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * frame_len as f64).floor().max(1.0) as usize)
            .collect();
        // Fix the total to frame_len by largest remainder.
        while slots.iter().sum::<usize>() > frame_len {
            let i = (0..n).max_by_key(|&i| slots[i]).expect("non-empty");
            if slots[i] > 1 {
                slots[i] -= 1;
            } else {
                break;
            }
        }
        let mut rema: Vec<(f64, usize)> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| ((w / total) * frame_len as f64 - slots[i] as f64, i))
            .collect();
        rema.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let mut deficit = frame_len.saturating_sub(slots.iter().sum::<usize>());
        for (_, i) in rema {
            if deficit == 0 {
                break;
            }
            slots[i] += 1;
            deficit -= 1;
        }
        // Interleave: repeatedly grant the client with the highest
        // remaining share (a simple smooth-WRR).
        let mut credit: Vec<f64> = vec![0.0; n];
        let mut frame = Vec::with_capacity(frame_len);
        for _ in 0..frame_len {
            for (i, c) in credit.iter_mut().enumerate() {
                *c += slots[i] as f64;
            }
            let best = (0..n)
                .max_by(|&a, &b| credit[a].partial_cmp(&credit[b]).expect("finite"))
                .expect("non-empty");
            credit[best] -= frame_len as f64;
            frame.push(best as u32);
        }
        frame
    }

    /// Length of the slot frame.
    pub fn frame_len(&self) -> usize {
        self.frame.len()
    }

    /// Number of slots owned by `client` in one frame.
    pub fn slots_of(&self, client: u32) -> usize {
        self.frame.iter().filter(|&&c| c == client).count()
    }
}

impl Interconnect for GsmTree {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn inject(&mut self, request: MemoryRequest, _now: Cycle) -> Result<(), MemoryRequest> {
        self.ports[request.client as usize].try_push(request)
    }

    fn step(&mut self, now: Cycle) {
        if let Some(done) = self.controller.poll_complete(now) {
            self.response_line.push(done, now);
        }
        while let Some(request) = self.response_line.pop_ready(now) {
            self.ready.push_back(MemoryResponse {
                request,
                completed_at: now,
            });
        }
        while let Some(req) = self.transit.pop_ready(now) {
            self.at_root.push_back(req);
        }
        if self.controller.can_accept() {
            if let Some(req) = self.at_root.pop_front() {
                let addr = req.addr;
                let deadline = req.deadline;
                let duration = self.controller.accept(req, addr, now);
                self.service_events.push_back(ServiceEvent {
                    at: now,
                    deadline,
                    duration,
                });
            }
        }
        // TDM admission: only the slot owner may launch this cycle.
        let owner = self.frame[(now % self.frame.len() as u64) as usize] as usize;
        if let Some(req) = self.ports[owner].pop() {
            let deadline = req.deadline;
            for p in &mut self.ports {
                charge_fifo(p, deadline);
            }
            self.transit.push(req, now);
        }
    }

    fn pop_response(&mut self) -> Option<MemoryResponse> {
        self.ready.pop_front()
    }

    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        self.service_events.pop_front()
    }

    fn pending(&self) -> usize {
        let ports: usize = self.ports.iter().map(FifoBuffer::len).sum();
        ports
            + self.transit.len()
            + self.at_root.len()
            + usize::from(!self.controller.can_accept())
            + self.response_line.len()
            + self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(client: u32, id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: id * 64,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn tdm_frame_is_round_robin() {
        let t = GsmTree::new(8, SlotPolicy::Tdm, 1);
        assert_eq!(t.frame_len(), 8);
        for c in 0..8 {
            assert_eq!(t.slots_of(c), 1);
        }
    }

    #[test]
    fn fbsp_frame_weights_slots() {
        let t = GsmTree::new(4, SlotPolicy::Fbsp(vec![3.0, 1.0, 1.0, 1.0]), 1);
        assert_eq!(t.frame_len(), 8);
        assert!(
            t.slots_of(0) > t.slots_of(1),
            "heavy client gets more slots"
        );
        let total: usize = (0..4).map(|c| t.slots_of(c)).sum();
        assert_eq!(total, 8);
        for c in 0..4 {
            assert!(t.slots_of(c) >= 1, "every client keeps a slot");
        }
    }

    #[test]
    fn single_request_completes() {
        let mut t = GsmTree::new(4, SlotPolicy::Tdm, 1);
        t.inject(req(2, 1, 1000), 0).unwrap();
        let mut done = None;
        for now in 0..100 {
            t.step(now);
            if let Some(r) = t.pop_response() {
                done = Some((now, r));
                break;
            }
        }
        let (when, resp) = done.expect("completes");
        assert_eq!(resp.request.id, 1);
        // Must wait for client 2's slot (cycle 2) + transit + service.
        assert!(when >= 4, "completed at {when}");
    }

    #[test]
    fn tdm_wastes_unowned_slots() {
        // Only client 0 has traffic; TDM still burns slots 1..3 → client 0
        // gets 1/4 of the admission bandwidth.
        let mut t = GsmTree::new(4, SlotPolicy::Tdm, 1);
        let mut done = 0;
        let mut id = 0;
        for now in 0..400 {
            id += 1;
            let _ = t.inject(req(0, id, 1_000_000), now);
            t.step(now);
            while t.pop_response().is_some() {
                done += 1;
            }
        }
        assert!((90..=105).contains(&done), "done = {done}");
    }

    #[test]
    fn fbsp_favours_heavy_client() {
        let mut t = GsmTree::new(2, SlotPolicy::Fbsp(vec![3.0, 1.0]), 1);
        let mut id = 0;
        let (mut c0, mut c1) = (0u64, 0u64);
        for now in 0..800 {
            id += 1;
            let _ = t.inject(req(0, id, 1_000_000), now);
            id += 1;
            let _ = t.inject(req(1, id, 1_000_000), now);
            t.step(now);
            while let Some(r) = t.pop_response() {
                if r.request.client == 0 {
                    c0 += 1;
                } else {
                    c1 += 1;
                }
            }
        }
        let ratio = c0 as f64 / c1 as f64;
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn deadline_agnostic_blocking_recorded() {
        // An urgent request waits through other clients' slots while their
        // later-deadline requests are served.
        let mut t = GsmTree::new(4, SlotPolicy::Tdm, 1);
        t.inject(req(3, 1, 2), 0).unwrap(); // urgent, but slot 3 is last
        for c in 0..3u32 {
            t.inject(req(c, 10 + c as u64, 1_000_000), 0).unwrap();
        }
        let mut victim = None;
        for now in 0..100 {
            t.step(now);
            while let Some(r) = t.pop_response() {
                if r.request.id == 1 {
                    victim = Some(r.request.blocked_cycles);
                }
            }
        }
        assert!(victim.expect("completes") >= 1);
    }

    #[test]
    #[should_panic(expected = "one FBSP weight per client")]
    fn fbsp_wrong_weight_count_panics() {
        let _ = GsmTree::new(4, SlotPolicy::Fbsp(vec![1.0]), 1);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn fbsp_nonpositive_weight_panics() {
        let _ = GsmTree::new(2, SlotPolicy::Fbsp(vec![1.0, 0.0]), 1);
    }
}
