//! Extension experiment: the memory-policy zoo × interconnects × fault
//! classes (`results/BENCH_mem_policy.json`).
//!
//! The paper fixes one memory controller and varies the interconnect;
//! the controller-side literature does the opposite. This experiment
//! crosses the two axes and adds PR-3's fault classes as the third:
//!
//! * **Policies** — the four [`MemPolicyConfig`] variants: `Unregulated`
//!   (pass-through), `PerBankRegulation` (Sullivan & Yun), `Blacklisting`
//!   (Subramanian et al.) and `DeterministicMemory` (Farshchi et al.).
//! * **Interconnects** — BlueScale (the policy seam sits at the root SE)
//!   and AXI-IC^RT (the seam sits at the central-queue pull), holding the
//!   policy constant across them. The other baselines have no policy
//!   seam and are out of scope here.
//! * **Scenarios** — fault-free control plus the five fault classes on
//!   BlueScale; on AXI-IC^RT only the client-side classes (rogue demand,
//!   request burst) exist — its [`Interconnect::install_fault_plan`]
//!   implementation is a no-op, so the interconnect-side classes would
//!   silently degrade to a second control run.
//!
//! Clients are confined to per-client DRAM bank stripes
//! ([`System::set_bank_partition`], PALLOC style) with `clients = banks`,
//! so per-*bank* regulation is per-*client* regulation — the MemGuard
//! configuration. The regulation budget is **calibrated from the declared
//! task sets** (1.5× the heaviest bank's declared demand per window): the
//! declared workload never saturates it, an 8× rogue flood does.
//!
//! The headline comparison, asserted by [`run`]: under `RogueDemand` on
//! AXI-IC^RT, `PerBankRegulation` keeps every victim miss-free while
//! `Unregulated` shows measurable victim degradation. A per-policy dense
//! (Fig 6-style) run adds the throughput side of the frontier, and the
//! Fig 5 hardware quantities are attached per policy — identical across
//! policies, because the zoo lives behind the controller's existing
//! arbitration stage and adds no area/power/f_max term.
//!
//! [`Interconnect::install_fault_plan`]: bluescale_interconnect::Interconnect::install_fault_plan

use crate::fig5;
use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_baselines::AxiIcRt;
use bluescale_interconnect::guard::{GuardConfig, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_interconnect::Interconnect;
use bluescale_mem::{ControllerStats, DramConfig, MemPolicyConfig};
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultClass, FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of the policy-matrix experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPolicyConfigSweep {
    /// Clients; kept equal to the DRAM bank count so the bank partition
    /// gives every client its own stripe.
    pub clients: usize,
    /// Horizon per cell.
    pub horizon: Cycle,
    /// Master seed (workload).
    pub seed: u64,
}

impl Default for MemPolicyConfigSweep {
    fn default() -> Self {
        Self {
            clients: 8,
            horizon: 20_000,
            seed: 0x3E9,
        }
    }
}

/// The two interconnects with a policy seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyIc {
    /// The proposed architecture; the seam is the root SE's arbitration.
    BlueScale,
    /// The centralized baseline; the seam is the central-queue pull.
    AxiIcRt,
}

impl PolicyIc {
    /// Both seam-bearing interconnects.
    pub const ALL: [PolicyIc; 2] = [PolicyIc::BlueScale, PolicyIc::AxiIcRt];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyIc::BlueScale => "BlueScale",
            PolicyIc::AxiIcRt => "AXI-IC^RT",
        }
    }
}

/// One cell of the policy × interconnect × scenario matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Policy name ([`MemPolicyConfig::name`]).
    pub policy: &'static str,
    /// Interconnect under test.
    pub interconnect: PolicyIc,
    /// Injected fault class (`None` = fault-free control).
    pub class: Option<FaultClass>,
    /// Victim (non-target clients) deadline misses.
    pub victim_missed: u64,
    /// Victim misses over victim issues.
    pub victim_miss_ratio: f64,
    /// Worst normalized response time over all victims.
    pub victim_worst_normalized: f64,
    /// The fault target's own miss ratio.
    pub target_miss_ratio: f64,
    /// Requests issued / completed / left queued / guard-tracked.
    pub issued: u64,
    /// Completed requests.
    pub completed: u64,
    /// Requests still queued when the horizon ended.
    pub backlog: u64,
    /// Guard-tracked requests never delivered (DropResponse watchdog).
    pub outstanding: u64,
    /// Controller row-hit ratio over completed requests.
    pub row_hit_ratio: f64,
    /// Grants the policy deferred (candidate-cycles).
    pub policy_deferred: u64,
    /// Fault activations recorded.
    pub faults_injected: u64,
}

/// One point of the throughput (dense, fault-free) side of the frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Policy name.
    pub policy: &'static str,
    /// Interconnect under test.
    pub interconnect: PolicyIc,
    /// Overall deadline-miss ratio under the dense workload.
    pub miss_ratio: f64,
    /// Mean end-to-end latency, cycles.
    pub mean_latency: f64,
    /// Worst observed end-to-end latency, cycles.
    pub worst_latency: f64,
    /// Controller row-hit ratio.
    pub row_hit_ratio: f64,
    /// Grants the policy deferred.
    pub policy_deferred: u64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct MemPolicyReport {
    /// The configuration that produced it.
    pub config: MemPolicyConfigSweep,
    /// The fault target (the heaviest declared client — the worst-case
    /// attacker).
    pub target: u32,
    /// Calibrated regulation window.
    pub window: Cycle,
    /// Calibrated per-bank budget.
    pub budget: u64,
    /// Clients given deterministic (closed-page) service.
    pub dm_clients: Vec<u32>,
    /// The isolation matrix.
    pub matrix: Vec<MatrixRow>,
    /// The throughput rows.
    pub throughput: Vec<ThroughputRow>,
    /// Fig 5 hardware quantities at this client count (policy-invariant:
    /// the policies add no area/power/f_max term). `None` when the client
    /// count is not a Fig 5 sweep point.
    pub hw: Option<(f64, f64, f64)>,
}

/// Mean DRAM service cycles under the bank partition (sequential stripes
/// row-hit almost always), used to express workload utilization in
/// channel time as `bench::dram` does.
const MEAN_SERVICE: f64 = 4.0;

fn dram() -> DramConfig {
    DramConfig::default()
}

/// The heaviest declared client: the worst-case attacker for the
/// client-targeted fault classes.
pub fn pick_target(sets: &[TaskSet]) -> u32 {
    sets.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.utilization()
                .partial_cmp(&b.utilization())
                .expect("utilizations are finite")
        })
        .map(|(i, _)| i as u32)
        .expect("non-empty task sets")
}

/// Calibrates per-bank regulation from the declared task sets: budget =
/// 1.5× the heaviest bank's declared request demand per window (min 2).
/// Declared traffic never saturates it; a multi-x flood does.
pub fn regulation_for(sets: &[TaskSet], window: Cycle, banks: u32) -> MemPolicyConfig {
    let mut per_bank = vec![0.0f64; banks as usize];
    for (client, set) in sets.iter().enumerate() {
        per_bank[client % banks as usize] += set.utilization();
    }
    let heaviest = per_bank.iter().cloned().fold(0.0f64, f64::max);
    let budget = ((heaviest * window as f64 * 1.5).ceil() as u64).max(2);
    MemPolicyConfig::PerBankRegulation { window, budget }
}

/// The four policies of the matrix, calibrated against `sets`.
pub fn policies(sets: &[TaskSet], window: Cycle, banks: u32) -> Vec<MemPolicyConfig> {
    let target = pick_target(sets);
    vec![
        MemPolicyConfig::Unregulated,
        regulation_for(sets, window, banks),
        MemPolicyConfig::Blacklisting {
            threshold: 4,
            clear_interval: window,
        },
        MemPolicyConfig::DeterministicMemory {
            dm_clients: dm_clients(sets, target),
        },
    ]
}

/// The two heaviest victims get deterministic service (critical clients
/// are typically the heavy ones; the attacker stays best-effort).
pub fn dm_clients(sets: &[TaskSet], target: u32) -> Vec<u32> {
    let mut by_util: Vec<u32> = (0..sets.len() as u32).filter(|&c| c != target).collect();
    by_util.sort_by(|&a, &b| {
        sets[b as usize]
            .utilization()
            .partial_cmp(&sets[a as usize].utilization())
            .expect("utilizations are finite")
    });
    by_util.truncate(2);
    by_util.sort_unstable();
    by_util
}

/// The fault plan of one scenario (the `isolation_fault` plans, with a
/// configurable target).
pub fn scenario_plan(class: FaultClass, horizon: Cycle, seed: u64, target: u32) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    match class {
        FaultClass::RogueDemand => plan.push(
            FaultKind::RogueDemand {
                client: target,
                factor: 8,
            },
            FaultWindow::ALWAYS,
        ),
        FaultClass::RequestBurst => plan.push(
            FaultKind::RequestBurst {
                client: target,
                requests: 60,
            },
            FaultWindow::new(horizon / 4, horizon / 4 + 1),
        ),
        FaultClass::StuckGrant => plan.push(
            FaultKind::StuckGrant {
                depth: 1,
                order: 0,
                port: 0,
            },
            FaultWindow::new(horizon / 4, horizon / 2),
        ),
        FaultClass::DramJitter => plan.push(
            FaultKind::DramJitter {
                bank: 0,
                max_extra_cycles: 2,
            },
            FaultWindow::new(0, horizon / 2),
        ),
        FaultClass::DropResponse => plan.push(
            FaultKind::DropResponse {
                client: target,
                every: 2,
            },
            FaultWindow::new(0, horizon / 2),
        ),
    };
    plan
}

/// Scenario classes per interconnect: all five on BlueScale; only the
/// client-side classes on AXI-IC^RT (its fault-plan hook is a no-op, so
/// the interconnect-side classes would be silent second controls).
pub fn scenario_classes(ic: PolicyIc) -> Vec<Option<FaultClass>> {
    match ic {
        PolicyIc::BlueScale => std::iter::once(None)
            .chain(FaultClass::ALL.into_iter().map(Some))
            .collect(),
        PolicyIc::AxiIcRt => vec![
            None,
            Some(FaultClass::RogueDemand),
            Some(FaultClass::RequestBurst),
        ],
    }
}

fn build_bluescale(sets: &[TaskSet], policy: &MemPolicyConfig) -> BlueScaleInterconnect {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    config.dram = Some(dram());
    config.mem_policy = policy.clone();
    BlueScaleInterconnect::new(config, sets).expect("client count matches task sets")
}

fn build_axi(sets: &[TaskSet], policy: &MemPolicyConfig) -> AxiIcRt {
    AxiIcRt::with_dram_policy(sets.len(), 8, dram(), policy)
}

/// Applies the shared per-cell harness setup: bank partition, scenario
/// fault plan, and (for DropResponse) the recovery watchdog — dropped
/// responses would otherwise break request conservation. No quarantine
/// anywhere: the *policy* must be the only defense against the rogue.
fn prepare<IC: Interconnect + ?Sized>(
    sys: &mut System<IC>,
    config: &MemPolicyConfigSweep,
    class: Option<FaultClass>,
    target: u32,
) {
    let geometry = dram();
    sys.set_bank_partition(geometry.banks, geometry.row_bytes);
    if let Some(class) = class {
        sys.set_fault_plan(scenario_plan(class, config.horizon, config.seed, target));
    }
    // Miss detection stays on everywhere so the guard layer *tracks*
    // requests (its `outstanding` closes the conservation equation over
    // end-of-horizon in-flight traffic); the watchdog re-injects dropped
    // responses, which would otherwise be conservation leaks.
    let watchdog = (class == Some(FaultClass::DropResponse)).then_some(WatchdogConfig {
        timeout: 4_096,
        max_retries: 4,
    });
    sys.set_guards(GuardConfig {
        deadline_miss_detection: true,
        watchdog,
        quarantine: None,
    })
    .expect("the watchdog timeout clears the longest deadline window");
}

struct CellStats {
    victim_missed: u64,
    victim_miss_ratio: f64,
    victim_worst_normalized: f64,
    target_miss_ratio: f64,
    issued: u64,
    completed: u64,
    backlog: u64,
    outstanding: u64,
    faults_injected: u64,
}

fn measure<IC: Interconnect + ?Sized>(
    sys: &mut System<IC>,
    horizon: Cycle,
    target: u32,
) -> CellStats {
    let total = sys.run(horizon);
    let (mut victim_missed, mut victim_issued, mut victim_worst) = (0u64, 0u64, 0.0f64);
    let mut per_client = sys.per_client_metrics();
    for (c, m) in per_client.iter_mut().enumerate() {
        if c == target as usize {
            continue;
        }
        victim_missed += m.missed();
        victim_issued += m.issued();
        victim_worst = victim_worst.max(m.normalized_response().max().unwrap_or(0.0));
    }
    CellStats {
        victim_missed,
        victim_miss_ratio: if victim_issued == 0 {
            0.0
        } else {
            victim_missed as f64 / victim_issued as f64
        },
        victim_worst_normalized: victim_worst,
        target_miss_ratio: per_client[target as usize].miss_ratio(),
        issued: total.issued(),
        completed: total.completed(),
        backlog: total.backlog(),
        outstanding: sys.guard_outstanding() as u64,
        faults_injected: sys
            .merged_registry()
            .counter(ComponentId::System, Counter::FaultsInjected),
    }
}

fn run_cell(
    config: &MemPolicyConfigSweep,
    sets: &[TaskSet],
    policy: &MemPolicyConfig,
    ic: PolicyIc,
    class: Option<FaultClass>,
    target: u32,
) -> MatrixRow {
    let (stats, controller, deferred): (CellStats, ControllerStats, u64) = match ic {
        PolicyIc::BlueScale => {
            let mut sys = System::new(Box::new(build_bluescale(sets, policy)), sets);
            prepare(&mut sys, config, class, target);
            let stats = measure(&mut sys, config.horizon, target);
            let deferred = sys
                .merged_registry()
                .counter(ComponentId::Memory, Counter::PolicyDeferred);
            (stats, sys.interconnect().memory_stats(), deferred)
        }
        PolicyIc::AxiIcRt => {
            let mut sys = System::new(Box::new(build_axi(sets, policy)), sets);
            prepare(&mut sys, config, class, target);
            let stats = measure(&mut sys, config.horizon, target);
            let deferred = sys.interconnect().policy_deferred();
            (stats, sys.interconnect().memory_stats(), deferred)
        }
    };
    let row = MatrixRow {
        policy: policy.name(),
        interconnect: ic,
        class,
        victim_missed: stats.victim_missed,
        victim_miss_ratio: stats.victim_miss_ratio,
        victim_worst_normalized: stats.victim_worst_normalized,
        target_miss_ratio: stats.target_miss_ratio,
        issued: stats.issued,
        completed: stats.completed,
        backlog: stats.backlog,
        outstanding: stats.outstanding,
        row_hit_ratio: controller.hit_ratio(),
        policy_deferred: deferred,
        faults_injected: stats.faults_injected,
    };
    let label = format!(
        "{}/{}/{}",
        row.policy,
        ic.name(),
        class.map_or("control", |c| c.name())
    );
    // Request conservation, every cell: everything issued either
    // completed, is still queued, or is tracked by the DropResponse
    // watchdog. A deferred grant stays in its RAB — deferral can never
    // leak requests.
    assert_eq!(
        row.issued,
        row.completed + row.backlog + row.outstanding,
        "[{label}] conservation: issued = completed + backlog + outstanding"
    );
    match class {
        None => assert_eq!(
            row.faults_injected, 0,
            "[{label}] control must be fault-free"
        ),
        Some(_) => assert!(row.faults_injected > 0, "[{label}] fault never fired"),
    }
    if policy.name() == "unregulated" {
        assert_eq!(row.policy_deferred, 0, "[{label}] unregulated never defers");
    }
    row
}

fn throughput_cell(
    sets: &[TaskSet],
    policy: &MemPolicyConfig,
    ic: PolicyIc,
    horizon: Cycle,
) -> ThroughputRow {
    let geometry = dram();
    let (mut metrics, controller, deferred): (_, ControllerStats, u64) = match ic {
        PolicyIc::BlueScale => {
            let mut sys = System::new(Box::new(build_bluescale(sets, policy)), sets);
            sys.set_bank_partition(geometry.banks, geometry.row_bytes);
            let m = sys.run(horizon);
            let deferred = sys
                .merged_registry()
                .counter(ComponentId::Memory, Counter::PolicyDeferred);
            (m, sys.interconnect().memory_stats(), deferred)
        }
        PolicyIc::AxiIcRt => {
            let mut sys = System::new(Box::new(build_axi(sets, policy)), sets);
            sys.set_bank_partition(geometry.banks, geometry.row_bytes);
            let m = sys.run(horizon);
            let deferred = sys.interconnect().policy_deferred();
            (m, sys.interconnect().memory_stats(), deferred)
        }
    };
    ThroughputRow {
        policy: policy.name(),
        interconnect: ic,
        miss_ratio: metrics.miss_ratio(),
        mean_latency: metrics.mean_latency(),
        worst_latency: metrics.latency().max().unwrap_or(0.0),
        row_hit_ratio: controller.hit_ratio(),
        policy_deferred: deferred,
    }
}

/// Runs the experiment and asserts its headline properties as it goes.
///
/// # Panics
///
/// Panics if request conservation fails in any cell, if a fault scenario
/// never fires (or a control does), or if the headline isolation claim
/// breaks: under `RogueDemand` on AXI-IC^RT, `PerBankRegulation` must
/// keep every victim miss-free while `Unregulated` shows measurable
/// victim degradation.
pub fn run(config: &MemPolicyConfigSweep) -> MemPolicyReport {
    let window: Cycle = 1_000;
    let banks = dram().banks;
    let mut rng = SimRng::seed_from(config.seed);
    // Moderate declared load in channel time (~40-50 % of capacity):
    // headroom exists, so only the faults threaten victims.
    let synthetic = SyntheticConfig {
        util_lo: 0.40 / MEAN_SERVICE,
        util_hi: 0.50 / MEAN_SERVICE,
        ..SyntheticConfig::fig6(config.clients)
    };
    let sets = generate(&synthetic, &mut rng);
    let target = pick_target(&sets);
    let policy_list = policies(&sets, window, banks);
    let (regulated, budget) = match policy_list[1] {
        MemPolicyConfig::PerBankRegulation { budget, .. } => ("per_bank_regulation", budget),
        _ => unreachable!("policies()[1] is the calibrated regulator"),
    };
    let dm = match &policy_list[3] {
        MemPolicyConfig::DeterministicMemory { dm_clients } => dm_clients.clone(),
        _ => unreachable!("policies()[3] is deterministic memory"),
    };

    let mut matrix = Vec::new();
    for policy in &policy_list {
        for ic in PolicyIc::ALL {
            for class in scenario_classes(ic) {
                matrix.push(run_cell(config, &sets, policy, ic, class, target));
            }
        }
    }

    // The headline frontier point (the acceptance claim of this PR).
    let cell = |policy: &str, ic: PolicyIc, class: Option<FaultClass>| {
        matrix
            .iter()
            .find(|r| r.policy == policy && r.interconnect == ic && r.class == class)
            .expect("matrix covers the full cross product")
    };
    let rogue = Some(FaultClass::RogueDemand);
    let unregulated = cell("unregulated", PolicyIc::AxiIcRt, rogue);
    assert!(
        unregulated.victim_miss_ratio > 0.01,
        "the 8x flood must measurably degrade unregulated AXI victims \
         (got {:.4})",
        unregulated.victim_miss_ratio
    );
    let banked = cell(regulated, PolicyIc::AxiIcRt, rogue);
    assert_eq!(
        banked.victim_missed, 0,
        "per-bank regulation must keep AXI victims miss-free under the flood"
    );
    assert!(
        banked.policy_deferred > 0,
        "the calibrated budget must actually defer the flood"
    );

    // The throughput side: dense, fault-free (~60-70 % channel load).
    let dense = SyntheticConfig {
        util_lo: 0.60 / MEAN_SERVICE,
        util_hi: 0.70 / MEAN_SERVICE,
        ..SyntheticConfig::fig6(config.clients)
    };
    let dense_sets = generate(&dense, &mut rng);
    let dense_policies = policies(&dense_sets, window, banks);
    let mut throughput = Vec::new();
    for policy in &dense_policies {
        for ic in PolicyIc::ALL {
            throughput.push(throughput_cell(&dense_sets, policy, ic, config.horizon));
        }
    }

    let hw = fig5::sweep()
        .into_iter()
        .find(|p| p.clients == config.clients)
        .map(|p| (p.bluescale_area, p.bluescale_power_w, p.bluescale_fmax));

    MemPolicyReport {
        config: *config,
        target,
        window,
        budget,
        dm_clients: dm,
        matrix,
        throughput,
        hw,
    }
}

/// Renders the report as markdown tables.
pub fn render(report: &MemPolicyReport) -> String {
    let c = &report.config;
    let mut s = format!(
        "# Extension: memory-policy zoo × interconnects × fault classes \
         ({} clients = {} bank stripes, horizon {}, window {}, calibrated \
         budget {}, target client {}, dm clients {:?})\n\n\
         Victim = any client the fault does not target.\n\n",
        c.clients,
        dram().banks,
        c.horizon,
        report.window,
        report.budget,
        report.target,
        report.dm_clients,
    );
    s.push_str(
        "| Policy | Interconnect | Scenario | Victim miss | Victim worst norm. | \
         Target miss | Row-hit | Deferred | Faults |\n\
         |---|---|---|---:|---:|---:|---:|---:|---:|\n",
    );
    for r in &report.matrix {
        s.push_str(&format!(
            "| {} | {} | {} | {:.2}% | {:.3} | {:.1}% | {:.1}% | {} | {} |\n",
            r.policy,
            r.interconnect.name(),
            r.class.map_or("control", |c| c.name()),
            100.0 * r.victim_miss_ratio,
            r.victim_worst_normalized,
            100.0 * r.target_miss_ratio,
            100.0 * r.row_hit_ratio,
            r.policy_deferred,
            r.faults_injected,
        ));
    }
    s.push_str(
        "\nDense fault-free throughput (the other side of the frontier):\n\n\
         | Policy | Interconnect | Miss | Mean lat. | Worst lat. | Row-hit | Deferred |\n\
         |---|---|---:|---:|---:|---:|---:|\n",
    );
    for r in &report.throughput {
        s.push_str(&format!(
            "| {} | {} | {:.2}% | {:.1} | {:.0} | {:.1}% | {} |\n",
            r.policy,
            r.interconnect.name(),
            100.0 * r.miss_ratio,
            r.mean_latency,
            r.worst_latency,
            100.0 * r.row_hit_ratio,
            r.policy_deferred,
        ));
    }
    if let Some((area, power, fmax)) = report.hw {
        s.push_str(&format!(
            "\nFig 5 at this scale (identical for every policy — the zoo \
             adds no hardware): area fraction {area:.4}, power {power:.3} W, \
             f_max {fmax:.0} MHz.\n"
        ));
    }
    s
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders the report as the `BENCH_mem_policy.json` artefact
/// (hand-rolled JSON in the style of the other `BENCH_*` exports).
pub fn render_json(report: &MemPolicyReport) -> String {
    let c = &report.config;
    let mut s = String::from("{\n");
    s.push_str(" \"benchmark\": \"mem_policy\",\n");
    s.push_str(&format!(" \"clients\": {},\n", c.clients));
    s.push_str(&format!(" \"horizon\": {},\n", c.horizon));
    s.push_str(&format!(" \"seed\": {},\n", c.seed));
    s.push_str(&format!(" \"banks\": {},\n", dram().banks));
    s.push_str(&format!(" \"target\": {},\n", report.target));
    s.push_str(&format!(" \"window\": {},\n", report.window));
    s.push_str(&format!(" \"budget\": {},\n", report.budget));
    s.push_str(&format!(
        " \"dm_clients\": [{}],\n",
        report
            .dm_clients
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(" \"matrix\": [\n");
    for (i, r) in report.matrix.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"policy\": \"{}\", \"interconnect\": \"{}\", \"scenario\": \"{}\", \
             \"victim_missed\": {}, \"victim_miss_ratio\": {}, \
             \"victim_worst_normalized\": {}, \"target_miss_ratio\": {}, \
             \"issued\": {}, \"completed\": {}, \"backlog\": {}, \
             \"outstanding\": {}, \"row_hit_ratio\": {}, \
             \"policy_deferred\": {}, \"faults_injected\": {}}}{}\n",
            r.policy,
            r.interconnect.name(),
            r.class.map_or("control", |c| c.name()),
            r.victim_missed,
            json_f(r.victim_miss_ratio),
            json_f(r.victim_worst_normalized),
            json_f(r.target_miss_ratio),
            r.issued,
            r.completed,
            r.backlog,
            r.outstanding,
            json_f(r.row_hit_ratio),
            r.policy_deferred,
            r.faults_injected,
            if i + 1 < report.matrix.len() { "," } else { "" },
        ));
    }
    s.push_str(" ],\n \"throughput\": [\n");
    for (i, r) in report.throughput.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"policy\": \"{}\", \"interconnect\": \"{}\", \"miss_ratio\": {}, \
             \"mean_latency\": {}, \"worst_latency\": {}, \"row_hit_ratio\": {}, \
             \"policy_deferred\": {}}}{}\n",
            r.policy,
            r.interconnect.name(),
            json_f(r.miss_ratio),
            json_f(r.mean_latency),
            json_f(r.worst_latency),
            json_f(r.row_hit_ratio),
            r.policy_deferred,
            if i + 1 < report.throughput.len() {
                ","
            } else {
                ""
            },
        ));
    }
    s.push_str(" ],\n");
    match report.hw {
        Some((area, power, fmax)) => s.push_str(&format!(
            " \"fig5_policy_invariant\": {{\"bluescale_area\": {}, \
             \"bluescale_power_w\": {}, \"bluescale_fmax_mhz\": {}}}\n",
            json_f(area),
            json_f(power),
            json_f(fmax)
        )),
        None => s.push_str(" \"fig5_policy_invariant\": null\n"),
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemPolicyConfigSweep {
        MemPolicyConfigSweep {
            clients: 8,
            horizon: 10_000,
            seed: 0x3E9,
        }
    }

    #[test]
    fn matrix_covers_the_cross_product_and_holds() {
        // run() asserts conservation + the headline claim internally.
        let report = run(&tiny());
        // 4 policies x (6 BlueScale scenarios + 3 AXI scenarios).
        assert_eq!(report.matrix.len(), 4 * (6 + 3));
        assert_eq!(report.throughput.len(), 4 * 2);
        assert!(report.budget >= 2);
        assert_eq!(report.dm_clients.len(), 2);
        assert!(report.hw.is_some(), "8 clients is a Fig 5 sweep point");
    }

    #[test]
    fn calibration_tracks_declared_demand() {
        let mut rng = SimRng::seed_from(7);
        let sets = generate(&SyntheticConfig::fig6(8), &mut rng);
        let MemPolicyConfig::PerBankRegulation { window, budget } = regulation_for(&sets, 1_000, 8)
        else {
            panic!("regulation_for builds a regulator");
        };
        assert_eq!(window, 1_000);
        let heaviest = sets.iter().map(|s| s.utilization()).fold(0.0f64, f64::max);
        assert!(budget as f64 >= heaviest * 1_000.0, "declared demand fits");
        let target = pick_target(&sets);
        assert!(!dm_clients(&sets, target).contains(&target));
    }

    #[test]
    fn render_names_every_policy_and_json_parses_shallowly() {
        let report = run(&tiny());
        let text = render(&report);
        let json = render_json(&report);
        for p in [
            "unregulated",
            "per_bank_regulation",
            "blacklisting",
            "deterministic_memory",
        ] {
            assert!(text.contains(p), "markdown missing {p}");
            assert!(json.contains(p), "json missing {p}");
        }
        assert!(json.contains("\"benchmark\": \"mem_policy\""));
        assert_eq!(json.matches("{").count(), json.matches("}").count());
    }
}
