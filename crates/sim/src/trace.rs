//! Bounded event tracing for debugging schedules.
//!
//! Tracing is off by default and costs one branch per event when disabled.
//! When enabled, the most recent `capacity` events are retained in a ring
//! buffer, which keeps memory bounded during multi-million-cycle runs.

use crate::Cycle;
use std::collections::VecDeque;

/// A single traced event: the cycle at which it occurred plus a free-form
/// label rendered by the component that emitted it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub at: Cycle,
    /// Component that emitted the event (e.g. `"SE(1,0)"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

/// A bounded, optionally-enabled event trace.
///
/// # Example
///
/// ```
/// use bluescale_sim::trace::Tracer;
///
/// let mut t = Tracer::with_capacity(2);
/// t.enable();
/// t.record(1, "SE(0,0)", "grant client 2");
/// t.record(2, "SE(0,0)", "grant client 0");
/// t.record(3, "SE(0,0)", "idle");
/// // Capacity 2: the oldest event fell off.
/// assert_eq!(t.events().len(), 2);
/// assert_eq!(t.events()[0].at, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl Tracer {
    /// Creates a disabled tracer with the default capacity (4096 events).
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    /// Creates a disabled tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: false,
            capacity,
            events: VecDeque::new(),
        }
    }

    /// Turns tracing on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns tracing off (retained events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled, evicting the oldest event
    /// when the buffer is full. A capacity-0 tracer retains nothing.
    pub fn record(&mut self, at: Cycle, source: &str, message: impl Into<String>) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        while self.events.len() >= self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent {
            at,
            source: source.to_owned(),
            message: message.into(),
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.events.iter().collect()
    }

    /// Drops all retained events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.record(1, "x", "y");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_tracer_records() {
        let mut t = Tracer::new();
        t.enable();
        t.record(5, "SE(0,0)", "grant");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].at, 5);
        assert_eq!(t.events()[0].source, "SE(0,0)");
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::with_capacity(3);
        t.enable();
        for i in 0..10 {
            t.record(i, "s", format!("e{i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].at, 7);
        assert_eq!(evs[2].at, 9);
    }

    #[test]
    fn capacity_zero_retains_nothing() {
        // Regression: the old `len == capacity` eviction check was only
        // true before the first push, so a capacity-0 tracer grew without
        // bound instead of retaining nothing.
        let mut t = Tracer::with_capacity(0);
        t.enable();
        for i in 0..100 {
            t.record(i, "s", "e");
        }
        assert!(t.events().is_empty());
    }

    #[test]
    fn capacity_one_keeps_only_newest() {
        let mut t = Tracer::with_capacity(1);
        t.enable();
        for i in 0..10 {
            t.record(i, "s", format!("e{i}"));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at, 9);
        assert_eq!(evs[0].message, "e9");
    }

    #[test]
    fn clear_empties_buffer() {
        let mut t = Tracer::new();
        t.enable();
        t.record(1, "s", "e");
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn disable_stops_recording_keeps_events() {
        let mut t = Tracer::new();
        t.enable();
        t.record(1, "s", "kept");
        t.disable();
        t.record(2, "s", "dropped");
        assert_eq!(t.events().len(), 1);
        assert!(!t.is_enabled());
    }
}
