//! Ablation studies over BlueScale's design choices (DESIGN.md §5):
//!
//! 1. **Nested queues** — low-level EDF random-access buffers vs plain
//!    FIFO stage buffers.
//! 2. **Budget gating** — strictly budget-gated scheduling vs the
//!    work-conserving variant that grants idle provider cycles.
//! 3. **Fan-in** — quadtree (branch 4) vs binary tree (branch 2) vs flat
//!    16-ary fan-in.
//! 4. **Analysis margin** — how the leaf deadline-deflation factor trades
//!    admission rate against run-time misses.

use bluescale::rab::QueuePolicy;
use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::system::System;
use bluescale_interconnect::Interconnect;
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// One BlueScale variant under ablation.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Label printed in the report.
    pub name: &'static str,
    /// The configuration (minus the client count, set per experiment).
    pub configure: fn(&mut BlueScaleConfig),
}

/// The ablation grid.
pub fn variants() -> Vec<Variant> {
    fn baseline(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
    }
    fn fifo_low_level(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
        c.low_level_policy = QueuePolicy::Fifo;
    }
    fn strict_gating(c: &mut BlueScaleConfig) {
        c.work_conserving = false;
    }
    fn binary_fanin(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
        c.branch = 2;
    }
    fn flat_fanin(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
        c.branch = 16;
    }
    fn no_margin(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
        c.analysis_margin = 1.0;
    }
    fn deep_margin(c: &mut BlueScaleConfig) {
        c.work_conserving = true;
        c.analysis_margin = 0.75;
    }
    vec![
        Variant {
            name: "BlueScale (default)",
            configure: baseline,
        },
        Variant {
            name: "low-level FIFO",
            configure: fifo_low_level,
        },
        Variant {
            name: "strict budget gating",
            configure: strict_gating,
        },
        Variant {
            name: "binary fan-in (branch 2)",
            configure: binary_fanin,
        },
        Variant {
            name: "flat fan-in (branch 16)",
            configure: flat_fanin,
        },
        Variant {
            name: "margin 1.0 (bare analysis)",
            configure: no_margin,
        },
        Variant {
            name: "margin 0.75",
            configure: deep_margin,
        },
    ]
}

/// Aggregated result of one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub name: &'static str,
    /// Mean deadline miss ratio across trials.
    pub miss_ratio: f64,
    /// Mean blocking latency (cycles).
    pub blocking: f64,
    /// Mean end-to-end latency (cycles).
    pub latency: f64,
    /// Fraction of trials the composition admitted (`schedulable`).
    pub admitted: f64,
}

/// Configuration of the ablation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationConfig {
    /// Clients (traffic generators).
    pub clients: usize,
    /// Trials per variant.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self {
            clients: 16,
            trials: 40,
            horizon: 20_000,
            seed: 0xAB1A,
        }
    }
}

/// Runs the full ablation grid on Fig 6-style synthetic workloads.
pub fn run(config: &AblationConfig) -> Vec<AblationRow> {
    let variant_list = variants();
    let mut miss = vec![OnlineStats::new(); variant_list.len()];
    let mut blocking = vec![OnlineStats::new(); variant_list.len()];
    let mut latency = vec![OnlineStats::new(); variant_list.len()];
    let mut admitted = vec![0u64; variant_list.len()];
    let mut master = SimRng::seed_from(config.seed);
    for _ in 0..config.trials {
        let mut rng = master.fork();
        let sets = generate(&SyntheticConfig::fig6(config.clients), &mut rng);
        for (i, variant) in variant_list.iter().enumerate() {
            let mut bs = BlueScaleConfig::for_clients(config.clients);
            (variant.configure)(&mut bs);
            let ic = BlueScaleInterconnect::new(bs, &sets)
                .expect("construction succeeds for every variant");
            if ic.composition().schedulable {
                admitted[i] += 1;
            }
            let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &sets);
            let m = system.run(config.horizon);
            miss[i].push(m.miss_ratio());
            blocking[i].push(m.mean_blocking());
            latency[i].push(m.mean_latency());
        }
    }
    variant_list
        .into_iter()
        .enumerate()
        .map(|(i, v)| AblationRow {
            name: v.name,
            miss_ratio: miss[i].mean(),
            blocking: blocking[i].mean(),
            latency: latency[i].mean(),
            admitted: admitted[i] as f64 / config.trials as f64,
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(config: &AblationConfig, rows: &[AblationRow]) -> String {
    let mut s = format!(
        "# Ablation: BlueScale design choices ({} clients, {} trials, {} cycles)\n\n",
        config.clients, config.trials, config.horizon
    );
    s.push_str("| Variant | Miss ratio | Blocking (cy) | Latency (cy) | Admission rate |\n");
    s.push_str("|---|---:|---:|---:|---:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.2}% | {:.1} | {:.1} | {:.0}% |\n",
            r.name,
            100.0 * r.miss_ratio,
            r.blocking,
            r.latency,
            100.0 * r.admitted,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            clients: 16,
            trials: 3,
            horizon: 8_000,
            seed: 5,
        }
    }

    #[test]
    fn grid_covers_all_variants() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), variants().len());
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.admitted)));
    }

    #[test]
    fn fifo_low_level_is_never_better_on_misses() {
        let rows = run(&AblationConfig {
            trials: 5,
            ..tiny()
        });
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.name.contains(name))
                .expect("variant present")
                .clone()
        };
        let edf = get("default");
        let fifo = get("FIFO");
        assert!(
            edf.miss_ratio <= fifo.miss_ratio + 0.01,
            "EDF {} vs FIFO {}",
            edf.miss_ratio,
            fifo.miss_ratio
        );
    }

    #[test]
    fn strict_gating_increases_latency() {
        let rows = run(&AblationConfig {
            trials: 4,
            ..tiny()
        });
        let get = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap().clone();
        assert!(get("strict").latency >= get("default").latency);
    }

    #[test]
    fn render_lists_variants() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        for v in variants() {
            assert!(text.contains(v.name));
        }
    }
}
