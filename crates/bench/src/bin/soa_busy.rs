//! Runs the SoA-versus-legacy hot-core throughput benchmark on the dense
//! fig6 64-client workload, writing `results/BENCH_soa.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin soa_busy -- \
//!    [--clients N] [--horizon N] [--reps N] [--json path]`

use bluescale_bench::soa_busy::{render_json, render_table, run, SoaBusyConfig};
use bluescale_bench::{arg_u64, arg_usize, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = SoaBusyConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    config.reps = arg_u64(&args, "--reps", config.reps);

    println!(
        "# SoA hot core vs legacy engine (dense fig6, {} clients, best of {})\n",
        config.clients, config.reps
    );
    let result = run(&config);
    println!("{}", render_table(&result));

    let json = render_json(&config, &result);
    let out = arg_value(&args, "--json").unwrap_or_else(|| "results/BENCH_soa.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
