//! Smoke check: the observability layer must be near-free when detail is
//! off and must never change simulation results.
//!
//! Three configurations drive identical BlueScale traffic (fig6-style
//! synthetic task sets, fixed seed):
//!
//! 1. **baseline** — a hand-rolled client/interconnect loop with no
//!    harness registry at all (the pre-observability cost floor),
//! 2. **disabled** — the `System` harness with detail recording off (the
//!    default for every experiment), and
//! 3. **detail** — the harness with typed events + request lifecycles on.
//!
//! The check asserts bit-identical completion counts across all three and
//! that the disabled-metrics harness stays within a generous noise bound
//! of the baseline. Run via `scripts/check.sh`; exits non-zero on failure.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin metrics_overhead -- [--horizon N] [--reps N]`

use bluescale_bench::runner::{build, InterconnectKind};
use bluescale_bench::{arg_u64, arg_usize};
use bluescale_interconnect::client::TrafficGenerator;
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use std::time::Instant;

/// Allowed slowdown of the disabled-metrics harness over the hand-rolled
/// baseline. The harness also keeps the service log and blocking-window
/// accounting the baseline skips, so this is a noise bound, not a tight
/// one; regressions that make counters hot show up far above it.
const MAX_DISABLED_SLOWDOWN: f64 = 3.0;

fn task_sets(clients: usize) -> Vec<bluescale_rt::task::TaskSet> {
    let mut rng = SimRng::seed_from(0x00BE_5EAD);
    generate(&SyntheticConfig::fig6(clients), &mut rng)
}

/// The cost floor: clients + interconnect with no registry, no service
/// log, no response accounting beyond a completion count.
fn run_baseline(horizon: Cycle) -> u64 {
    let sets = task_sets(16);
    let mut ic = build(InterconnectKind::BlueScale, &sets);
    let mut clients: Vec<TrafficGenerator> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| TrafficGenerator::new(i as u32, set))
        .collect();
    let mut completed = 0u64;
    for now in 0..horizon {
        for client in &mut clients {
            client.on_cycle(now);
            if let Some(req) = client.take() {
                if let Err(rejected) = ic.inject(req, now) {
                    client.give_back(rejected);
                }
            }
        }
        ic.step(now);
        while ic.pop_service_event().is_some() {}
        while ic.pop_response().is_some() {
            completed += 1;
        }
    }
    completed
}

fn run_harness(horizon: Cycle, detail: bool) -> u64 {
    let sets = task_sets(16);
    let ic = build(InterconnectKind::BlueScale, &sets);
    let mut system = System::new(ic, &sets);
    if detail {
        system.enable_detail();
    }
    let m = system.run(horizon);
    m.completed()
}

/// Minimum wall time over `reps` runs (the usual noise-robust estimator).
fn min_time<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut result = 0;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let horizon = arg_u64(&args, "--horizon", 40_000);
    let reps = arg_usize(&args, "--reps", 5);

    let (t_base, c_base) = min_time(reps, || run_baseline(horizon));
    let (t_off, c_off) = min_time(reps, || run_harness(horizon, false));
    let (t_on, c_on) = min_time(reps, || run_harness(horizon, true));

    println!("# Metrics overhead smoke check ({horizon} cycles, min of {reps} runs)\n");
    println!("| Configuration | Completed | Time (ms) | vs baseline |");
    println!("|---|---:|---:|---:|");
    println!(
        "| hand-rolled baseline | {c_base} | {:.2} | 1.00x |",
        t_base * 1e3
    );
    println!(
        "| harness, detail off | {c_off} | {:.2} | {:.2}x |",
        t_off * 1e3,
        t_off / t_base
    );
    println!(
        "| harness, detail on | {c_on} | {:.2} | {:.2}x |",
        t_on * 1e3,
        t_on / t_base
    );

    let mut failed = false;
    if c_base != c_off || c_off != c_on {
        eprintln!("FAIL: completion counts diverge: {c_base} / {c_off} / {c_on}");
        failed = true;
    }
    if t_off > t_base * MAX_DISABLED_SLOWDOWN {
        eprintln!(
            "FAIL: disabled-metrics harness {:.2}x over baseline (bound {MAX_DISABLED_SLOWDOWN}x)",
            t_off / t_base
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nok: metrics are observation-only and the disabled path is within noise");
}
