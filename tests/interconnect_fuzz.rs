//! Robustness fuzzing of every interconnect: random injection patterns
//! must never lose, duplicate or misroute a request, on any architecture.

use bluescale_repro::baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::{AccessKind, Interconnect, MemoryRequest};
use bluescale_repro::noc::NocMemoryInterconnect;
use bluescale_repro::rt::task::{Task, TaskSet};
use bluescale_repro::sim::rng::SimRng;
use std::collections::HashMap;

fn build_all(n: usize) -> Vec<Box<dyn Interconnect>> {
    let sets: Vec<TaskSet> = (0..n)
        .map(|_| TaskSet::new(vec![Task::new(0, 500, 5).expect("valid")]).expect("valid"))
        .collect();
    let weights = vec![1.0; n];
    let mut bs = BlueScaleConfig::for_clients(n);
    bs.work_conserving = true;
    vec![
        Box::new(AxiIcRt::new(n, 8, 1)),
        Box::new(BlueTree::new(n, 2, 1)),
        Box::new(BlueTree::smooth(n, 2, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Tdm, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Fbsp(weights), 1)),
        Box::new(BlueScaleInterconnect::new(bs, &sets).expect("valid build")),
        Box::new(NocMemoryInterconnect::new(n, 1)),
    ]
}

/// Drives one interconnect with a random injection schedule and checks
/// the exactly-once delivery invariants.
fn fuzz_one(ic: &mut dyn Interconnect, seed: u64, injections: usize) {
    let name = ic.name();
    let n = ic.num_clients() as u32;
    let mut rng = SimRng::seed_from(seed);
    let mut offered: Vec<MemoryRequest> = (0..injections as u64)
        .map(|id| {
            let client = rng.range_u64(0, n as u64) as u32;
            MemoryRequest {
                id,
                client,
                task: rng.range_u64(0, 4) as u32,
                addr: rng.next_u64() & 0xFFFF_FFC0,
                kind: if rng.chance(0.25) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                issued_at: 0,
                deadline: rng.range_u64(100, 100_000),
                blocked_cycles: 0,
            }
        })
        .collect();
    let mut accepted: HashMap<u64, u32> = HashMap::new();
    let mut seen: HashMap<u64, u32> = HashMap::new();
    let mut now = 0;
    // Inject with random gaps, stepping as we go.
    while let Some(mut req) = offered.pop() {
        req.issued_at = now;
        let id = req.id;
        let client = req.client;
        if ic.inject(req, now).is_ok() {
            accepted.insert(id, client);
        }
        let gap = SimRng::seed_from(seed ^ id).range_u64(0, 4);
        for _ in 0..=gap {
            ic.step(now);
            while let Some(resp) = ic.pop_response() {
                *seen.entry(resp.request.id).or_insert(0) += 1;
                assert_eq!(
                    accepted.get(&resp.request.id),
                    Some(&resp.request.client),
                    "{name}: response for unknown/misrouted request"
                );
            }
            now += 1;
        }
    }
    // Drain.
    for _ in 0..50_000 {
        ic.step(now);
        while let Some(resp) = ic.pop_response() {
            *seen.entry(resp.request.id).or_insert(0) += 1;
            assert_eq!(
                accepted.get(&resp.request.id),
                Some(&resp.request.client),
                "{name}: response for unknown/misrouted request"
            );
        }
        now += 1;
        if ic.pending() == 0 {
            break;
        }
    }
    assert_eq!(ic.pending(), 0, "{name}: requests stuck inside");
    assert_eq!(
        seen.len(),
        accepted.len(),
        "{name}: some accepted requests never completed"
    );
    assert!(
        seen.values().all(|&count| count == 1),
        "{name}: a request completed more than once"
    );
}

#[test]
fn exactly_once_delivery_under_random_injection() {
    let mut meta = SimRng::seed_from(0xF022);
    for _ in 0..8 {
        let seed = meta.next_u64();
        let injections = meta.range_usize(1, 200);
        for ic in build_all(16).iter_mut() {
            fuzz_one(ic.as_mut(), seed, injections);
        }
    }
}

#[test]
fn exactly_once_delivery_at_64_clients() {
    let mut meta = SimRng::seed_from(0xF064);
    for _ in 0..8 {
        let seed = meta.next_u64();
        for ic in build_all(64).iter_mut() {
            fuzz_one(ic.as_mut(), seed, 150);
        }
    }
}

/// Same invariants with multi-cycle memory service (flat 3) — slower
/// drains, busier channel, same exactly-once guarantee.
#[test]
fn exactly_once_with_slow_memory() {
    use bluescale_repro::mem::DramConfig;
    let mut meta = SimRng::seed_from(0xF510);
    for _ in 0..4 {
        let seed = meta.next_u64();
        let n = 16;
        let sets: Vec<TaskSet> = (0..n)
            .map(|_| TaskSet::new(vec![Task::new(0, 500, 5).expect("valid")]).expect("valid"))
            .collect();
        let mut bs = BlueScaleConfig::for_clients(n);
        bs.work_conserving = true;
        bs.dram = Some(DramConfig::flat(3));
        let mut slow: Vec<Box<dyn Interconnect>> = vec![
            Box::new(AxiIcRt::new(n, 8, 3)),
            Box::new(BlueTree::new(n, 2, 3)),
            Box::new(GsmTree::new(n, SlotPolicy::Tdm, 3)),
            Box::new(BlueScaleInterconnect::new(bs, &sets).expect("valid build")),
            Box::new(NocMemoryInterconnect::new(n, 3)),
        ];
        for ic in slow.iter_mut() {
            fuzz_one(ic.as_mut(), seed, 80);
        }
    }
}

#[test]
fn burst_injection_to_one_client_port() {
    // Hammer a single port: backpressure must reject cleanly, never drop.
    for ic in build_all(16).iter_mut() {
        let name = ic.name();
        let mut accepted = 0u64;
        for id in 0..100u64 {
            let req = MemoryRequest {
                id,
                client: 3,
                task: 0,
                addr: id * 64,
                kind: AccessKind::Read,
                issued_at: 0,
                deadline: 1_000_000,
                blocked_cycles: 0,
            };
            if ic.inject(req, 0).is_ok() {
                accepted += 1;
            }
        }
        assert!(accepted > 0, "{name}: nothing accepted");
        let mut done = 0u64;
        for now in 0..100_000 {
            ic.step(now);
            while ic.pop_response().is_some() {
                done += 1;
            }
            if done == accepted {
                break;
            }
        }
        assert_eq!(done, accepted, "{name}: burst requests lost");
    }
}
