//! Extension experiment: temporal isolation against a misbehaving client.
//!
//! Budget-based compositional scheduling exists precisely so that one
//! client exceeding its declared demand cannot steal other clients'
//! guaranteed service. This experiment makes one client a *rogue* (it
//! issues `8×` its registered demand every period) and measures the
//! deadline-miss ratio of the *well-behaved victims* on every
//! interconnect.
//!
//! Expected shape: BlueScale's B-counters cap the rogue at its budget, so
//! victims are unaffected; deadline-agnostic trees and the TDM variants
//! let the flood displace victim traffic at shared stages. The
//! centralized EDF baseline partially resists (the rogue's *extra*
//! requests carry ordinary deadlines, so they compete rather than
//! pre-empt).

use crate::runner::{build, InterconnectKind};
use bluescale_interconnect::system::System;
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of the isolation experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolationConfig {
    /// Number of clients (one of which goes rogue).
    pub clients: usize,
    /// The rogue's demand multiplier.
    pub misbehaviour_factor: u64,
    /// Trials.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for IsolationConfig {
    fn default() -> Self {
        Self {
            clients: 16,
            misbehaviour_factor: 8,
            trials: 30,
            horizon: 20_000,
            seed: 0x150,
        }
    }
}

/// Results for one interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationRow {
    /// The interconnect.
    pub kind: InterconnectKind,
    /// Victims' miss ratio with everyone well-behaved (control).
    pub baseline_victim_miss: f64,
    /// Victims' miss ratio with the rogue flooding.
    pub rogue_victim_miss: f64,
    /// The rogue's own miss ratio while flooding (its excess traffic is
    /// expected to miss — that is the point of isolation).
    pub rogue_own_miss: f64,
}

/// Runs the experiment. The rogue is always client 0; victims are all
/// other clients.
pub fn run(config: &IsolationConfig) -> Vec<IsolationRow> {
    run_with_registry(config).0
}

/// Runs the experiment and also returns its metrics registry: per-trial
/// victim/rogue miss-ratio observations keyed by [`ComponentId::Series`]
/// in [`InterconnectKind::ALL`] order. The rows are means over the same
/// accumulators.
pub fn run_with_registry(config: &IsolationConfig) -> (Vec<IsolationRow>, MetricsRegistry) {
    let kinds = InterconnectKind::ALL;
    let mut registry = MetricsRegistry::new();
    registry.set_gauge(ComponentId::System, "clients", config.clients as f64);
    registry.set_gauge(
        ComponentId::System,
        "misbehaviour_factor",
        config.misbehaviour_factor as f64,
    );
    let mut master = SimRng::seed_from(config.seed);
    for _ in 0..config.trials {
        let mut rng = master.fork();
        // Moderate well-behaved load so headroom exists: ~50 %.
        let synthetic = SyntheticConfig {
            util_lo: 0.45,
            util_hi: 0.55,
            ..SyntheticConfig::fig6(config.clients)
        };
        let sets = generate(&synthetic, &mut rng);
        for (i, kind) in kinds.into_iter().enumerate() {
            let series = ComponentId::Series(i as u16);
            registry.inc(series, Counter::Trials);

            // Control run: everyone behaves.
            let mut system = System::new(build(kind, &sets), &sets);
            system.run(config.horizon);
            registry.observe(
                series,
                SampleKind::Custom("victim_miss_control"),
                victim_miss_ratio(&system, 0),
            );

            // Rogue run: client 0 floods. The interconnect was configured
            // from the *declared* task sets — the rogue lied.
            let mut system = System::new(build(kind, &sets), &sets);
            system.set_misbehaviour_factor(0, config.misbehaviour_factor);
            system.run(config.horizon);
            registry.observe(
                series,
                SampleKind::Custom("victim_miss_rogue"),
                victim_miss_ratio(&system, 0),
            );
            registry.observe(
                series,
                SampleKind::Custom("rogue_own_miss"),
                system.per_client_metrics()[0].miss_ratio(),
            );
        }
    }
    let rows = kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            let series = ComponentId::Series(i as u16);
            IsolationRow {
                kind,
                baseline_victim_miss: registry
                    .stat(series, SampleKind::Custom("victim_miss_control"))
                    .mean(),
                rogue_victim_miss: registry
                    .stat(series, SampleKind::Custom("victim_miss_rogue"))
                    .mean(),
                rogue_own_miss: registry
                    .stat(series, SampleKind::Custom("rogue_own_miss"))
                    .mean(),
            }
        })
        .collect();
    (rows, registry)
}

fn victim_miss_ratio(
    system: &System<dyn bluescale_interconnect::Interconnect>,
    rogue: usize,
) -> f64 {
    let per_client = system.per_client_metrics();
    let (mut missed, mut issued) = (0u64, 0u64);
    for (c, m) in per_client.iter().enumerate() {
        if c == rogue {
            continue;
        }
        missed += m.missed();
        issued += m.issued();
    }
    if issued == 0 {
        0.0
    } else {
        missed as f64 / issued as f64
    }
}

/// Renders the table.
pub fn render(config: &IsolationConfig, rows: &[IsolationRow]) -> String {
    let mut s = format!(
        "# Extension: temporal isolation — client 0 issues {}× its declared \
         demand ({} clients, {} trials)\n\nVictim = any well-behaved client.\n\n",
        config.misbehaviour_factor, config.clients, config.trials
    );
    s.push_str(
        "| Interconnect | Victim miss (control) | Victim miss (rogue active) | Rogue's own miss |\n",
    );
    s.push_str("|---|---:|---:|---:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.2}% | {:.2}% | {:.1}% |\n",
            r.kind.name(),
            100.0 * r.baseline_victim_miss,
            100.0 * r.rogue_victim_miss,
            100.0 * r.rogue_own_miss,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IsolationConfig {
        IsolationConfig {
            clients: 16,
            misbehaviour_factor: 8,
            trials: 3,
            horizon: 10_000,
            seed: 9,
        }
    }

    #[test]
    fn produces_all_rows() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.rogue_victim_miss), "{:?}", r.kind);
        }
    }

    #[test]
    fn bluescale_victims_are_isolated() {
        let rows = run(&IsolationConfig {
            trials: 5,
            ..tiny()
        });
        let get = |k: InterconnectKind| rows.iter().find(|r| r.kind == k).unwrap();
        let bs = get(InterconnectKind::BlueScale);
        // BlueScale victims barely notice the rogue…
        assert!(
            bs.rogue_victim_miss <= bs.baseline_victim_miss + 0.02,
            "BlueScale victims degraded: {} → {}",
            bs.baseline_victim_miss,
            bs.rogue_victim_miss
        );
        // …while the flooding rogue itself pays (the work-conserving slack
        // absorbs part of the excess, but the rogue's misses stay well
        // above the victims').
        assert!(
            bs.rogue_own_miss > bs.rogue_victim_miss + 0.02,
            "rogue got away with it: own {} vs victims {}",
            bs.rogue_own_miss,
            bs.rogue_victim_miss
        );
        // And at least one heuristic tree lets the rogue hurt victims more.
        let bt = get(InterconnectKind::BlueTree);
        assert!(
            bt.rogue_victim_miss >= bs.rogue_victim_miss,
            "BlueTree victims ({}) should suffer at least as much as \
             BlueScale's ({})",
            bt.rogue_victim_miss,
            bs.rogue_victim_miss
        );
    }

    #[test]
    fn registry_backs_the_rows() {
        let cfg = tiny();
        let (rows, registry) = run_with_registry(&cfg);
        for (i, row) in rows.iter().enumerate() {
            let series = ComponentId::Series(i as u16);
            assert_eq!(registry.counter(series, Counter::Trials), cfg.trials);
            let control = registry.stat(series, SampleKind::Custom("victim_miss_control"));
            assert_eq!(control.count(), cfg.trials);
            assert!((control.mean() - row.baseline_victim_miss).abs() < 1e-15);
        }
    }

    #[test]
    fn render_has_three_columns() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("control"));
        assert!(text.contains("rogue active"));
    }
}
