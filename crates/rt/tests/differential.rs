//! Differential tests pinning the tuned interface-selection fast path to
//! the naive reference implementation.
//!
//! The fast path (bandwidth-based candidate pruning + demand-curve
//! memoization, see `interface.rs`) must return **bit-identical** `(Π, Θ)`
//! to exhaustive enumeration on every input — these tests sweep random task
//! sets with a fixed-seed [`SimRng`] so each case is reproducible.

use bluescale_rt::interface::{
    feasible_period_bound, min_budget_for_period, select_interface, select_interface_detailed,
    select_interface_exhaustive, select_se_interfaces_parallel, select_se_interfaces_with_divisor,
    SelectionContext,
};
use bluescale_rt::schedulability::{is_schedulable, DemandCurve};
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;

/// A random task set of 1–4 tasks with `U ≤ 1`, mixing light and heavy
/// tasks so both short- and long-period interfaces get exercised.
fn random_taskset(rng: &mut SimRng) -> TaskSet {
    loop {
        let n = rng.range_usize(1, 5);
        let tasks = (0..n)
            .map(|i| {
                let period = rng.range_u64(2, 400);
                let wcet = rng.range_u64(1, 40).min(period);
                Task::new(i as u32, period, wcet).expect("valid parameters")
            })
            .collect();
        if let Ok(set) = TaskSet::new(tasks) {
            return set;
        }
    }
}

/// The tuned `select_interface` returns bit-identical `(Π, Θ)` to the naive
/// exhaustive enumeration on random task sets, across contexts.
#[test]
fn pruned_selection_matches_exhaustive_reference() {
    let mut rng = SimRng::seed_from(0xD1FF);
    for case in 0..150 {
        let set = random_taskset(&mut rng);
        let ctx = match rng.range_u64(0, 3) {
            0 => SelectionContext::isolated(&set),
            1 => SelectionContext::shared((set.utilization() + rng.f64() * 0.5).min(0.99)),
            _ => SelectionContext::isolated(&set).with_period_divisor(rng.range_u64(1, 5)),
        };
        let fast = select_interface(&set, &ctx);
        let naive = select_interface_exhaustive(&set, &ctx);
        assert_eq!(
            fast, naive,
            "case {case}: fast path diverged from reference for {set:?}"
        );
    }
}

/// The memoized binary search returns the same minimum budget as fresh
/// one-shot schedulability probes, for every period in the feasible range.
#[test]
fn memoized_min_budget_matches_fresh_probes() {
    let mut rng = SimRng::seed_from(0x5EED);
    for case in 0..60 {
        let set = random_taskset(&mut rng);
        let bound = feasible_period_bound(&set, &SelectionContext::isolated(&set));
        let mut curve = DemandCurve::new(&set);
        for period in 1..=bound.period.min(64) {
            let memoized = bluescale_rt::interface::min_budget_with_curve(&mut curve, period);
            let fresh = min_budget_for_period(&set, period);
            assert_eq!(
                memoized, fresh,
                "case {case}: memoized budget diverged at Π={period} for {set:?}"
            );
            // And the fresh result is itself pinned to first-principles
            // schedulability of (Π, Θ) / unschedulability of (Π, Θ-1).
            if let Some(b) = fresh {
                let r = PeriodicResource::new(period, b).unwrap();
                assert!(is_schedulable(&set, &r), "case {case}: budget too small");
                if b > 1 {
                    let r = PeriodicResource::new(period, b - 1).unwrap();
                    assert!(!is_schedulable(&set, &r), "case {case}: budget not minimal");
                }
            }
        }
    }
}

/// Parallel per-client selection returns exactly the serial driver's
/// output for random SE client loads, at every thread count.
#[test]
fn parallel_se_selection_is_bit_identical_to_serial() {
    let mut rng = SimRng::seed_from(0x9A11E1);
    for case in 0..25 {
        let clients: Vec<TaskSet> = (0..rng.range_usize(1, 9))
            .map(|_| {
                if rng.chance(0.2) {
                    TaskSet::empty()
                } else {
                    random_taskset(&mut rng)
                }
            })
            .collect();
        let divisor = rng.range_u64(1, 4);
        let serial = select_se_interfaces_with_divisor(&clients, divisor);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                select_se_interfaces_parallel(&clients, divisor, threads),
                serial,
                "case {case}: parallel ({threads} threads) diverged from serial"
            );
        }
    }
}

/// The truncation flag is consistent: untruncated searches really did cover
/// the analytic bound, and the detailed result mirrors `select_interface`.
#[test]
fn detailed_selection_mirrors_plain_selection() {
    let mut rng = SimRng::seed_from(0x7A6);
    for case in 0..60 {
        let set = random_taskset(&mut rng);
        let ctx = SelectionContext::isolated(&set);
        let plain = select_interface(&set, &ctx);
        let detailed = select_interface_detailed(&set, &ctx);
        match (plain, detailed) {
            (Ok(iface), Ok(result)) => {
                assert_eq!(iface, result.interface, "case {case}");
                assert_eq!(
                    result.period_bound,
                    feasible_period_bound(&set, &ctx),
                    "case {case}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "case {case}"),
            (p, d) => panic!("case {case}: plain {p:?} vs detailed {d:?}"),
        }
    }
}
