//! Experiment harness for the BlueScale reproduction.
//!
//! One module per table/figure of the paper, each with a corresponding
//! binary target:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (hardware overhead) | [`table1`] | `cargo run -p bluescale-bench --bin table1` |
//! | Fig 5 (area/power/f_max vs η) | [`fig5`] | `... --bin fig5` |
//! | Fig 6 (blocking latency & miss ratio) | [`fig6`] | `... --bin fig6` |
//! | Fig 7 (case-study success ratio) | [`fig7`] | `... --bin fig7` |
//! | Design-choice ablations (extension) | [`ablation`] | `... --bin ablation` |
//! | DRAM service-jitter sensitivity (extension) | [`dram`] | `... --bin dram` |
//! | Scheduling scalability sweep (extension) | [`scalability`] | `... --bin scalability` |
//! | Worst-case vs average latency (extension) | [`wcrt`] | `... --bin wcrt` |
//! | Temporal isolation vs a rogue client (extension) | [`isolation`] | `... --bin isolation` |
//! | Isolation under fault injection (extension) | [`isolation_fault`] | `... --bin isolation_fault` |
//! | Reconfiguration cost per task change (extension) | [`reconfig`] | `... --bin reconfig` |
//! | Online churn: incremental admission (extension) | [`churn`] | `... --bin churn` |
//! | Analytic admission-rate curve (extension) | [`admission`] | `... --bin admission` |
//! | Hierarchical EDP laxity sweep (extension) | [`edp_sweep`] | `... --bin edp_sweep` |
//! | Interface-selection fast path (extension) | [`interface_selection`] | `... --bin selection_bench` |
//! | SoA hot core vs legacy engine (extension) | [`soa_busy`] | `... --bin soa_busy` |
//! | Fault-tolerant control plane (extension) | [`control_plane`] | `... --bin control_plane` |
//! | Memory-policy zoo × faults (extension) | [`mem_policy`] | `... --bin mem_policy` |
//!
//! [`runner`] builds any of the six interconnects behind the common
//! [`bluescale_interconnect::Interconnect`] trait and runs seeded trials.

#![warn(missing_docs)]

pub mod ablation;
pub mod admission;
pub mod churn;
pub mod control_plane;
pub mod dram;
pub mod edp_sweep;
pub mod export;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod interface_selection;
pub mod isolation;
pub mod isolation_fault;
pub mod mem_policy;
pub mod reconfig;
pub mod runner;
pub mod scalability;
pub mod soa_busy;
pub mod table1;
pub mod wcrt;

/// Parses `--key value` style options from `std::env::args`-like input.
/// Unknown keys are ignored so binaries stay forward-compatible.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a `--key v1,v2,...` list of integers.
pub fn arg_usize_list(args: &[String], key: &str, default: &[usize]) -> Vec<usize> {
    arg_value(args, key)
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

/// Parses a `--key n` integer.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--key n` u64.
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["prog", "--trials", "7", "--clients", "16,64"]);
        assert_eq!(arg_usize(&a, "--trials", 1), 7);
        assert_eq!(arg_usize(&a, "--missing", 3), 3);
        assert_eq!(arg_usize_list(&a, "--clients", &[4]), vec![16, 64]);
        assert_eq!(arg_usize_list(&a, "--nope", &[4]), vec![4]);
        assert_eq!(arg_u64(&a, "--trials", 0), 7);
    }

    #[test]
    fn arg_value_at_end_without_value() {
        let a = args(&["prog", "--flag"]);
        assert_eq!(arg_value(&a, "--flag"), None);
    }
}
