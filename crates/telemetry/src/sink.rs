//! Telemetry sinks: where epochs go after extraction.
//!
//! * [`JsonlSink`] — appends one self-describing JSONL line per epoch to a
//!   file (schema in the crate docs).
//! * [`RingSink`] — in-process subscriber backed by ring-buffered
//!   per-tenant time series, read through a cloneable [`RingHandle`].
//! * [`FanOut`] — bounded-channel fan-out to external subscribers (the
//!   ctl daemon's push path). Slow subscribers lose updates — counted,
//!   never blocking — so an external reader can never backpressure the
//!   simulator.

use crate::delta::EpochDelta;
use crate::jsonl::to_jsonl;
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::Cycle;
use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// A consumer of epoch deltas. Implementations must not block: the flush
/// path runs on the simulation thread (outside the hot loop, but still on
/// the critical path between spans).
pub trait TelemetrySink {
    /// Consumes one epoch. Epochs arrive in order, exactly once.
    fn on_epoch(&mut self, delta: &EpochDelta);
    /// Final call after the last epoch (flush buffers, close files).
    fn finish(&mut self) {}
}

// ---------------------------------------------------------------------
// JSONL file sink
// ---------------------------------------------------------------------

/// Writes one JSONL line per epoch (see the crate docs for the schema).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    error: Option<io::Error>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(File::create(path)?),
            error: None,
        })
    }

    /// The first write error, if any (writes after an error are skipped).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }
}

impl TelemetrySink for JsonlSink {
    fn on_epoch(&mut self, delta: &EpochDelta) {
        if self.error.is_some() {
            return;
        }
        let line = to_jsonl(delta);
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-tenant time-series points
// ---------------------------------------------------------------------

/// One tenant's slice of one epoch: activity deltas plus the windowed SLO
/// values derived at the flush boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPoint {
    /// The tenant (client slot).
    pub tenant: u32,
    /// Epoch number (monotone per pipeline).
    pub epoch: u64,
    /// Simulation cycle of the flush.
    pub cycle: Cycle,
    /// Requests issued this epoch.
    pub issued: u64,
    /// Requests completed this epoch.
    pub completed: u64,
    /// Deadline misses this epoch.
    pub missed: u64,
    /// Windowed miss rate (`slo_miss_rate`).
    pub miss_rate: f64,
    /// Windowed p99 normalized response (`slo_p99_normalized`).
    pub p99_normalized: f64,
    /// Windowed budget-overrun rate (`slo_overrun_rate`).
    pub overrun_rate: f64,
}

/// Projects an epoch onto per-tenant points: one per tenant that has
/// either activity deltas or SLO records this epoch.
pub fn tenant_points(delta: &EpochDelta) -> Vec<TenantPoint> {
    fn point<'a>(
        map: &'a mut BTreeMap<u32, TenantPoint>,
        delta: &EpochDelta,
        tenant: u32,
    ) -> &'a mut TenantPoint {
        map.entry(tenant).or_insert(TenantPoint {
            tenant,
            epoch: delta.epoch,
            cycle: delta.cycle,
            issued: 0,
            completed: 0,
            missed: 0,
            miss_rate: 0.0,
            p99_normalized: 0.0,
            overrun_rate: 0.0,
        })
    }
    let mut by_tenant: BTreeMap<u32, TenantPoint> = BTreeMap::new();
    for c in &delta.counters {
        if let ComponentId::Client(t) = c.component {
            let p = point(&mut by_tenant, delta, t);
            let d = c.delta.max(0) as u64;
            match c.counter {
                Counter::Issued => p.issued += d,
                Counter::Completed => p.completed += d,
                Counter::Missed => p.missed += d,
                _ => {}
            }
        }
    }
    for s in &delta.slo {
        let p = point(&mut by_tenant, delta, s.tenant);
        match s.metric {
            "slo_miss_rate" => p.miss_rate = s.value,
            "slo_p99_normalized" => p.p99_normalized = s.value,
            "slo_overrun_rate" => p.overrun_rate = s.value,
            _ => {}
        }
    }
    by_tenant.into_values().collect()
}

// ---------------------------------------------------------------------
// In-process ring-buffered subscriber sink
// ---------------------------------------------------------------------

/// Shared state between a [`RingSink`] and its [`RingHandle`]s.
#[derive(Debug, Default)]
struct RingShared {
    series: Mutex<BTreeMap<u32, VecDeque<TenantPoint>>>,
    epochs: AtomicU64,
}

/// In-process subscriber sink: keeps the most recent `capacity` points per
/// tenant, readable at any time through a [`RingHandle`].
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    shared: Arc<RingShared>,
}

/// Read side of a [`RingSink`]; cheap to clone and `Send`.
#[derive(Debug, Clone)]
pub struct RingHandle {
    shared: Arc<RingShared>,
}

impl RingSink {
    /// Creates a sink retaining `capacity` points per tenant (min 1).
    pub fn new(capacity: usize) -> (Self, RingHandle) {
        let shared = Arc::new(RingShared::default());
        (
            Self {
                capacity: capacity.max(1),
                shared: Arc::clone(&shared),
            },
            RingHandle { shared },
        )
    }
}

impl TelemetrySink for RingSink {
    fn on_epoch(&mut self, delta: &EpochDelta) {
        let points = tenant_points(delta);
        let mut series = self.shared.series.lock().expect("ring sink poisoned");
        for p in points {
            let ring = series.entry(p.tenant).or_default();
            if ring.len() >= self.capacity {
                ring.pop_front();
            }
            ring.push_back(p);
        }
        drop(series);
        self.shared.epochs.fetch_add(1, Ordering::Release);
    }
}

impl RingHandle {
    /// The retained time series for `tenant`, oldest first.
    pub fn series(&self, tenant: u32) -> Vec<TenantPoint> {
        self.shared
            .series
            .lock()
            .expect("ring sink poisoned")
            .get(&tenant)
            .map(|r| r.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Tenants with at least one retained point.
    pub fn tenants(&self) -> Vec<u32> {
        self.shared
            .series
            .lock()
            .expect("ring sink poisoned")
            .keys()
            .copied()
            .collect()
    }

    /// Number of epochs the sink has consumed.
    pub fn epochs_seen(&self) -> u64 {
        self.shared.epochs.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// Bounded fan-out to external subscribers
// ---------------------------------------------------------------------

struct Subscriber {
    id: u64,
    tenant: u32,
    tx: SyncSender<TenantPoint>,
}

/// Fan-out hub for external subscribers (the ctl daemon's push path).
///
/// The flush side ([`FanOutSink`]) delivers each tenant's point to that
/// tenant's subscribers with `try_send` on a bounded channel: a subscriber
/// whose pusher thread has fallen behind loses the update and the hub's
/// lagged tally grows. The simulation thread never blocks on a reader.
#[derive(Default)]
pub struct FanOut {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    lagged: AtomicU64,
}

impl FanOut {
    /// Creates an empty hub.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a subscriber for `tenant` with a `depth`-bounded channel.
    /// Returns the subscription id and the receiving end.
    pub fn subscribe(&self, tenant: u32, depth: usize) -> (u64, Receiver<TenantPoint>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers
            .lock()
            .expect("fan-out poisoned")
            .push(Subscriber { id, tenant, tx });
        (id, rx)
    }

    /// Removes a subscriber (idempotent).
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers
            .lock()
            .expect("fan-out poisoned")
            .retain(|s| s.id != id);
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().expect("fan-out poisoned").len()
    }

    /// Drains the lagged tally (updates dropped on full channels) since
    /// the last call. The caller folds this into its own accounting —
    /// typically a `SubscriberLagged` counter.
    pub fn take_lagged(&self) -> u64 {
        self.lagged.swap(0, Ordering::AcqRel)
    }
}

/// The [`TelemetrySink`] face of a [`FanOut`] hub.
pub struct FanOutSink {
    hub: Arc<FanOut>,
}

impl FanOutSink {
    /// Wraps a hub for registration with a pipeline.
    pub fn new(hub: Arc<FanOut>) -> Self {
        Self { hub }
    }
}

impl TelemetrySink for FanOutSink {
    fn on_epoch(&mut self, delta: &EpochDelta) {
        let points = tenant_points(delta);
        if points.is_empty() {
            return;
        }
        let mut subscribers = self.hub.subscribers.lock().expect("fan-out poisoned");
        let mut dead_ids: Vec<u64> = Vec::new();
        for sub in subscribers.iter() {
            for p in &points {
                if p.tenant != sub.tenant {
                    continue;
                }
                match sub.tx.try_send(*p) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.hub.lagged.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        dead_ids.push(sub.id);
                        break;
                    }
                }
            }
        }
        if !dead_ids.is_empty() {
            subscribers.retain(|s| !dead_ids.contains(&s.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CounterDelta, SloRecord};

    fn delta(epoch: u64, tenant: u32, issued: i64) -> EpochDelta {
        EpochDelta {
            epoch,
            cycle: epoch * 10,
            counters: vec![CounterDelta {
                source: "harness",
                component: ComponentId::Client(tenant),
                counter: Counter::Issued,
                delta: issued,
                total: issued as u64,
            }],
            gauges: Vec::new(),
            stats: Vec::new(),
            windows: Vec::new(),
            slo: vec![SloRecord {
                tenant,
                metric: "slo_miss_rate",
                value: 0.125,
            }],
        }
    }

    #[test]
    fn ring_sink_retains_bounded_series() {
        let (mut sink, handle) = RingSink::new(3);
        for e in 0..10 {
            sink.on_epoch(&delta(e, 7, 2));
        }
        let series = handle.series(7);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].epoch, 7);
        assert_eq!(series[2].epoch, 9);
        assert_eq!(series[2].issued, 2);
        assert_eq!(series[2].miss_rate, 0.125);
        assert_eq!(handle.epochs_seen(), 10);
        assert!(handle.series(99).is_empty());
    }

    #[test]
    fn fanout_delivers_own_tenant_only() {
        let hub = FanOut::new();
        let (_ida, rx_a) = hub.subscribe(1, 8);
        let (_idb, rx_b) = hub.subscribe(2, 8);
        let mut sink = FanOutSink::new(Arc::clone(&hub));
        sink.on_epoch(&delta(0, 1, 5));
        sink.on_epoch(&delta(1, 2, 3));
        let a = rx_a.try_recv().unwrap();
        assert_eq!((a.tenant, a.epoch, a.issued), (1, 0, 5));
        assert!(rx_a.try_recv().is_err(), "tenant 1 must not see tenant 2");
        let b = rx_b.try_recv().unwrap();
        assert_eq!((b.tenant, b.epoch), (2, 1));
    }

    #[test]
    fn fanout_sheds_slow_subscribers_without_blocking() {
        let hub = FanOut::new();
        let (_id, rx) = hub.subscribe(4, 2);
        let mut sink = FanOutSink::new(Arc::clone(&hub));
        for e in 0..10 {
            sink.on_epoch(&delta(e, 4, 1));
        }
        // Depth 2: the first two points queued, the rest were shed.
        assert_eq!(hub.take_lagged(), 8);
        assert_eq!(hub.take_lagged(), 0, "tally drains");
        assert_eq!(rx.try_recv().unwrap().epoch, 0);
        assert_eq!(rx.try_recv().unwrap().epoch, 1);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn fanout_unsubscribe_and_disconnect() {
        let hub = FanOut::new();
        let (id, rx) = hub.subscribe(1, 2);
        assert_eq!(hub.subscriber_count(), 1);
        hub.unsubscribe(id);
        assert_eq!(hub.subscriber_count(), 0);
        drop(rx);
        // A dropped receiver is pruned on the next epoch that notices it.
        let (_id2, rx2) = hub.subscribe(1, 2);
        drop(rx2);
        let mut sink = FanOutSink::new(Arc::clone(&hub));
        sink.on_epoch(&delta(0, 1, 1));
        assert_eq!(hub.subscriber_count(), 0);
    }
}
