//! Scheduling scalability in action (paper, Section 3.2): when the tasks
//! on one client change, only the Scale Elements on that client's request
//! path refresh their server-task parameters — every other SE keeps its
//! configuration, so reconfiguration cost is O(tree depth), not O(clients).
//!
//! ```text
//! cargo run --example dynamic_reconfiguration
//! ```

use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::rt::task::{Task, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 64 clients → 3 SE levels (1 + 4 + 16 = 21 elements).
    let task_sets: Vec<TaskSet> = (0..64)
        .map(|_| TaskSet::new(vec![Task::new(0, 3200, 4)?]))
        .collect::<Result<_, _>>()?;
    let mut ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(64), &task_sets)?;

    println!(
        "built 64-client BlueScale: {} SEs programmed, root bandwidth {:.3}",
        ic.composition().reprogrammed_elements,
        ic.composition().root_bandwidth
    );
    let before = ic.composition().interfaces.clone();

    // Client 37 suddenly hosts a heavy task.
    let heavy = TaskSet::new(vec![Task::new(0, 3200, 4)?, Task::new(1, 400, 40)?])?;
    let report = ic.update_client_tasks(37, heavy)?;
    println!(
        "\nclient 37 updated: {} SEs reprogrammed (tree depth = 3), \
         root bandwidth now {:.3}, schedulable = {}",
        report.reprogrammed_elements, report.root_bandwidth, report.schedulable
    );

    // Show exactly which SEs changed.
    let after = &ic.composition().interfaces;
    println!("\nchanged Scale Elements:");
    for depth in 0..before.len() {
        for order in 0..before[depth].len() {
            if before[depth][order] != after[depth][order] {
                println!(
                    "  SE({depth},{order}): {:?} → {:?}",
                    summarize(&before[depth][order]),
                    summarize(&after[depth][order]),
                );
            }
        }
    }
    println!("\nall other SEs kept their parameters bit-identically.");
    Ok(())
}

fn summarize(interfaces: &[Option<bluescale_repro::rt::supply::PeriodicResource>]) -> Vec<String> {
    interfaces
        .iter()
        .map(|i| match i {
            Some(r) => format!("{}per{}", r.budget(), r.period()),
            None => "idle".to_owned(),
        })
        .collect()
}
