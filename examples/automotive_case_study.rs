//! The paper's Section 6.4 case study in miniature: automotive safety +
//! function tasks on a 16-core system with two DNN accelerators, executed
//! on BlueScale and on every baseline interconnect.
//!
//! ```text
//! cargo run --release --example automotive_case_study [-- target_util]
//! ```

use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::workload::casestudy::{
    generate, CaseStudyConfig, FUNCTION_TASKS, SAFETY_TASKS,
};
use bluescale_repro::workload::total_utilization;

// The experiment harness lives in the bench crate; examples re-implement
// the tiny loop so they only depend on the published library crates.
use bluescale_repro::baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::noc::NocMemoryInterconnect;
use bluescale_repro::rt::task::TaskSet;

fn build_all(task_sets: &[TaskSet]) -> Vec<Box<dyn Interconnect>> {
    let n = task_sets.len();
    let weights: Vec<f64> = task_sets
        .iter()
        .map(|s| s.utilization().max(1e-4))
        .collect();
    let mut bs_config = BlueScaleConfig::for_clients(n);
    bs_config.work_conserving = true;
    vec![
        Box::new(AxiIcRt::new(n, 8, 1)),
        Box::new(BlueTree::new(n, 2, 1)),
        Box::new(BlueTree::smooth(n, 2, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Tdm, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Fbsp(weights), 1)),
        Box::new(BlueScaleInterconnect::new(bs_config, task_sets).expect("matching client count")),
        Box::new(NocMemoryInterconnect::new(n, 1)),
    ]
}

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.6);

    println!("== Task catalogue ==");
    println!(
        "safety tasks  : {}",
        SAFETY_TASKS.map(|t| t.name).join(", ")
    );
    println!(
        "function tasks: {}",
        FUNCTION_TASKS.map(|t| t.name).join(", ")
    );

    let mut rng = SimRng::seed_from(2022);
    let config = CaseStudyConfig::fig7(16, target);
    let task_sets = generate(&config, &mut rng);
    println!(
        "\n16 processors + 2 DNN HAs, target utilization {target:.2} \
         (realized {:.3})\n",
        total_utilization(&task_sets)
    );

    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>12} {:>9}",
        "interconnect", "issued", "completed", "missed", "mean lat", "success"
    );
    for ic in build_all(&task_sets) {
        let name = ic.name();
        let mut system = System::new(ic, &task_sets);
        let m = system.run(60_000);
        println!(
            "{:<16} {:>8} {:>10} {:>8} {:>9.1} cy {:>9}",
            name,
            m.issued(),
            m.completed(),
            m.missed(),
            m.mean_latency(),
            if m.success() { "yes" } else { "no" },
        );
    }
    println!("\nA run *succeeds* when no safety or function task misses a deadline.");
}
