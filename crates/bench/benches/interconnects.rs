//! Micro-benchmarks of the simulated interconnects: per-cycle stepping
//! cost and end-to-end trial throughput for each architecture.
//!
//! Plain timing harness (`harness = false`): the container has no registry
//! access for criterion. Run with `cargo bench -p bluescale-bench`.

use std::hint::black_box;
use std::time::Instant;

use bluescale_bench::runner::{build, run_trial, InterconnectKind};
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10).min(100) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() / iters as u128;
    println!("{name:<42} {per_iter:>12} ns/iter ({iters} iters)");
}

fn light_sets(n: usize) -> Vec<TaskSet> {
    (0..n)
        .map(|_| TaskSet::new(vec![Task::new(0, 400, 2).expect("valid")]).expect("valid"))
        .collect()
}

fn main() {
    let sets16 = light_sets(16);
    for kind in InterconnectKind::ALL {
        time(
            &format!("step_1k_cycles_16_clients/{}", kind.name()),
            50,
            || {
                let mut ic = build(kind, &sets16);
                for now in 0..1000 {
                    ic.step(black_box(now));
                }
                ic
            },
        );
    }

    let mut rng = SimRng::seed_from(1234);
    let loaded = generate(&SyntheticConfig::fig6(16), &mut rng);
    for kind in [InterconnectKind::BlueScale, InterconnectKind::AxiIcRt] {
        time(
            &format!("trial_5k_cycles_loaded/{}", kind.name()),
            10,
            || run_trial(kind, black_box(&loaded), 5_000),
        );
    }

    {
        use bluescale_noc::mesh::Packet;
        use bluescale_noc::{Mesh, MeshConfig, NodeId};
        time("noc_mesh_9x9_step_loaded", 200, || {
            let mut mesh: Mesh<u64> = Mesh::new(MeshConfig {
                width: 9,
                height: 9,
                buffer_capacity: 4,
            });
            for i in 0..64u64 {
                let src = NodeId::new((i % 8 + 1) as usize, (i / 8 + 1) as usize % 9);
                let _ = mesh.inject(
                    src,
                    Packet {
                        dest: NodeId::new(0, 0),
                        payload: i,
                    },
                );
            }
            for _ in 0..100 {
                mesh.step();
            }
            mesh
        });
    }

    for n in [16usize, 64] {
        let sets = light_sets(n);
        time(&format!("bluescale_build/{n}clients"), 20, || {
            build(InterconnectKind::BlueScale, black_box(&sets))
        });
    }
}
