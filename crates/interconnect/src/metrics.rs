//! Run metrics: the quantities the paper's Figures 6 and 7 report.

use crate::MemoryResponse;
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::stats::Samples;
use bluescale_sim::Cycle;

/// Metrics accumulated over one simulation run.
///
/// * **Blocking latency** — cycles a request spent waiting behind
///   later-deadline (lower-priority) requests (Fig 6, left axis).
/// * **Deadline miss ratio** — fraction of requests not completed by their
///   deadline (Fig 6, right axis).
/// * **Success** — a run succeeds when *no* request missed (Fig 7 reports
///   the ratio of successful runs).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    latency: Samples,
    blocking: Samples,
    normalized: Samples,
    issued: u64,
    completed: u64,
    missed: u64,
    backlog: u64,
}

impl RunMetrics {
    /// Creates an empty metrics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that a client released one request.
    pub fn on_issued(&mut self) {
        self.issued += 1;
    }

    /// Builds a view of `component`'s slice of a [`MetricsRegistry`]: the
    /// Issued/Completed/Missed/Backlog counters plus the Latency, Blocking
    /// and NormalizedResponse sample collectors. This is how the harness
    /// keeps its historical `RunMetrics` API while recording into the
    /// typed registry.
    pub fn from_registry(registry: &MetricsRegistry, component: ComponentId) -> Self {
        let sample = |kind| {
            registry
                .samples(component, kind)
                .cloned()
                .unwrap_or_default()
        };
        Self {
            latency: sample(SampleKind::Latency),
            blocking: sample(SampleKind::Blocking),
            normalized: sample(SampleKind::NormalizedResponse),
            issued: registry.counter(component, Counter::Issued),
            completed: registry.counter(component, Counter::Completed),
            missed: registry.counter(component, Counter::Missed),
            backlog: registry.counter(component, Counter::Backlog),
        }
    }

    /// Records a completed response.
    pub fn on_response(&mut self, response: &MemoryResponse) {
        self.completed += 1;
        self.latency.push(response.latency() as f64);
        self.blocking.push(response.request.blocked_cycles as f64);
        let window = response
            .request
            .deadline
            .saturating_sub(response.request.issued_at)
            .max(1);
        self.normalized
            .push(response.latency() as f64 / window as f64);
        if response.missed_deadline() {
            self.missed += 1;
        }
    }

    /// Accounts for a request still queued at its client when the horizon
    /// ended: counted as backlog, and as a miss when its deadline already
    /// passed.
    pub fn on_incomplete(&mut self, deadline: Cycle, horizon: Cycle) {
        self.backlog += 1;
        if deadline < horizon {
            self.missed += 1;
        }
    }

    /// Requests still queued at their clients when the run ended (issued
    /// but never accepted by the interconnect). Conservation:
    /// `issued = completed + interconnect in-flight + backlog`.
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Requests released.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests that missed their deadline (completed late or never).
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Deadline miss ratio over all issued requests; 0 when nothing issued.
    pub fn miss_ratio(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.missed as f64 / self.issued as f64
        }
    }

    /// Whether the run completed with zero deadline misses.
    pub fn success(&self) -> bool {
        self.missed == 0
    }

    /// End-to-end latency samples (cycles).
    pub fn latency(&mut self) -> &mut Samples {
        &mut self.latency
    }

    /// Blocking latency samples (cycles).
    pub fn blocking(&mut self) -> &mut Samples {
        &mut self.blocking
    }

    /// Deadline-normalized response times (latency divided by the
    /// request's deadline window; 1.0 = finished exactly at the deadline).
    /// This separates *scheduling jitter* from burst-size effects: a value
    /// near 0 means the request finished far ahead of its deadline.
    pub fn normalized_response(&mut self) -> &mut Samples {
        &mut self.normalized
    }

    /// Mean end-to-end latency in cycles; 0 when nothing completed.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean().unwrap_or(0.0)
    }

    /// Mean blocking latency in cycles; 0 when nothing completed.
    pub fn mean_blocking(&self) -> f64 {
        self.blocking.mean().unwrap_or(0.0)
    }

    /// Variance of the blocking latency (the paper highlights BlueScale's
    /// low experimental variance); 0 when nothing completed.
    pub fn blocking_variance(&self) -> f64 {
        self.blocking.variance().unwrap_or(0.0)
    }
}

/// Jain's fairness index over per-client quantities (e.g. mean latency or
/// throughput): `(Σxᵢ)² / (n·Σxᵢ²)`. 1.0 means perfectly equal shares;
/// `1/n` means one client took everything. Returns 1.0 for empty input or
/// all-zero values (nothing to be unfair about).
///
/// # Example
///
/// ```
/// use bluescale_interconnect::metrics::jain_fairness;
///
/// assert!((jain_fairness(&[10.0, 10.0, 10.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness(&[30.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_fairness(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if values.is_empty() || sum_sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, MemoryRequest};

    fn response(issued: Cycle, deadline: Cycle, done: Cycle, blocked: u64) -> MemoryResponse {
        MemoryResponse {
            request: MemoryRequest {
                id: 0,
                client: 0,
                task: 0,
                addr: 0,
                kind: AccessKind::Read,
                issued_at: issued,
                deadline,
                blocked_cycles: blocked,
            },
            completed_at: done,
        }
    }

    #[test]
    fn counts_and_ratios() {
        let mut m = RunMetrics::new();
        for _ in 0..4 {
            m.on_issued();
        }
        m.on_response(&response(0, 10, 5, 1)); // on time
        m.on_response(&response(0, 10, 15, 9)); // late
        assert_eq!(m.issued(), 4);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.missed(), 1);
        assert!((m.miss_ratio() - 0.25).abs() < 1e-12);
        assert!(!m.success());
        assert!((m.mean_latency() - 10.0).abs() < 1e-12);
        assert!((m.mean_blocking() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_past_deadline_is_miss() {
        let mut m = RunMetrics::new();
        m.on_issued();
        m.on_issued();
        m.on_incomplete(50, 100); // deadline passed → miss
        m.on_incomplete(150, 100); // deadline after horizon → not counted
        assert_eq!(m.missed(), 1);
        assert_eq!(m.backlog(), 2);
    }

    #[test]
    fn empty_run_is_successful() {
        let m = RunMetrics::new();
        assert!(m.success());
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.mean_latency(), 0.0);
    }

    #[test]
    fn normalized_response_uses_deadline_window() {
        let mut m = RunMetrics::new();
        m.on_issued();
        // Issued at 0, deadline 100, completed at 25 → normalized 0.25.
        m.on_response(&response(0, 100, 25, 0));
        assert!((m.normalized_response().max().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_index_properties() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_fairness(&[100.0, 1.0, 1.0, 1.0]);
        assert!(skewed < 0.3, "skewed allocation scores low: {skewed}");
        // Bounded in [1/n, 1].
        assert!(skewed >= 0.25 - 1e-12);
    }

    #[test]
    fn from_registry_reads_one_component_slice() {
        let mut reg = MetricsRegistry::new();
        let c = ComponentId::Client(2);
        reg.add(c, Counter::Issued, 3);
        reg.add(c, Counter::Completed, 2);
        reg.inc(c, Counter::Missed);
        reg.inc(c, Counter::Backlog);
        reg.sample(c, SampleKind::Latency, 10.0);
        reg.sample(c, SampleKind::Latency, 20.0);
        reg.sample(c, SampleKind::Blocking, 4.0);
        // Another component's slice must not leak in.
        reg.add(ComponentId::System, Counter::Issued, 100);
        let mut m = RunMetrics::from_registry(&reg, c);
        assert_eq!(m.issued(), 3);
        assert_eq!(m.completed(), 2);
        assert_eq!(m.missed(), 1);
        assert_eq!(m.backlog(), 1);
        assert!((m.mean_latency() - 15.0).abs() < 1e-12);
        assert_eq!(m.blocking().len(), 1);
        assert_eq!(m.normalized_response().len(), 0);
    }

    #[test]
    fn blocking_variance_computed() {
        let mut m = RunMetrics::new();
        m.on_issued();
        m.on_issued();
        m.on_response(&response(0, 100, 1, 0));
        m.on_response(&response(0, 100, 1, 10));
        assert!((m.blocking_variance() - 25.0).abs() < 1e-12);
    }
}
