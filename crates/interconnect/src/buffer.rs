//! Shared micro-architectural building blocks: bounded FIFOs (stage
//! buffers) and fixed-latency delay lines (pipelined response paths).

use bluescale_sim::Cycle;
use std::collections::VecDeque;

/// A bounded FIFO modelling a stage buffer in a transaction path.
///
/// # Example
///
/// ```
/// use bluescale_interconnect::buffer::FifoBuffer;
///
/// let mut f = FifoBuffer::with_capacity(2);
/// assert!(f.try_push(1).is_ok());
/// assert!(f.try_push(2).is_ok());
/// assert_eq!(f.try_push(3), Err(3)); // full: backpressure
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct FifoBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> FifoBuffer<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Attempts to enqueue; hands the item back when full.
    ///
    /// # Errors
    ///
    /// Returns the item as the error value if the buffer is at capacity.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Borrows the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutably borrows the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Iterates items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Mutably iterates items oldest-first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A fixed-latency pipeline: items pushed at cycle `t` become available at
/// `t + latency`. Models the staged response path of tree interconnects.
///
/// # Example
///
/// ```
/// use bluescale_interconnect::buffer::DelayLine;
///
/// let mut d = DelayLine::new(3);
/// d.push("resp", 10);
/// assert_eq!(d.pop_ready(12), None);
/// assert_eq!(d.pop_ready(13), Some("resp"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: Cycle,
    in_flight: VecDeque<(Cycle, T)>,
}

impl<T> DelayLine<T> {
    /// Creates a delay line with the given latency in cycles (0 = same
    /// cycle availability).
    pub fn new(latency: Cycle) -> Self {
        Self {
            latency,
            in_flight: VecDeque::new(),
        }
    }

    /// The configured latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Inserts an item at cycle `now`; it emerges at `now + latency`.
    pub fn push(&mut self, item: T, now: Cycle) {
        self.in_flight.push_back((now + self.latency, item));
    }

    /// Removes the oldest item whose delay has elapsed by `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.in_flight.front() {
            Some((ready, _)) if *ready <= now => self.in_flight.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Number of items still in flight.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order() {
        let mut f = FifoBuffer::with_capacity(4);
        for i in 0..4 {
            f.try_push(i).unwrap();
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        f.try_push(9).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn fifo_backpressure() {
        let mut f = FifoBuffer::with_capacity(1);
        assert!(f.try_push('a').is_ok());
        assert!(f.is_full());
        assert_eq!(f.try_push('b'), Err('b'));
        f.pop();
        assert!(f.try_push('b').is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fifo_zero_capacity_panics() {
        let _: FifoBuffer<u8> = FifoBuffer::with_capacity(0);
    }

    #[test]
    fn fifo_front_access() {
        let mut f = FifoBuffer::with_capacity(2);
        f.try_push(5).unwrap();
        assert_eq!(f.front(), Some(&5));
        *f.front_mut().unwrap() = 6;
        assert_eq!(f.pop(), Some(6));
    }

    #[test]
    fn delay_line_delays_exactly() {
        let mut d = DelayLine::new(5);
        d.push(1, 100);
        for t in 100..105 {
            assert_eq!(d.pop_ready(t), None, "not ready at {t}");
        }
        assert_eq!(d.pop_ready(105), Some(1));
        assert!(d.is_empty());
    }

    #[test]
    fn delay_line_orders_by_insertion() {
        let mut d = DelayLine::new(2);
        d.push('a', 0);
        d.push('b', 1);
        assert_eq!(d.pop_ready(3), Some('a'));
        assert_eq!(d.pop_ready(3), Some('b'));
    }

    #[test]
    fn delay_line_zero_latency() {
        let mut d = DelayLine::new(0);
        d.push(7, 42);
        assert_eq!(d.pop_ready(42), Some(7));
    }

    #[test]
    fn delay_line_pop_only_one_per_call() {
        let mut d = DelayLine::new(0);
        d.push(1, 0);
        d.push(2, 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.pop_ready(0), Some(1));
        assert_eq!(d.len(), 1);
    }
}
