//! Differential tests pinning the structure-of-arrays engine to the
//! legacy per-SE engine.
//!
//! [`BlueScaleConfig::soa_core`] selects between two implementations of
//! the same arbitration semantics: the legacy `ScaleElement` engine
//! (per-SE `Vec<ServerTask>` + per-port buffers) and the flat
//! `core::soa::SoaCore` arena (contiguous server slices, linear-scan GEDF
//! argmin, batched counters, bucketed deadline queues for deep buffers).
//! These tests run the identical seeded workload on both engines and
//! require bit-identical fingerprints — counts, per-client counts, per-SE
//! forwards, per-port grants and replenishments, and full latency/blocking
//! sample sequences — across:
//!
//! * the paper's fig6 workloads in strict and work-conserving modes,
//! * a sparse faulted run with guards armed (stuck grants, DRAM jitter,
//!   dropped responses, request bursts),
//! * a live churn plan (retask, leave, rejoin) with fast-forward on,
//! * a deep-buffer configuration that exercises the bucketed deadline
//!   queue inside the full system, and
//! * a detail-recording run, where the typed event streams of the two
//!   engines must match event for event.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::guard::{GuardConfig, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::Counter;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x50AD;
const HORIZON: u64 = 20_000;

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

/// Low-utilization, long-period workload: real idle stretches, so the SoA
/// engine's `advance_idle` sweep is exercised alongside its stepped path.
fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn build_system(
    sets: &[TaskSet],
    work_conserving: bool,
    soa_core: bool,
) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = work_conserving;
    config.soa_core = soa_core;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

/// Everything two runs must agree on to count as bit-identical.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// Runs the same workload on the SoA and legacy engines and asserts the
/// fingerprints match. Returns the SoA system for extra checks.
fn assert_engines_agree(
    mut soa: System<BlueScaleInterconnect>,
    mut legacy: System<BlueScaleInterconnect>,
    label: &str,
) -> System<BlueScaleInterconnect> {
    let a = fingerprint(&mut soa, HORIZON);
    let b = fingerprint(&mut legacy, HORIZON);
    assert!(b.0[0] > 0, "{label}: the workload must issue requests");
    assert_eq!(a, b, "{label}: the SoA engine must be bit-identical");
    soa
}

#[test]
fn fig6_strict_mode_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let soa = build_system(&sets, false, true);
    let legacy = build_system(&sets, false, false);
    assert_engines_agree(soa, legacy, "fig6/strict");
}

#[test]
fn fig6_work_conserving_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let soa = build_system(&sets, true, true);
    let legacy = build_system(&sets, true, false);
    assert_engines_agree(soa, legacy, "fig6/work-conserving");
}

fn faulted_guarded_system(sets: &[TaskSet], soa_core: bool) -> System<BlueScaleInterconnect> {
    let mut sys = build_system(sets, true, soa_core);
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    sys.set_fault_plan(plan);
    // Sub-window timeout (1024 < period_max 4000) on purpose: the
    // differential needs live retry traffic to pin.
    sys.set_guards_unchecked(GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 1_024,
            max_retries: 3,
        }),
        quarantine: None,
    });
    sys
}

#[test]
fn fault_plan_with_guards_is_bit_identical() {
    // Stuck-grant masks, jittered service, dropped responses and guard
    // timers all cross the engine boundary; both engines must agree while
    // fast-forward jumps actually happen on the sparse stretches.
    let sets = task_sets(&sparse_config(16));
    let soa = faulted_guarded_system(&sets, true);
    let legacy = faulted_guarded_system(&sets, false);
    let soa = assert_engines_agree(soa, legacy, "faults + guards");
    assert!(
        soa.fast_forwarded_cycles() > 0,
        "the sparse faulted run must still find idle stretches to jump"
    );
}

#[test]
fn churn_plan_is_bit_identical() {
    // Retask, leave, rejoin: deferred (Π,Θ) swaps, slot clears and slot
    // reuse all run through the arena while the legacy oracle replays the
    // same plan on its own engine.
    let sets = task_sets(&sparse_config(16));
    let mut plan = ChurnPlan::new(SEED ^ 0xC482);
    plan.push(
        6_000,
        2,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
        },
    )
    .push(9_000, 9, ChurnKind::Leave)
    .push(
        13_000,
        9,
        ChurnKind::Join {
            tasks: sets[9].clone(),
        },
    );
    let mut soa = build_system(&sets, true, true);
    let mut legacy = build_system(&sets, true, false);
    soa.set_churn_plan(plan.clone());
    legacy.set_churn_plan(plan);
    let soa = assert_engines_agree(soa, legacy, "churn plan");
    assert!(
        soa.fast_forward_jumps() > 0,
        "the sparse churned run must still jump, or the check is vacuous"
    );
}

#[test]
fn deep_buffers_route_through_the_bucketed_queue_bit_identically() {
    // Capacity 32 exceeds the SoA slab's linear-scan bound, so the leaf
    // and inner port queues run on the bucketed deadline queue inside the
    // full system — against the legacy comparator-scan oracle.
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let mk = |soa_core: bool| {
        let mut config = BlueScaleConfig::for_clients(sets.len());
        config.buffer_capacity = 32;
        config.soa_core = soa_core;
        let ic = BlueScaleInterconnect::new(config, &sets).expect("valid task sets");
        System::new(Box::new(ic), &sets)
    };
    assert_engines_agree(mk(true), mk(false), "deep buffers");
}

#[test]
fn detail_recording_matches_event_for_event() {
    // With detail on, the SoA engine abandons its batched counters and
    // writes counters and typed events through directly; the resulting
    // event stream must equal the legacy engine's exactly, in order.
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let mut soa = build_system(&sets, false, true);
    let mut legacy = build_system(&sets, false, false);
    soa.enable_detail();
    legacy.enable_detail();
    let a = fingerprint(&mut soa, HORIZON);
    let b = fingerprint(&mut legacy, HORIZON);
    assert_eq!(a, b, "detail run: fingerprints must match");
    let ea = soa.interconnect().metrics().events();
    let eb = legacy.interconnect().metrics().events();
    assert!(!eb.is_empty(), "the detail run must record events");
    assert_eq!(ea, eb, "typed event streams must match event for event");
}
