//! Control-plane client: one tenant's connection to the daemon, with
//! deadline-aware bounded retry.
//!
//! Every request carries a total deadline. Transport failures (refused
//! connection, dropped stream, read timeout) retry with exponential
//! backoff and seeded jitter — the jitter comes from a [`SimRng`] fork so
//! a given client id retries on the same schedule in every run. Retries
//! resend the request with an incremented `attempt` counter; the daemon's
//! idempotent admission makes a retry of an applied-but-unacknowledged
//! operation safe.
//!
//! Application verdicts ([`Response::Rejected`], [`Response::Shed`],
//! [`Response::TimedOut`]) are **not** retried here — they are answers,
//! not failures; the caller decides whether to back off and try again.
//!
//! For fault-injection tests, [`RetryPolicy::drop_after_send_every`]
//! makes the client sever its own connection after every Nth request
//! frame is sent — the response is lost in flight, forcing the
//! reconnect-and-retry path against a daemon that already applied the op.

use crate::proto::{
    read_frame, write_frame, FrameReader, Request, Response, TaskSpec, TelemetryUpdate, TenantClass,
};
use bluescale_sim::rng::SimRng;
use std::fmt;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Retry tuning for one client.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Total per-request deadline across all attempts.
    pub deadline: Duration,
    /// Fault injection: sever the connection after every Nth sent
    /// request frame (the in-flight response is lost). `None` disables.
    pub drop_after_send_every: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
            deadline: Duration::from_secs(5),
            drop_after_send_every: None,
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum CtlError {
    /// Transport failure on the final attempt.
    Io(io::Error),
    /// Attempts or the deadline ran out.
    DeadlineExceeded {
        /// Attempts actually made.
        attempts: u32,
    },
    /// The daemon answered with an internal error code.
    Daemon(u16),
    /// The daemon refused the operation with a typed verdict (e.g. a
    /// subscription for an unknown tenant).
    Refused(Response),
}

impl fmt::Display for CtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtlError::Io(e) => write!(f, "transport failed: {e}"),
            CtlError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempts")
            }
            CtlError::Daemon(code) => write!(f, "daemon error {code}"),
            CtlError::Refused(resp) => write!(f, "daemon refused: {resp:?}"),
        }
    }
}

impl std::error::Error for CtlError {}

impl From<io::Error> for CtlError {
    fn from(e: io::Error) -> Self {
        CtlError::Io(e)
    }
}

/// A tenant's connection to the control-plane daemon.
pub struct CtlClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: SimRng,
    stream: Option<TcpStream>,
    sends: u64,
}

impl CtlClient {
    /// Builds a client for the daemon at `addr`. `seed` pins the retry
    /// jitter schedule; clients with distinct seeds desynchronize their
    /// retry storms.
    pub fn new(addr: SocketAddr, policy: RetryPolicy, seed: u64) -> Self {
        CtlClient {
            addr,
            policy,
            rng: SimRng::seed_from(seed),
            stream: None,
            sends: 0,
        }
    }

    /// Liveness probe (retried like any request).
    pub fn ping(&mut self) -> Result<Response, CtlError> {
        self.request(|_| Request::Ping)
    }

    /// Submits a task set for admission.
    pub fn join(
        &mut self,
        tenant: u64,
        class: TenantClass,
        tasks: Vec<TaskSpec>,
    ) -> Result<Response, CtlError> {
        self.request(move |attempt| Request::Join {
            tenant,
            class,
            tasks: tasks.clone(),
            attempt,
        })
    }

    /// Renegotiates the tenant's task set.
    pub fn renegotiate(&mut self, tenant: u64, tasks: Vec<TaskSpec>) -> Result<Response, CtlError> {
        self.request(move |attempt| Request::Renegotiate {
            tenant,
            tasks: tasks.clone(),
            attempt,
        })
    }

    /// Releases the tenant's reservation.
    pub fn leave(&mut self, tenant: u64) -> Result<Response, CtlError> {
        self.request(move |attempt| Request::Leave { tenant, attempt })
    }

    /// Fetches the tenant's miss/latency stream.
    pub fn stats(&mut self, tenant: u64) -> Result<Response, CtlError> {
        self.request(move |_| Request::Stats { tenant })
    }

    /// Opens a live telemetry stream for `tenant` on a dedicated
    /// connection (the request/response connection stays usable). The
    /// subscribe handshake is one-shot — callers retry at their own
    /// cadence; a subscription is a live feed, not an admission.
    pub fn subscribe(&mut self, tenant: u64) -> Result<TelemetrySubscription, CtlError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.policy.deadline)?;
        stream.set_nodelay(true)?;
        let mut sub = TelemetrySubscription {
            stream,
            reader: FrameReader::new(),
        };
        write_frame(&mut sub.stream, &Request::Subscribe { tenant }.encode())?;
        sub.stream
            .set_read_timeout(Some(self.policy.deadline.max(MIN_IO_BUDGET)))?;
        let payload = read_frame(&mut sub.stream)?;
        match Response::decode(&payload).map_err(io::Error::from)? {
            Response::Subscribed => Ok(sub),
            Response::Err { code } => Err(CtlError::Daemon(code)),
            other => Err(CtlError::Refused(other)),
        }
    }

    fn connect(&mut self, remaining: Duration) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, remaining.max(MIN_IO_BUDGET))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("connected above"))
    }

    /// Runs one request to completion under the retry policy.
    fn request(&mut self, build: impl Fn(u32) -> Request) -> Result<Response, CtlError> {
        let start = Instant::now();
        let mut last_io: Option<io::Error> = None;
        let mut attempts = 0u32;
        for attempt in 0..self.policy.max_attempts {
            let elapsed = start.elapsed();
            if elapsed >= self.policy.deadline {
                break;
            }
            let remaining = self.policy.deadline - elapsed;
            attempts = attempt + 1;
            match self.attempt_once(&build(attempt), remaining) {
                Ok(Response::Err { code }) => return Err(CtlError::Daemon(code)),
                Ok(response) => return Ok(response),
                Err(e) => {
                    self.stream = None;
                    last_io = Some(e);
                }
            }
            self.backoff(attempt, start);
        }
        match last_io {
            Some(e) if attempts == self.policy.max_attempts => Err(CtlError::Io(e)),
            _ => Err(CtlError::DeadlineExceeded { attempts }),
        }
    }

    fn attempt_once(&mut self, request: &Request, remaining: Duration) -> io::Result<Response> {
        let drop_every = self.policy.drop_after_send_every;
        let sends = self.sends;
        let stream = self.connect(remaining)?;
        stream.set_read_timeout(Some(remaining.max(MIN_IO_BUDGET)))?;
        write_frame(stream, &request.encode())?;
        self.sends += 1;
        if let Some(n) = drop_every {
            if n > 0 && (sends + 1).is_multiple_of(n) {
                // Injected fault: the request is on the wire, but we
                // drop the connection before the response lands.
                self.stream = None;
                return Err(io::Error::new(
                    ErrorKind::ConnectionReset,
                    "injected connection drop",
                ));
            }
        }
        let stream = self.stream.as_mut().expect("still connected");
        let payload = read_frame(stream)?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// Exponential backoff with seeded jitter: half the step is fixed,
    /// half uniform random, so synchronized failures fan out. The sleep
    /// is clamped to the remaining deadline (never skipped): retrying
    /// without any pause near the deadline would hammer a struggling
    /// daemon in a tight loop, the opposite of backing off.
    fn backoff(&mut self, attempt: u32, start: Instant) {
        let exp = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.policy.max_backoff);
        let micros = exp.as_micros() as u64;
        let jittered = micros / 2 + self.rng.range_u64(0, micros / 2 + 1);
        let sleep = Duration::from_micros(jittered);
        let Some(remaining) = self.policy.deadline.checked_sub(start.elapsed()) else {
            return;
        };
        std::thread::sleep(sleep.min(remaining));
    }
}

/// Floor for connect/read timeouts — zero would mean "block forever".
const MIN_IO_BUDGET: Duration = Duration::from_millis(1);

/// A live telemetry stream for one tenant: [`TelemetryUpdate`] frames
/// pushed by the daemon on every flush epoch, read at the subscriber's
/// own pace. A subscriber that falls behind the daemon's per-subscriber
/// channel depth is shed server-side (it keeps receiving *later* epochs;
/// the skipped ones are counted in `subscriber_lagged`).
pub struct TelemetrySubscription {
    stream: TcpStream,
    reader: FrameReader,
}

impl TelemetrySubscription {
    /// Waits up to `timeout` for the next pushed update. `Ok(None)` means
    /// the wait elapsed with no epoch pushed (partial frame progress is
    /// kept for the next call); errors mean the stream is dead.
    pub fn next_update(&mut self, timeout: Duration) -> Result<Option<TelemetryUpdate>, CtlError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(remaining.max(MIN_IO_BUDGET)))
                .map_err(CtlError::Io)?;
            match self.reader.read(&mut self.stream) {
                Ok(Some(payload)) => {
                    return match Response::decode(&payload).map_err(io::Error::from)? {
                        Response::Telemetry(update) => Ok(Some(update)),
                        Response::Err { code } => Err(CtlError::Daemon(code)),
                        other => Err(CtlError::Refused(other)),
                    }
                }
                Ok(None) => continue,
                Err(e) => return Err(CtlError::Io(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let policy = RetryPolicy::default();
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut a = CtlClient::new(addr, policy, 42);
        let mut b = CtlClient::new(addr, policy, 42);
        let mut c = CtlClient::new(addr, policy, 7);
        let draw = |cl: &mut CtlClient| {
            (0..8)
                .map(|_| cl.rng.range_u64(0, 1_000_000))
                .collect::<Vec<_>>()
        };
        let da = draw(&mut a);
        assert_eq!(da, draw(&mut b), "same seed, same jitter schedule");
        assert_ne!(da, draw(&mut c), "different seed desynchronizes");
    }

    #[test]
    fn unreachable_daemon_exhausts_attempts() {
        // A port from the discard range with nothing listening; connects
        // are refused immediately, so five attempts finish fast.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
            deadline: Duration::from_secs(2),
            drop_after_send_every: None,
        };
        let mut client = CtlClient::new(addr, policy, 1);
        match client.ping() {
            Err(CtlError::Io(_)) => {}
            other => panic!("expected transport failure, got {other:?}"),
        }
    }
}
