//! Real-time scheduling theory underpinning BlueScale (DAC 2022, Section 5).
//!
//! The paper schedules memory transactions *compositionally*: each Scale
//! Element (SE) gives every local client the illusion of a dedicated Virtual
//! Element (VE) characterized by a **periodic resource interface** `(Π, Θ)` —
//! at least `Θ` transaction time units are guaranteed every `Π` units
//! (Shin & Lee 2003). This crate implements the analysis side:
//!
//! * [`task`] — periodic tasks `(T, C)`, task sets, utilization.
//! * [`demand`] — the demand bound function under EDF,
//!   `dbf(t, τᵢ) = ⌊t/Tᵢ⌋·Cᵢ`.
//! * [`supply`] — the periodic resource model and its supply bound function.
//! * [`schedulability`] — the `dbf ≤ sbf` test with the paper's Theorem 1
//!   (finite test bound β) and Theorem 2 (finite Π search range).
//! * [`interface`] — the interface-selection algorithm: minimum-bandwidth
//!   `(Π, Θ)` per VE, plus level-by-level resolution over a client tree and
//!   the root over-utilization check `Σ Θ/Π ≤ 1`.
//! * [`rational`] — exact rational utilization accumulation, so admission
//!   boundaries (`Σ C/T ≤ 1`) carry no floating-point tolerance.
//! * [`incremental`] — cached leaves→root selection that re-analyzes only
//!   the SE path a client update touches, for online admission control.
//! * [`edf`] — an EDF ready queue (the low-level nested priority queue).
//! * [`fixed_priority`] — deadline-monotonic response-time analysis on a
//!   periodic resource, for clients that schedule with fixed priorities.
//! * [`edp`] — the explicit-deadline periodic resource model (Easwaran et
//!   al.), an extension that shrinks supply blackouts and with them the
//!   compositional bandwidth overhead.
//! * [`server`] — server tasks as P-counter/B-counter pairs (the upper-level
//!   queue), exactly mirroring the hardware of the paper's Section 4.2.
//! * [`validate`] — a discrete EDF schedule simulator on the worst-case
//!   supply pattern, used to cross-check the analysis empirically.
//!
//! # Example: select a minimum-bandwidth interface
//!
//! ```
//! use bluescale_rt::task::{Task, TaskSet};
//! use bluescale_rt::interface::{select_interface, SelectionContext};
//!
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, 20, 2)?,
//!     Task::new(1, 50, 5)?,
//! ])?;
//! let ctx = SelectionContext::isolated(&tasks);
//! let iface = select_interface(&tasks, &ctx)?;
//! assert!(iface.bandwidth() >= tasks.utilization());
//! # Ok::<(), bluescale_rt::Error>(())
//! ```

#![warn(missing_docs)]

pub mod demand;
pub mod edf;
pub mod edp;
pub mod fixed_priority;
pub mod incremental;
pub mod interface;
pub mod rational;
pub mod schedulability;
pub mod server;
pub mod supply;
pub mod task;
pub mod validate;

use std::fmt;

/// Discrete model time used throughout the analysis (the paper assumes
/// integer `T`, `C`, `Π`, `Θ`).
pub type Time = u64;

/// Errors produced by the analysis APIs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A task was constructed with a zero period or zero execution time, or
    /// with `C > T` (utilization above one).
    InvalidTask {
        /// Identifier of the offending task.
        id: u32,
        /// Explanation of the violated constraint.
        reason: &'static str,
    },
    /// A task set exceeded full utilization, so no interface can serve it.
    Overutilized {
        /// Total utilization of the offending set (×1000, rounded).
        utilization_millis: u64,
    },
    /// No feasible `(Π, Θ)` interface exists within the Theorem 2 range.
    NoFeasibleInterface,
    /// Duplicate task identifiers within one task set.
    DuplicateTaskId {
        /// The repeated identifier.
        id: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidTask { id, reason } => {
                write!(f, "invalid task {id}: {reason}")
            }
            Error::Overutilized { utilization_millis } => write!(
                f,
                "task set utilization {}.{:03} exceeds 1",
                utilization_millis / 1000,
                utilization_millis % 1000
            ),
            Error::NoFeasibleInterface => {
                write!(f, "no feasible periodic resource interface exists")
            }
            Error::DuplicateTaskId { id } => {
                write!(f, "duplicate task id {id} in task set")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::InvalidTask {
            id: 3,
            reason: "period must be positive",
        };
        assert_eq!(e.to_string(), "invalid task 3: period must be positive");
        let e = Error::Overutilized {
            utilization_millis: 1250,
        };
        assert!(e.to_string().contains("1.250"));
        assert!(!Error::NoFeasibleInterface.to_string().is_empty());
        assert!(Error::DuplicateTaskId { id: 7 }.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
