//! Differential tests pinning the streaming-telemetry invariants.
//!
//! Two hard guarantees from DESIGN.md §17:
//!
//! * **Streaming never changes the simulation.** A run with a telemetry
//!   pipeline attached (JSONL file + in-process ring subscriber) must
//!   produce a byte-identical `merged_registry` JSON to the same seeded
//!   run with streaming off — on the serial harness (legacy and SoA
//!   engines) and on the sharded coordinator at 1/2/4 workers, across
//!   dense, sparse+fault and churn scenarios.
//! * **The stream is lossless.** Folding the JSONL epochs
//!   ([`fold_jsonl`]) must reconstruct the final harness and fabric
//!   registries exactly — counters by signed-delta sums, sample
//!   sequences by window concatenation, gauges and accumulator
//!   summaries by last-value-wins.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect, ShardedSystem};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::rng::SimRng;
use bluescale_telemetry::jsonl::fold_jsonl;
use bluescale_telemetry::{JsonlSink, Pipeline, RingSink, SloConfig};
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: u64 = 0x7E1E;
const HORIZON: u64 = 20_000;
const PERIOD: u64 = 1_024;

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn config_for(sets: &[TaskSet], soa: bool) -> BlueScaleConfig {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    config.soa_core = soa;
    config
}

fn build_serial(sets: &[TaskSet], soa: bool) -> System<BlueScaleInterconnect> {
    let ic = BlueScaleInterconnect::new(config_for(sets, soa), sets).expect("valid sets");
    System::new(Box::new(ic), sets)
}

fn jsonl_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "bluescale-telemetry-{tag}-{}-{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn pipeline(path: &Path) -> Pipeline {
    let mut pipe = Pipeline::new(PERIOD, SloConfig::default());
    pipe.add_sink(JsonlSink::create(path).expect("create jsonl sink"));
    let (ring, _handle) = RingSink::new(64);
    pipe.add_sink(ring);
    pipe
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    plan
}

fn churn_plan(sets: &[TaskSet]) -> ChurnPlan {
    let mut plan = ChurnPlan::new(SEED ^ 0xC482);
    plan.push(
        6_000,
        2,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
        },
    )
    .push(9_000, 9, ChurnKind::Leave)
    .push(
        13_000,
        9,
        ChurnKind::Join {
            tasks: sets[9].clone(),
        },
    );
    plan
}

/// Streaming on vs off on the serial harness: byte-identical registries,
/// and the JSONL fold must reconstruct both final registries exactly.
fn assert_serial_scenario(
    sets: &[TaskSet],
    soa: bool,
    prepare: impl Fn(&mut System<BlueScaleInterconnect>),
    label: &str,
) {
    let mut baseline = build_serial(sets, soa);
    prepare(&mut baseline);
    baseline.run(HORIZON);
    let expected = baseline.merged_registry().to_json();

    let mut streaming = build_serial(sets, soa);
    prepare(&mut streaming);
    let path = jsonl_path(label);
    streaming.attach_telemetry(pipeline(&path));
    streaming.run(HORIZON);
    streaming.finish_telemetry();
    assert!(
        streaming.telemetry_epochs() > 1,
        "{label}: the run must cross several flush boundaries"
    );
    assert_eq!(
        streaming.merged_registry().to_json(),
        expected,
        "{label}: streaming must not perturb the simulation"
    );

    let stream = std::fs::read_to_string(&path).expect("read jsonl");
    let folded = fold_jsonl(&stream).expect("stream folds");
    folded
        .matches_registry("harness", streaming.registry())
        .unwrap_or_else(|e| panic!("{label}: harness fold diverged: {e}"));
    folded
        .matches_registry("fabric", streaming.interconnect().metrics())
        .unwrap_or_else(|e| panic!("{label}: fabric fold diverged: {e}"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn dense_serial_soa_streaming_is_invisible_and_lossless() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    assert_serial_scenario(&sets, true, |_| {}, "dense-soa");
}

#[test]
fn dense_serial_legacy_streaming_is_invisible_and_lossless() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    assert_serial_scenario(&sets, false, |_| {}, "dense-legacy");
}

#[test]
fn sparse_faulted_streaming_is_invisible_and_lossless() {
    // Fast-forward jumps interleave with flush boundaries here: the
    // chunked advance clamps jumps at each boundary, which must change
    // wall-clock only, never state.
    let sets = task_sets(&sparse_config(16));
    assert_serial_scenario(
        &sets,
        true,
        |sys| sys.set_fault_plan(fault_plan()),
        "sparse-faults",
    );
}

#[test]
fn churn_streaming_is_invisible_and_lossless() {
    let sets = task_sets(&sparse_config(16));
    assert_serial_scenario(
        &sets,
        true,
        |sys| sys.set_churn_plan(churn_plan(&sets)),
        "churn",
    );
}

#[test]
fn sharded_streaming_is_invisible_and_lossless_across_worker_counts() {
    // The coordinator flushes telemetry between spans; the worker count
    // must stay a pure wall-clock knob with streaming attached, and the
    // stream must fold to the coordinator's final registries.
    let sets = task_sets(&sparse_config(16));
    let mut expected: Option<String> = None;
    for &workers in &[1usize, 2, 4] {
        let mut baseline =
            ShardedSystem::new(config_for(&sets, true), &sets, workers).expect("valid sets");
        baseline.set_fault_plan(fault_plan());
        baseline.run(HORIZON);
        let off = baseline.merged_registry().to_json();
        match &expected {
            None => expected = Some(off.clone()),
            Some(e) => assert_eq!(
                &off, e,
                "streaming-off runs must agree at {workers} workers"
            ),
        }

        let mut streaming =
            ShardedSystem::new(config_for(&sets, true), &sets, workers).expect("valid sets");
        streaming.set_fault_plan(fault_plan());
        let path = jsonl_path(&format!("shard-{workers}w"));
        streaming.attach_telemetry(pipeline(&path));
        streaming.run(HORIZON);
        streaming.finish_telemetry();
        assert!(
            streaming.telemetry_epochs() > 1,
            "sharded run must cross several flush boundaries"
        );
        assert_eq!(
            streaming.merged_registry().to_json(),
            off,
            "streaming must not perturb the sharded simulation at {workers} workers"
        );

        let stream = std::fs::read_to_string(&path).expect("read jsonl");
        let folded = fold_jsonl(&stream).expect("stream folds");
        folded
            .matches_registry("harness", streaming.registry())
            .unwrap_or_else(|e| panic!("{workers}w: harness fold diverged: {e}"));
        folded
            .matches_registry("fabric", streaming.fabric_metrics())
            .unwrap_or_else(|e| panic!("{workers}w: fabric fold diverged: {e}"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn windowed_samples_stream_losslessly_under_eviction() {
    // With a small sample window the registry evicts between flushes;
    // the fold can no longer match sequences bit-exact, but accounting
    // (folded + dropped == pushed) and the retained suffix must hold —
    // and streaming must still be invisible to the simulation.
    let sets = task_sets(&SyntheticConfig::fig6(16));
    let mut baseline = build_serial(&sets, true);
    baseline.registry_mut().set_sample_window(Some(32));
    baseline.run(HORIZON);
    let expected = baseline.merged_registry().to_json();

    let mut streaming = build_serial(&sets, true);
    streaming.registry_mut().set_sample_window(Some(32));
    let path = jsonl_path("windowed");
    streaming.attach_telemetry(pipeline(&path));
    streaming.run(HORIZON);
    streaming.finish_telemetry();
    assert_eq!(
        streaming.merged_registry().to_json(),
        expected,
        "windowed streaming must not perturb the simulation"
    );
    let stream = std::fs::read_to_string(&path).expect("read jsonl");
    let folded = fold_jsonl(&stream).expect("stream folds");
    folded
        .matches_registry("harness", streaming.registry())
        .unwrap_or_else(|e| panic!("windowed harness fold diverged: {e}"));
    let _ = std::fs::remove_file(&path);
}
