//! Fig 7: system-level case study — success ratio vs target utilization
//! for the automotive workload on 16-core and 64-core systems.

use crate::runner::{run_trial, InterconnectKind};
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::casestudy::{generate, CaseStudyConfig};

/// Configuration of one Fig 7 panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Config {
    /// Processor count (16 → Fig 7(a), 64 → Fig 7(b)); two DNN HAs are
    /// added on top, as in the paper.
    pub processors: usize,
    /// Trials per target-utilization point (the paper runs 200).
    pub trials: u64,
    /// Simulation horizon per trial, in cycles.
    pub horizon: Cycle,
    /// Target utilizations to sweep.
    pub targets: Vec<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Fig7Config {
    /// Defaults: targets 0.30–0.90 at 0.05 steps, 25 trials of 20 000
    /// cycles per point (a few minutes in release mode; the paper uses
    /// 200 trials — pass `--trials 200` for full statistics).
    pub fn new(processors: usize) -> Self {
        Self {
            processors,
            trials: 25,
            horizon: 20_000,
            targets: (0..=12).map(|i| 0.30 + 0.05 * i as f64).collect(),
            seed: 0xF177,
        }
    }
}

/// Success ratios at one target utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// Target utilization of this sweep point.
    pub target: f64,
    /// Success ratio per interconnect, in [`InterconnectKind::ALL`] order.
    pub success: Vec<f64>,
}

/// Runs one Fig 7 panel.
pub fn run(config: &Fig7Config) -> Vec<Fig7Point> {
    run_with_registry(config).0
}

/// Runs one Fig 7 panel and also returns its metrics registry:
/// Trials/Successes counters totalled over the sweep plus the per-target
/// success ratios as an observation series, keyed by
/// [`ComponentId::Series`] in [`InterconnectKind::ALL`] order.
pub fn run_with_registry(config: &Fig7Config) -> (Vec<Fig7Point>, MetricsRegistry) {
    let mut master = SimRng::seed_from(config.seed);
    let mut registry = MetricsRegistry::new();
    registry.set_gauge(ComponentId::System, "processors", config.processors as f64);
    registry.set_gauge(ComponentId::System, "horizon", config.horizon as f64);
    let points = config
        .targets
        .iter()
        .map(|&target| {
            // Per-point tallies live in their own registry so the ratio of
            // this sweep point is not polluted by earlier targets; the
            // sweep registry accumulates the totals by merging.
            let mut point = MetricsRegistry::new();
            for _ in 0..config.trials {
                let mut trial_rng = master.fork();
                let cs = CaseStudyConfig::fig7(config.processors, target);
                let sets = generate(&cs, &mut trial_rng);
                for (i, kind) in InterconnectKind::ALL.into_iter().enumerate() {
                    let series = ComponentId::Series(i as u16);
                    let m = run_trial(kind, &sets, config.horizon);
                    point.inc(series, Counter::Trials);
                    if m.success() {
                        point.inc(series, Counter::Successes);
                    }
                }
            }
            let success: Vec<f64> = (0..InterconnectKind::ALL.len())
                .map(|i| {
                    let series = ComponentId::Series(i as u16);
                    point.counter(series, Counter::Successes) as f64 / config.trials as f64
                })
                .collect();
            for (i, &ratio) in success.iter().enumerate() {
                registry.observe(
                    ComponentId::Series(i as u16),
                    SampleKind::Custom("success_ratio"),
                    ratio,
                );
            }
            registry.merge(&point);
            Fig7Point { target, success }
        })
        .collect();
    (points, registry)
}

/// Renders one panel as a markdown table (targets as rows).
pub fn render(config: &Fig7Config, points: &[Fig7Point]) -> String {
    let mut s = format!(
        "# Fig 7: {}-core case study + 2 DNN HAs ({} trials/point, {} cycles)\n\n",
        config.processors, config.trials, config.horizon
    );
    s.push_str("| Target util |");
    for k in InterconnectKind::ALL {
        s.push_str(&format!(" {} |", k.name()));
    }
    s.push('\n');
    s.push_str("|---:|");
    for _ in InterconnectKind::ALL {
        s.push_str("---:|");
    }
    s.push('\n');
    for p in points {
        s.push_str(&format!("| {:.2} |", p.target));
        for ratio in &p.success {
            s.push_str(&format!(" {ratio:.2} |"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig7Config {
        Fig7Config {
            processors: 16,
            trials: 3,
            horizon: 10_000,
            targets: vec![0.3, 0.8],
            seed: 11,
        }
    }

    #[test]
    fn one_point_per_target() {
        let pts = run(&tiny());
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.success.len() == 6));
        assert!(pts
            .iter()
            .flat_map(|p| &p.success)
            .all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn obs5_low_utilization_succeeds_high_degrades() {
        let pts = run(&Fig7Config {
            trials: 4,
            targets: vec![0.3, 0.9],
            ..tiny()
        });
        let bs = InterconnectKind::ALL
            .iter()
            .position(|k| *k == InterconnectKind::BlueScale)
            .expect("present");
        // At 30% target everything should mostly succeed for BlueScale.
        assert!(
            pts[0].success[bs] >= 0.5,
            "BlueScale at 0.3: {}",
            pts[0].success[bs]
        );
        // BlueScale is at least as good as BlueTree everywhere.
        let bt = InterconnectKind::ALL
            .iter()
            .position(|k| *k == InterconnectKind::BlueTree)
            .expect("present");
        for p in &pts {
            assert!(
                p.success[bs] + 1e-9 >= p.success[bt],
                "target {}: BlueScale {} vs BlueTree {}",
                p.target,
                p.success[bs],
                p.success[bt]
            );
        }
    }

    #[test]
    fn registry_totals_cover_the_sweep() {
        let cfg = tiny();
        let (points, registry) = run_with_registry(&cfg);
        let expected_trials = cfg.trials * cfg.targets.len() as u64;
        for i in 0..InterconnectKind::ALL.len() {
            let series = ComponentId::Series(i as u16);
            assert_eq!(registry.counter(series, Counter::Trials), expected_trials);
            assert!(
                registry.counter(series, Counter::Successes) <= expected_trials,
                "successes bounded by trials"
            );
            let ratios = registry.stat(series, SampleKind::Custom("success_ratio"));
            assert_eq!(ratios.count(), cfg.targets.len() as u64);
            // The sweep registry's ratio sequence is exactly the points'.
            let mean: f64 =
                points.iter().map(|p| p.success[i]).sum::<f64>() / cfg.targets.len() as f64;
            assert!((ratios.mean() - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn render_has_header_and_rows() {
        let cfg = tiny();
        let pts = run(&cfg);
        let text = render(&cfg, &pts);
        assert!(text.contains("BlueScale"));
        assert!(text.contains("0.30"));
    }
}
