//! Incremental interface re-selection over a client quadtree.
//!
//! The paper resolves interface selection level-by-level from the leaves
//! to the root (Section 5). Compositionality makes *re*-selection cheap:
//! when one leaf client's task set changes, only the Scale Elements on the
//! path from that client's leaf SE to the root see different inputs —
//! every other subtree's selection problem is untouched, so its cached
//! answer stays valid. [`IncrementalSelection`] maintains exactly that
//! cache: per-SE interface tables, invalidated path-wise on
//! [`update_client`](IncrementalSelection::update_client), with the exact
//! rational root check ([`interface::root_admissible`]) deciding
//! admission.
//!
//! A full recompute ([`full_selection`]) re-runs
//! [`select_se_interfaces_with_divisor`] over every SE; the incremental
//! path is differential-tested to produce bit-identical interfaces, and
//! `bench::churn` measures the wall-clock gap per tree depth.
//!
//! # Example
//!
//! ```
//! use bluescale_rt::incremental::IncrementalSelection;
//! use bluescale_rt::task::{Task, TaskSet};
//!
//! let sets = vec![TaskSet::new(vec![Task::new(0, 400, 5)?])?; 16];
//! let mut inc = IncrementalSelection::new(sets, 4, 1)?;
//! // A feasible update is admitted and re-analyzes only the leaf→root path.
//! let admitted = inc.admit_update(3, TaskSet::new(vec![Task::new(0, 200, 5)?])?)?;
//! assert!(admitted);
//! assert_eq!(inc.ses_analyzed(), inc.levels() as u64);
//! # Ok::<(), bluescale_rt::Error>(())
//! ```

use crate::interface::{self, select_se_interfaces_with_divisor};
use crate::supply::PeriodicResource;
use crate::task::{Task, TaskSet};
use crate::{Error, Time};

/// Per-SE interface tables, `[depth][order][port]`, depth 0 = root. `None`
/// marks an idle port (no server task needed).
pub type InterfaceTree = Vec<Vec<Vec<Option<PeriodicResource>>>>;

/// The smallest depth `d ≥ 1` with `branch^d ≥ num_clients` (mirrors the
/// topology layer's `levels()`).
fn levels_for(num_clients: usize, branch: usize) -> usize {
    let mut d = 1;
    let mut capacity = branch;
    while capacity < num_clients {
        capacity *= branch;
        d += 1;
    }
    d
}

/// Converts one child SE's selected interfaces into the server task set its
/// parent port schedules (`Tᵢ = Πᵢ, Cᵢ = Θᵢ`, task ids positional by child
/// port — the same convention the interconnect's selector tables use).
///
/// Compositional inflation can push the child's interface bandwidths past
/// one full port even when its *input* demand fits; that surfaces here as
/// [`Error::Overutilized`], which callers treat like any other selection
/// failure on the parent.
fn child_task_set(interfaces: &[Option<PeriodicResource>]) -> Result<TaskSet, Error> {
    let tasks: Vec<Task> = interfaces
        .iter()
        .enumerate()
        .filter_map(|(port, r)| r.map(|r| Task::new(port as u32, r.period(), r.budget())))
        .collect::<Result<_, _>>()?;
    TaskSet::new(tasks)
}

/// The per-port input task sets of SE `(depth, order)`: leaf SEs read the
/// client sets directly, inner SEs read their children's cached interfaces.
///
/// # Errors
///
/// Propagates [`Error::Overutilized`] when a child's selected interfaces
/// overrun one full port (see [`child_task_set`]).
fn se_inputs(
    client_sets: &[TaskSet],
    interfaces: &InterfaceTree,
    levels: usize,
    branch: usize,
    depth: usize,
    order: usize,
) -> Result<Vec<TaskSet>, Error> {
    (0..branch)
        .map(|port| {
            if depth == levels - 1 {
                Ok(client_sets
                    .get(order * branch + port)
                    .cloned()
                    .unwrap_or_else(TaskSet::empty))
            } else {
                child_task_set(&interfaces[depth + 1][order * branch + port])
            }
        })
        .collect()
}

/// Full leaves→root interface selection over a `branch`-ary client tree —
/// the non-incremental reference the cache is differential-tested against.
///
/// # Errors
///
/// Propagates the first selection failure in leaves→root, ascending-order
/// traversal (the same order [`IncrementalSelection::new`] analyzes).
pub fn full_selection(
    client_sets: &[TaskSet],
    branch: usize,
    divisor: Time,
) -> Result<InterfaceTree, Error> {
    assert!(branch >= 2, "branch factor must be at least 2");
    assert!(!client_sets.is_empty(), "at least one client required");
    let levels = levels_for(client_sets.len(), branch);
    let mut interfaces: InterfaceTree = (0..levels)
        .map(|d| vec![Vec::new(); branch.pow(d as u32)])
        .collect();
    for depth in (0..levels).rev() {
        for order in 0..branch.pow(depth as u32) {
            let inputs = se_inputs(client_sets, &interfaces, levels, branch, depth, order)?;
            interfaces[depth][order] = select_se_interfaces_with_divisor(&inputs, divisor)?;
        }
    }
    Ok(interfaces)
}

/// A cached leaves→root interface selection that re-analyzes only the SEs
/// whose inputs a client update can change: the path from the client's
/// leaf SE to the root. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalSelection {
    branch: usize,
    divisor: Time,
    levels: usize,
    client_sets: Vec<TaskSet>,
    interfaces: InterfaceTree,
    ses_analyzed: u64,
}

impl IncrementalSelection {
    /// Builds the cache with one full leaves→root selection.
    ///
    /// # Errors
    ///
    /// Propagates the first selection failure (the initial workload must be
    /// feasible before churn can be admitted against it).
    ///
    /// # Panics
    ///
    /// Panics if `branch < 2` or `client_sets` is empty.
    pub fn new(client_sets: Vec<TaskSet>, branch: usize, divisor: Time) -> Result<Self, Error> {
        let interfaces = full_selection(&client_sets, branch, divisor)?;
        let levels = levels_for(client_sets.len(), branch);
        Ok(Self {
            branch,
            divisor,
            levels,
            client_sets,
            interfaces,
            ses_analyzed: 0,
        })
    }

    /// Tree depth (number of SE levels).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of client ports (leaves).
    pub fn num_clients(&self) -> usize {
        self.client_sets.len()
    }

    /// The cached per-SE interfaces, `[depth][order][port]`.
    pub fn interfaces(&self) -> &InterfaceTree {
        &self.interfaces
    }

    /// The current per-client task sets.
    pub fn client_sets(&self) -> &[TaskSet] {
        &self.client_sets
    }

    /// SEs re-analyzed by updates since construction (or the last
    /// [`reset_analysis_count`](Self::reset_analysis_count)) — the cache's
    /// work metric. A path-wise update adds [`levels`](Self::levels); a
    /// full recompute would add the whole tree.
    pub fn ses_analyzed(&self) -> u64 {
        self.ses_analyzed
    }

    /// Resets the [`ses_analyzed`](Self::ses_analyzed) statistic.
    pub fn reset_analysis_count(&mut self) {
        self.ses_analyzed = 0;
    }

    /// Exact root admission (`Σ Θ/Π ≤ 1` in rational arithmetic) over the
    /// cached root interfaces.
    pub fn root_admissible(&self) -> bool {
        let root: Vec<PeriodicResource> = self.interfaces[0][0].iter().flatten().copied().collect();
        interface::root_admissible(&root)
    }

    /// The leaf→root SE path touched by `client`, leaf first.
    fn path(&self, client: usize) -> Vec<(usize, usize)> {
        let mut order = client / self.branch;
        let mut path = Vec::with_capacity(self.levels);
        for depth in (0..self.levels).rev() {
            path.push((depth, order));
            order /= self.branch;
        }
        path
    }

    /// Replaces `client`'s task set and re-selects interfaces along its
    /// leaf→root path only; every other SE keeps its cached answer. On a
    /// selection failure the previous task set and cached interfaces are
    /// restored bit-identically before the error returns.
    ///
    /// # Errors
    ///
    /// Propagates the first selection failure along the path.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn update_client(&mut self, client: usize, tasks: TaskSet) -> Result<(), Error> {
        assert!(
            client < self.client_sets.len(),
            "client {client} out of range"
        );
        let path = self.path(client);
        let saved: Vec<Vec<Option<PeriodicResource>>> = path
            .iter()
            .map(|&(d, o)| self.interfaces[d][o].clone())
            .collect();
        let prev_set = std::mem::replace(&mut self.client_sets[client], tasks);
        for &(depth, order) in &path {
            self.ses_analyzed += 1;
            let selected = se_inputs(
                &self.client_sets,
                &self.interfaces,
                self.levels,
                self.branch,
                depth,
                order,
            )
            .and_then(|inputs| select_se_interfaces_with_divisor(&inputs, self.divisor));
            match selected {
                Ok(selected) => self.interfaces[depth][order] = selected,
                Err(e) => {
                    for (&(d, o), old) in path.iter().zip(saved) {
                        self.interfaces[d][o] = old;
                    }
                    self.client_sets[client] = prev_set;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Admission-tests a client update: the path is re-selected and the
    /// update commits only if every SE on it has a feasible selection *and*
    /// the root stays admissible under the exact rational check. A rejected
    /// update (either failure mode) restores the cache bit-identically and
    /// reports `Ok(false)` / the selection error.
    ///
    /// # Errors
    ///
    /// Propagates the first selection failure along the path (state
    /// restored).
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn admit_update(&mut self, client: usize, tasks: TaskSet) -> Result<bool, Error> {
        let path = self.path(client);
        let saved: Vec<Vec<Option<PeriodicResource>>> = path
            .iter()
            .map(|&(d, o)| self.interfaces[d][o].clone())
            .collect();
        let prev_set = self.client_sets[client].clone();
        self.update_client(client, tasks)?;
        if self.root_admissible() {
            return Ok(true);
        }
        for (&(d, o), old) in path.iter().zip(saved) {
            self.interfaces[d][o] = old;
        }
        self.client_sets[client] = prev_set;
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    /// `n` single-task clients whose combined utilization stays near 0.1
    /// regardless of `n`, so every tree depth admits them with headroom.
    fn light_sets(n: usize) -> Vec<TaskSet> {
        let base = 25 * n as u64;
        (0..n)
            .map(|i| set(&[(base + 10 * (i as u64 % 7), 2 + i as u64 % 3)]))
            .collect()
    }

    #[test]
    fn initial_cache_matches_full_selection() {
        for n in [1, 4, 5, 16, 17, 64] {
            let sets = light_sets(n);
            let inc = IncrementalSelection::new(sets.clone(), 4, 1).unwrap();
            assert_eq!(
                inc.interfaces(),
                &full_selection(&sets, 4, 1).unwrap(),
                "initial cache diverged for {n} clients"
            );
        }
    }

    #[test]
    fn path_updates_match_full_recompute_bit_identically() {
        // A deterministic churn sequence over a depth-3 tree: after every
        // committed update the cache must equal a from-scratch selection.
        let mut sets = light_sets(64);
        let mut inc = IncrementalSelection::new(sets.clone(), 4, 2).unwrap();
        let churn: &[(usize, &[(u64, u64)])] = &[
            (37, &[(500, 5), (2000, 10)]),
            (0, &[(400, 4)]),
            (63, &[]),
            (17, &[(900, 9)]),
            (37, &[(600, 3)]),
        ];
        for &(client, specs) in churn {
            let tasks = if specs.is_empty() {
                TaskSet::empty()
            } else {
                set(specs)
            };
            inc.update_client(client, tasks.clone()).unwrap();
            sets[client] = tasks;
            assert_eq!(
                inc.interfaces(),
                &full_selection(&sets, 4, 2).unwrap(),
                "cache diverged after updating client {client}"
            );
        }
    }

    #[test]
    fn updates_analyze_only_the_path() {
        let mut inc = IncrementalSelection::new(light_sets(64), 4, 1).unwrap();
        assert_eq!(inc.levels(), 3);
        inc.update_client(37, set(&[(70, 7)])).unwrap();
        assert_eq!(inc.ses_analyzed(), 3, "one SE per level, not all 21");
        inc.reset_analysis_count();
        assert_eq!(inc.ses_analyzed(), 0);
    }

    #[test]
    fn selection_failure_restores_state_bit_identically() {
        let mut inc = IncrementalSelection::new(light_sets(16), 4, 1).unwrap();
        let before = inc.clone();
        // A client demanding an entire SE: the leaf's exact capacity check
        // fails with Overutilized and the cache must roll back exactly.
        let err = inc.update_client(5, set(&[(10, 10)])).unwrap_err();
        assert!(matches!(err, Error::Overutilized { .. }));
        assert_eq!(inc.interfaces(), before.interfaces());
        assert_eq!(inc.client_sets(), before.client_sets());
    }

    #[test]
    fn admit_update_rejects_inadmissible_root_and_rolls_back() {
        // Two (4,2) clients have combined utilization exactly 1, so every
        // per-SE capacity check passes — but no interface for (4,2) can
        // reach bandwidth 0.5 (compositional inflation), so the selected
        // root interfaces sum above 1 and only the exact Σ Θ/Π ≤ 1 check
        // catches it.
        let mut sets = vec![TaskSet::empty(); 4];
        sets[0] = set(&[(4, 2)]);
        let mut inc = IncrementalSelection::new(sets, 4, 1).unwrap();
        assert!(inc.root_admissible());
        let before = inc.clone();
        let admitted = inc.admit_update(1, set(&[(4, 2)])).unwrap();
        assert!(!admitted, "root interface inflation must be rejected");
        assert_eq!(inc.interfaces(), before.interfaces());
        assert_eq!(inc.client_sets(), before.client_sets());
        assert_eq!(
            inc.ses_analyzed(),
            before.ses_analyzed() + inc.levels() as u64,
            "the rejected probe still walked the path"
        );
        // A light tenant in the same slot is admitted.
        assert!(inc.admit_update(1, set(&[(100, 1)])).unwrap());
    }

    #[test]
    fn admitted_join_and_leave_round_trip() {
        let sets = light_sets(16);
        let mut inc = IncrementalSelection::new(sets.clone(), 4, 1).unwrap();
        let before = inc.interfaces().clone();
        assert!(inc.admit_update(9, set(&[(30, 3)])).unwrap());
        assert!(inc.admit_update(9, sets[9].clone()).unwrap());
        assert_eq!(
            inc.interfaces(),
            &before,
            "leave back to the original set restores the original selection"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_out_of_range_client() {
        let mut inc = IncrementalSelection::new(light_sets(4), 4, 1).unwrap();
        let _ = inc.update_client(4, TaskSet::empty());
    }
}
