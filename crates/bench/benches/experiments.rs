//! Criterion wrappers over the table/figure generators themselves, so
//! `cargo bench` exercises every experiment end-to-end (at reduced trial
//! counts — the binaries produce the full tables).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bluescale_bench::{fig5, fig6, fig7, table1};

fn bench_table1(c: &mut Criterion) {
    c.bench_function("experiment/table1", |b| b.iter(|| black_box(table1::rows())));
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("experiment/fig5_sweep", |b| b.iter(|| black_box(fig5::sweep())));
}

fn bench_fig6_panel(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    let config = fig6::Fig6Config {
        clients: 16,
        trials: 2,
        horizon: 5_000,
        seed: 1,
        phased: false,
    };
    group.bench_function("fig6_16clients_2trials", |b| {
        b.iter(|| black_box(fig6::run(&config)))
    });
    group.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    let config = fig7::Fig7Config {
        processors: 16,
        trials: 2,
        horizon: 5_000,
        targets: vec![0.5],
        seed: 1,
    };
    group.bench_function("fig7_16cores_1point_2trials", |b| {
        b.iter(|| black_box(fig7::run(&config)))
    });
    group.finish();
}

criterion_group!(benches, bench_table1, bench_fig5, bench_fig6_panel, bench_fig7_point);
criterion_main!(benches);
