//! Benchmarks the interface-selection fast path against the seed
//! implementation and writes `results/BENCH_interface_selection.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin selection_bench -- [--clients 64] [--workloads N] [--seed N] [--out path]`

use bluescale_bench::interface_selection::{render_json, run, SelectionBenchConfig};
use bluescale_bench::{arg_u64, arg_usize, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = SelectionBenchConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.workloads = arg_u64(&args, "--workloads", config.workloads);
    config.seed = arg_u64(&args, "--seed", config.seed);
    // The selection context requires a positive divisor; clamp typos.
    config.divisor = arg_u64(&args, "--divisor", config.divisor).max(1);

    let result = run(&config);
    println!(
        "interface selection: {} clients × {} workloads",
        config.clients, config.workloads
    );
    println!("  seed (exhaustive)   {:>12} ns", result.seed_ns);
    println!(
        "  tuned (serial)      {:>12} ns   {:.2}× vs seed",
        result.tuned_ns,
        result.tuned_speedup()
    );
    println!(
        "  tuned ({} threads)   {:>12} ns   {:.2}× vs seed",
        result.threads,
        result.parallel_ns,
        result.parallel_speedup()
    );

    let json = render_json(&[result]);
    let out = arg_value(&args, "--out")
        .unwrap_or_else(|| "results/BENCH_interface_selection.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
