//! Workload utility: generate, save and replay experimental workloads.
//!
//! ```text
//! # Generate a Fig-6-style workload and save it:
//! cargo run -p bluescale-bench --bin workload -- generate \
//!     --kind fig6 --clients 16 --seed 42 --out trial.bsw
//!
//! # Generate a case-study workload:
//! cargo run -p bluescale-bench --bin workload -- generate \
//!     --kind casestudy --clients 16 --target 0.6 --seed 7 --out cs.bsw
//!
//! # Replay a saved workload on every interconnect:
//! cargo run --release -p bluescale-bench --bin workload -- run \
//!     --file trial.bsw --horizon 20000
//! ```

use bluescale_bench::runner::{run_trial, InterconnectKind};
use bluescale_bench::{arg_u64, arg_usize, arg_value};
use bluescale_sim::rng::SimRng;
use bluescale_workload::casestudy::{generate as gen_cs, CaseStudyConfig};
use bluescale_workload::file;
use bluescale_workload::synthetic::{generate as gen_syn, SyntheticConfig};
use bluescale_workload::total_utilization;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("generate") => generate(&args),
        Some("run") => run(&args),
        _ => {
            eprintln!("usage: workload <generate|run> [options]");
            eprintln!(
                "  generate --kind <fig6|casestudy> --clients N [--target U] [--seed N] --out FILE"
            );
            eprintln!("  run --file FILE [--horizon N]");
            std::process::exit(2);
        }
    }
}

fn generate(args: &[String]) {
    let kind = arg_value(args, "--kind").unwrap_or_else(|| "fig6".to_owned());
    let clients = arg_usize(args, "--clients", 16);
    let seed = arg_u64(args, "--seed", 1);
    let out = arg_value(args, "--out").unwrap_or_else(|| "workload.bsw".to_owned());
    let mut rng = SimRng::seed_from(seed);
    let sets = match kind.as_str() {
        "fig6" => gen_syn(&SyntheticConfig::fig6(clients), &mut rng),
        "casestudy" => {
            let target = arg_value(args, "--target")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0.6);
            gen_cs(&CaseStudyConfig::fig7(clients, target), &mut rng)
        }
        other => {
            eprintln!("unknown workload kind `{other}` (use fig6 or casestudy)");
            std::process::exit(2);
        }
    };
    if let Err(e) = file::save(&out, &sets) {
        eprintln!("failed to save {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "saved {} clients, total utilization {:.3} → {}",
        sets.len(),
        total_utilization(&sets),
        out
    );
}

fn run(args: &[String]) {
    let path = arg_value(args, "--file").unwrap_or_else(|| {
        eprintln!("run requires --file FILE");
        std::process::exit(2);
    });
    let horizon = arg_u64(args, "--horizon", 20_000);
    let sets = match file::load(&path) {
        Ok(sets) => sets,
        Err(e) => {
            eprintln!("failed to load {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "replaying {path}: {} clients, total utilization {:.3}, {horizon} cycles\n",
        sets.len(),
        total_utilization(&sets)
    );
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>12}",
        "interconnect", "issued", "missed", "miss ratio", "mean latency"
    );
    for kind in InterconnectKind::ALL {
        let m = run_trial(kind, &sets, horizon);
        println!(
            "{:<16} {:>8} {:>8} {:>9.2}% {:>9.1} cy",
            kind.name(),
            m.issued(),
            m.missed(),
            100.0 * m.miss_ratio(),
            m.mean_latency()
        );
    }
}
