//! The interface-selection algorithm (paper, Section 5).
//!
//! For each Virtual Element `X` the interface selector picks the pair
//! `(Π_X, Θ_X)` that minimizes bandwidth `Θ_X/Π_X` while keeping the tasks
//! of `X` schedulable:
//!
//! 1. **Theorem 2** bounds the feasible periods:
//!    `Π_X ≤ min_{τᵢ∈T_X} Tᵢ / (2(U_{ℓ+2} − U_X))`, where `U_{ℓ+2}` is the
//!    total utilization of *all* tasks at the level (across sibling VEs).
//! 2. For each candidate `Π`, schedulability is monotone in `Θ`, so the
//!    minimum schedulable budget is found by **binary search**.
//! 3. The `(Π, Θ)` pair with the smallest bandwidth wins (ties broken by
//!    the smaller period, which shortens worst-case blackouts).
//!
//! Resolving the problem level-by-level from the leaves to the root turns
//! each level's interfaces into the next level's server *tasks*
//! (`T = Π, C = Θ`); the system is schedulable iff the root is not
//! over-utilized (`Σ Θ/Π ≤ 1`).

use crate::schedulability::is_schedulable;
use crate::supply::PeriodicResource;
use crate::task::{Task, TaskSet};
use crate::{Error, Time};

/// Hard cap on the number of candidate periods enumerated per VE; keeps
/// selection O(cap · log Π · test) even when Theorem 2 allows a huge range.
pub const MAX_PERIOD_CANDIDATES: Time = 4096;

/// Context for one interface-selection problem: how much utilization the
/// *whole level* carries (Theorem 2 needs `U_{ℓ+2}`, the sum over all
/// sibling VEs sharing the SE, not just the VE being sized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionContext {
    level_utilization: f64,
    period_divisor: Time,
}

impl SelectionContext {
    /// Context where the VE's tasks are the only tasks at the level
    /// (`U_{ℓ+2} = U_X`) — used when sizing a VE in isolation.
    pub fn isolated(set: &TaskSet) -> Self {
        Self {
            level_utilization: set.utilization(),
            period_divisor: 1,
        }
    }

    /// Context with an explicit level utilization `U_{ℓ+2}`.
    ///
    /// # Panics
    ///
    /// Panics if `level_utilization` is negative or not finite.
    pub fn shared(level_utilization: f64) -> Self {
        assert!(
            level_utilization.is_finite() && level_utilization >= 0.0,
            "level utilization must be a non-negative finite number"
        );
        Self {
            level_utilization,
            period_divisor: 1,
        }
    }

    /// Additionally caps candidate periods at `min_deadline / divisor`:
    /// finer-grained interfaces shorten worst-case blackouts (`2(Π−Θ)`),
    /// which reduces both the bandwidth inflation of the minimized
    /// interface and the per-stage pipeline delay a request can suffer.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn with_period_divisor(mut self, divisor: Time) -> Self {
        assert!(divisor > 0, "period divisor must be positive");
        self.period_divisor = divisor;
        self
    }

    /// The level utilization `U_{ℓ+2}` carried by this context.
    pub fn level_utilization(&self) -> f64 {
        self.level_utilization
    }

    /// The granularity divisor (1 = the paper's bare Theorem 2 bound).
    pub fn period_divisor(&self) -> Time {
        self.period_divisor
    }
}

/// The Theorem 2 upper bound on feasible periods for `set` in `ctx`,
/// clamped to at least 1 and at most [`MAX_PERIOD_CANDIDATES`].
///
/// For constrained-deadline sets the smallest *deadline* replaces the
/// smallest period (the VE's worst-case blackout must fit before the
/// earliest deadline). When the rest of the level carries no utilization
/// (`U_{ℓ+2} = U_X`) the theorem imposes no bound; the smallest deadline
/// is used instead (any larger `Π` only lengthens blackouts without saving
/// bandwidth).
pub fn max_feasible_period(set: &TaskSet, ctx: &SelectionContext) -> Time {
    let Some(min_t) = set.min_deadline() else {
        return 1;
    };
    let others = (ctx.level_utilization - set.utilization()).max(0.0);
    let bound = if others > 1e-12 {
        let raw = min_t as f64 / (2.0 * others);
        raw.floor().max(1.0) as Time
    } else {
        min_t
    };
    let granularity_cap = (min_t / ctx.period_divisor).max(1);
    bound.min(granularity_cap).clamp(1, MAX_PERIOD_CANDIDATES)
}

/// Minimum budget `Θ` that makes `set` schedulable on period `period`, found
/// by binary search (schedulability is monotone in `Θ`); `None` if even the
/// dedicated budget `Θ = Π` fails.
pub fn min_budget_for_period(set: &TaskSet, period: Time) -> Option<Time> {
    debug_assert!(period > 0);
    let full = PeriodicResource::new(period, period).expect("Θ=Π is always valid");
    if !is_schedulable(set, &full) {
        return None;
    }
    // Lower bound: Θ ≥ ⌈U·Π⌉ and Θ ≥ 1.
    let mut lo = ((set.utilization() * period as f64).ceil() as Time).max(1);
    let mut hi = period;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let r = PeriodicResource::new(period, mid).expect("1 ≤ mid ≤ Π");
        if is_schedulable(set, &r) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Selects the minimum-bandwidth periodic resource interface `(Π, Θ)` for a
/// VE running `set`, given the level context `ctx` (the paper's interface
/// selection problem at one level).
///
/// # Errors
///
/// Returns [`Error::NoFeasibleInterface`] if `set` is empty (a VE with no
/// tasks needs no interface) or if no `(Π, Θ)` within the Theorem 2 range
/// schedules the set.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::interface::{select_interface, SelectionContext};
///
/// let set = TaskSet::new(vec![Task::new(0, 40, 4)?, Task::new(1, 60, 6)?])?;
/// let iface = select_interface(&set, &SelectionContext::isolated(&set))?;
/// // Bandwidth is at least the utilization but far below a dedicated link.
/// assert!(iface.bandwidth() >= set.utilization());
/// assert!(iface.bandwidth() < 1.0);
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn select_interface(
    set: &TaskSet,
    ctx: &SelectionContext,
) -> Result<PeriodicResource, Error> {
    if set.is_empty() {
        return Err(Error::NoFeasibleInterface);
    }
    let max_period = max_feasible_period(set, ctx);
    let mut best: Option<PeriodicResource> = None;
    for period in 1..=max_period {
        let Some(budget) = min_budget_for_period(set, period) else {
            continue;
        };
        let candidate = PeriodicResource::new(period, budget).expect("budget ≤ period");
        best = match best {
            None => Some(candidate),
            Some(b) if candidate.bandwidth_lt(&b) => Some(candidate),
            Some(b) => Some(b),
        };
    }
    best.ok_or(Error::NoFeasibleInterface)
}

/// Converts the selected interfaces of one level into the server *tasks*
/// seen by the level above (`Tᵢ = Πᵢ, Cᵢ = Θᵢ`; paper Section 5, footnote 1).
///
/// Task ids are assigned positionally (`0..n`).
///
/// # Errors
///
/// Propagates [`Error::Overutilized`] if the combined server tasks exceed
/// full utilization — exactly the condition under which the upper level can
/// never be schedulable.
pub fn server_tasks(interfaces: &[PeriodicResource]) -> Result<TaskSet, Error> {
    let tasks = interfaces
        .iter()
        .enumerate()
        .map(|(i, r)| Task::new(i as u32, r.period(), r.budget()))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::new(tasks)
}

/// Sizes the VEs of a single SE: one interface per non-empty local client
/// task set, all sharing the SE's capacity (Theorem 2 uses the *combined*
/// utilization of the four clients).
///
/// Returns one `Option<PeriodicResource>` per input set, `None` for empty
/// client task sets (idle ports need no server task).
///
/// # Errors
///
/// Returns [`Error::Overutilized`] if the clients' combined utilization
/// exceeds 1, or [`Error::NoFeasibleInterface`] if any non-empty client
/// cannot be served.
pub fn select_se_interfaces(
    client_sets: &[TaskSet],
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    select_se_interfaces_with_divisor(client_sets, 1)
}

/// Like [`select_se_interfaces`] with a granularity cap: candidate periods
/// are additionally bounded by `min_deadline / divisor` per client (see
/// [`SelectionContext::with_period_divisor`]).
///
/// # Errors
///
/// Same as [`select_se_interfaces`].
pub fn select_se_interfaces_with_divisor(
    client_sets: &[TaskSet],
    divisor: Time,
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    let total: f64 = client_sets.iter().map(TaskSet::utilization).sum();
    if total > 1.0 + 1e-9 {
        return Err(Error::Overutilized {
            utilization_millis: (total * 1000.0).round() as u64,
        });
    }
    let ctx = SelectionContext::shared(total).with_period_divisor(divisor);
    client_sets
        .iter()
        .map(|set| {
            if set.is_empty() {
                Ok(None)
            } else {
                select_interface(set, &ctx).map(Some)
            }
        })
        .collect()
}

/// Root admission check (paper, end of Section 5): the level-0 resource
/// (the memory controller) must not be over-utilized by the level-1 server
/// tasks, i.e. `Σ Θ_X/Π_X ≤ 1`.
pub fn root_admissible(interfaces: &[PeriodicResource]) -> bool {
    // Exact rational sum: Σ Θᵢ/Πᵢ ≤ 1  ⇔  Σ (Θᵢ · Π_others) ≤ Π_product,
    // but products overflow; use f64 with a tolerance consistent with the
    // rest of the analysis.
    interfaces.iter().map(PeriodicResource::bandwidth).sum::<f64>() <= 1.0 + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn min_budget_monotone_sanity() {
        let s = set(&[(20, 2), (50, 5)]);
        let b = min_budget_for_period(&s, 5).expect("feasible");
        // The found budget schedules; one less does not.
        assert!(is_schedulable(
            &s,
            &PeriodicResource::new(5, b).unwrap()
        ));
        if b > 1 {
            assert!(!is_schedulable(
                &s,
                &PeriodicResource::new(5, b - 1).unwrap()
            ));
        }
    }

    #[test]
    fn min_budget_none_when_infeasible_period() {
        // Deadline 4 but the resource period is 16: even a dedicated budget
        // cannot help? Θ=Π means supply = t, which schedules U<=1. So a
        // feasible answer exists for any period; check it is returned.
        let s = set(&[(4, 1)]);
        assert!(min_budget_for_period(&s, 16).is_some());
    }

    #[test]
    fn select_interface_minimizes_bandwidth() {
        let s = set(&[(20, 2), (50, 5)]); // U = 0.2
        let iface = select_interface(&s, &SelectionContext::isolated(&s)).unwrap();
        assert!(iface.bandwidth() >= s.utilization() - 1e-12);
        // Must beat the trivial dedicated allocation by a wide margin.
        assert!(iface.bandwidth() < 0.9, "bandwidth {}", iface.bandwidth());
        // And the chosen pair indeed schedules the set.
        assert!(is_schedulable(&s, &iface));
    }

    #[test]
    fn select_interface_exhaustive_cross_check() {
        // Verify minimality against exhaustive enumeration on a small case.
        let s = set(&[(12, 3)]);
        let ctx = SelectionContext::isolated(&s);
        let chosen = select_interface(&s, &ctx).unwrap();
        let max_p = max_feasible_period(&s, &ctx);
        for p in 1..=max_p {
            for b in 1..=p {
                let r = PeriodicResource::new(p, b).unwrap();
                if is_schedulable(&s, &r) {
                    assert!(
                        !r.bandwidth_lt(&chosen),
                        "found better interface {r:?} than chosen {chosen:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_interface_empty_set_errors() {
        let e = select_interface(
            &TaskSet::empty(),
            &SelectionContext::shared(0.0),
        );
        assert_eq!(e.unwrap_err(), Error::NoFeasibleInterface);
    }

    #[test]
    fn theorem2_bound_shrinks_with_contention() {
        let s = set(&[(40, 4)]); // U = 0.1, min_T = 40
        let lonely = max_feasible_period(&s, &SelectionContext::isolated(&s));
        // Siblings carrying 0.6 utilization: Π ≤ 40 / (2·0.6) = 33.
        let crowded = max_feasible_period(&s, &SelectionContext::shared(0.7));
        assert_eq!(lonely, 40);
        assert_eq!(crowded, 33);
    }

    #[test]
    fn server_tasks_mirror_interfaces() {
        let ifaces = [
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(8, 2).unwrap(),
        ];
        let st = server_tasks(&ifaces).unwrap();
        assert_eq!(st.len(), 2);
        assert_eq!(st.tasks()[0].period(), 10);
        assert_eq!(st.tasks()[0].wcet(), 3);
        assert_eq!(st.tasks()[1].period(), 8);
        assert_eq!(st.tasks()[1].wcet(), 2);
    }

    #[test]
    fn se_interfaces_skip_empty_clients() {
        let sets = vec![
            set(&[(40, 4)]),
            TaskSet::empty(),
            set(&[(60, 6)]),
            TaskSet::empty(),
        ];
        let ifaces = select_se_interfaces(&sets).unwrap();
        assert!(ifaces[0].is_some());
        assert!(ifaces[1].is_none());
        assert!(ifaces[2].is_some());
        assert!(ifaces[3].is_none());
    }

    #[test]
    fn se_interfaces_reject_overutilized_clients() {
        let sets = vec![set(&[(10, 6)]), set(&[(10, 6)])];
        assert!(matches!(
            select_se_interfaces(&sets),
            Err(Error::Overutilized { .. })
        ));
    }

    #[test]
    fn root_admission() {
        let ok = [
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(10, 4).unwrap(),
        ];
        assert!(root_admissible(&ok));
        let too_much = [
            PeriodicResource::new(10, 6).unwrap(),
            PeriodicResource::new(10, 6).unwrap(),
        ];
        assert!(!root_admissible(&too_much));
        assert!(root_admissible(&[]));
    }

    #[test]
    fn two_level_composition_is_consistent() {
        // Four leaf clients -> interfaces -> server tasks -> parent
        // interface; every stage must stay schedulable and bounded.
        let clients = vec![
            set(&[(100, 5)]),
            set(&[(80, 4)]),
            set(&[(120, 6)]),
            set(&[(90, 3)]),
        ];
        let ifaces: Vec<PeriodicResource> = select_se_interfaces(&clients)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(ifaces.len(), 4);
        let servers = server_tasks(&ifaces).unwrap();
        let parent =
            select_interface(&servers, &SelectionContext::isolated(&servers)).unwrap();
        assert!(parent.bandwidth() >= servers.utilization() - 1e-12);
        assert!(is_schedulable(&servers, &parent));
    }
}
