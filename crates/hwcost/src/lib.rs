//! Analytic hardware cost model — the reproduction's substitute for Vivado
//! synthesis on the Xilinx VC707 (see DESIGN.md §4).
//!
//! The model is **anchored** to the paper's own Table 1 (resource usage of
//! every element at 16 clients) and **extrapolated** structurally:
//!
//! * Distributed trees (BlueTree, BlueTree-Smooth, GSMTree, BlueScale) are
//!   collections of identical nodes synthesized independently, so their
//!   area scales with the node count (`n−1` two-input muxes for binary
//!   trees, `(4^d−1)/3` Scale Elements for the quadtree).
//! * The centralized AXI-IC^RT carries an `O(n²)` switch box plus an
//!   `O(n·log n)` monolithic arbiter.
//! * Power scales with area (the paper fixes voltage, clock and toggle
//!   rate, making "design area dominate overall power consumption").
//! * Maximum frequency is flat for distributed designs and degrades with
//!   the centralized arbiter's fan-in ([`frequency`]).
//!
//! Exactness at the anchor: [`interconnect_cost`] reproduces Table 1's
//! numbers *exactly* at 16 clients (tests enforce this).

#![warn(missing_docs)]

pub mod cost;
pub mod frequency;
pub mod model;

pub use cost::HardwareCost;
pub use frequency::max_frequency_mhz;
pub use model::{
    interconnect_cost, legacy_core_cost, legacy_system_cost, processor_cost, Architecture,
    Processor,
};

/// Usable LUTs on the paper's platform (Xilinx VC707 / Virtex-7 XC7VX485T).
pub const VC707_LUTS: u64 = 303_600;

/// Fraction of the platform's LUTs a design consumes, as plotted on the
/// y-axis of Fig 5(a).
pub fn area_fraction(cost: &HardwareCost) -> f64 {
    cost.luts as f64 / VC707_LUTS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_fraction_of_platform() {
        let c = HardwareCost {
            luts: VC707_LUTS / 2,
            ..HardwareCost::default()
        };
        assert!((area_fraction(&c) - 0.5).abs() < 1e-12);
    }
}
