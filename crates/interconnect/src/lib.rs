//! Common interconnect framework for the BlueScale reproduction.
//!
//! Everything the evaluation compares — BlueScale itself and the five
//! baselines — plugs into the same harness through the [`Interconnect`]
//! trait: clients inject [`MemoryRequest`]s at their ports, the interconnect
//! is stepped once per cycle, and completed [`MemoryResponse`]s appear back
//! at the client side. The [`system::System`] harness drives periodic
//! [`client::TrafficGenerator`]s against any implementation and collects
//! [`metrics::RunMetrics`] (latency, blocking, deadline misses) — the
//! quantities plotted in the paper's Figures 6 and 7.

#![warn(missing_docs)]

pub mod admission;
pub mod buffer;
pub mod client;
pub mod guard;
pub mod metrics;
pub mod system;

use crate::admission::ReconfigOutcome;
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::FaultPlan;
use bluescale_sim::metrics::MetricsRegistry;
use bluescale_sim::Cycle;
use std::fmt;

/// Identifier of a client (processor or hardware accelerator), `µ.x` in the
/// paper's figures.
pub type ClientId = u32;

/// Whether a transaction reads or writes memory. Both directions traverse
/// the same request/response paths; the kind only influences the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load: data returns with the response.
    Read,
    /// A store: the response is the write acknowledgement.
    Write,
}

/// A memory transaction travelling from a client toward the memory
/// sub-system.
///
/// The request carries its real-time context (deadline, owning task) because
/// BlueScale's whole point is that arbitration decisions can read it; it
/// also accumulates `blocked_cycles`, incremented by whichever stage holds
/// the request back while serving a *later-deadline* (lower-priority) one —
/// the paper's "blocking latency" metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Globally unique request id.
    pub id: u64,
    /// Issuing client.
    pub client: ClientId,
    /// Task (within the client) the request belongs to.
    pub task: u32,
    /// Physical byte address.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle at which the owning job released the request.
    pub issued_at: Cycle,
    /// Absolute deadline (job release + task period; implicit deadlines).
    pub deadline: Cycle,
    /// Cycles this request spent blocked behind later-deadline requests.
    pub blocked_cycles: u64,
}

impl MemoryRequest {
    /// End-to-end latency if the request completed at `now`.
    pub fn latency_at(&self, now: Cycle) -> Cycle {
        now.saturating_sub(self.issued_at)
    }

    /// Whether completing at `now` would miss the deadline.
    pub fn misses_at(&self, now: Cycle) -> bool {
        now > self.deadline
    }
}

impl fmt::Display for MemoryRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} µ.{} task {} @{:#x} dl={}",
            self.id, self.client, self.task, self.addr, self.deadline
        )
    }
}

/// A completed memory transaction returning to its client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryResponse {
    /// The original request, including its accumulated blocking cycles.
    pub request: MemoryRequest,
    /// Cycle at which the response reached the client port.
    pub completed_at: Cycle,
}

impl MemoryResponse {
    /// End-to-end latency of the transaction.
    pub fn latency(&self) -> Cycle {
        self.request.latency_at(self.completed_at)
    }

    /// Whether the transaction missed its deadline.
    pub fn missed_deadline(&self) -> bool {
        self.request.misses_at(self.completed_at)
    }
}

/// One grant of the shared memory channel: at cycle `at`, a request with
/// absolute deadline `deadline` started `duration` cycles of service.
///
/// The harness uses the stream of service events to compute **blocking
/// latency** uniformly across architectures: a waiting request was blocked
/// by lower-priority traffic during every service interval whose deadline
/// was *later* than its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceEvent {
    /// Cycle at which service began.
    pub at: Cycle,
    /// Absolute deadline of the serviced request.
    pub deadline: Cycle,
    /// Service duration in cycles.
    pub duration: u64,
}

/// A memory interconnect under test: accepts requests at client ports,
/// moves them toward the shared memory sub-system one cycle at a time, and
/// returns responses.
///
/// Implementations own their memory controller (the tree root) so that the
/// harness treats every architecture uniformly.
pub trait Interconnect {
    /// Human-readable architecture name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of client ports.
    fn num_clients(&self) -> usize;

    /// Offers a request at its client's port. Returns the request back if
    /// the port buffer is full this cycle (the client retries later).
    ///
    /// # Errors
    ///
    /// The rejected request is returned as the error value so the caller
    /// can re-queue it without cloning.
    fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest>;

    /// Advances the interconnect by one cycle: arbitration, forwarding,
    /// memory service and response routing.
    fn step(&mut self, now: Cycle);

    /// Removes one response that has reached its client port, if any.
    fn pop_response(&mut self) -> Option<MemoryResponse>;

    /// Number of requests currently inside the interconnect (including the
    /// memory controller and the response path).
    fn pending(&self) -> usize;

    /// Drains one memory-channel service event recorded since the last
    /// call, if any. The default implementation reports none (acceptable
    /// for test doubles; the real architectures all record their grants).
    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        None
    }

    /// The interconnect's internal metrics registry, if it keeps one.
    /// Component-level counters (per-SE grants, memory-controller tallies)
    /// live here; harness-level aggregates live in the
    /// [`system::System`]'s own registry. The default reports none.
    fn metrics(&self) -> Option<&MetricsRegistry> {
        None
    }

    /// Mutable access to the internal registry (used to enable detail
    /// recording and by exporters; implementations may refresh mirrored
    /// counters on this call). The default reports none.
    fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        None
    }

    /// Installs the interconnect-side hooks of a fault plan (stuck grant
    /// ports, DRAM timing jitter, dropped responses). Client-side faults
    /// (rogue demand, bursts) are applied by the harness and need no
    /// cooperation here. The default ignores the plan — an implementation
    /// without fault hooks simply cannot misbehave.
    fn install_fault_plan(&mut self, _plan: &FaultPlan) {}

    /// Demotes `client` to best-effort service (the quarantine guard's
    /// containment action). Returns whether the demotion took effect; the
    /// default reports `false` for architectures without reconfigurable
    /// per-client service guarantees.
    fn demote_client(&mut self, _client: ClientId) -> bool {
        false
    }

    /// Runs admission control for a live reconfiguration of `client`'s
    /// declared task set (the empty set = the client leaves) and, on
    /// acceptance, installs the new parameters through a safe mode-change
    /// protocol: reconfigured servers swap `(Π, Θ)` only at their own
    /// replenishment boundary, so already-admitted clients keep their
    /// guarantees across the transition. On rejection the interconnect's
    /// state must be bit-identical to the state before the call.
    ///
    /// The default reports [`ReconfigOutcome::Unsupported`] — the
    /// architecture has no runtime admission control — and the caller
    /// decides how to degrade (the harness applies the retask without a
    /// guarantee, so churn scenarios still drive baselines).
    fn reconfigure_client(
        &mut self,
        _client: ClientId,
        _tasks: &TaskSet,
        _now: Cycle,
    ) -> ReconfigOutcome {
        ReconfigOutcome::Unsupported
    }

    /// [`reconfigure_client`](Self::reconfigure_client) with a cooperative
    /// cancellation/timeout hook: implementations with a multi-stage
    /// admission test poll `cancel` at cheap checkpoints and return
    /// [`ReconfigOutcome::Cancelled`] — having mutated nothing — once it
    /// reports cancelled. This is how a control plane bounds the decision
    /// latency of every admission request instead of stalling a caller
    /// behind an expensive analysis.
    ///
    /// The default checks the token once up front and then delegates, which
    /// is correct (if coarse) for any architecture: a cancellation that
    /// arrives mid-analysis is simply answered late.
    fn reconfigure_client_cancellable(
        &mut self,
        client: ClientId,
        tasks: &TaskSet,
        now: Cycle,
        cancel: &admission::CancelToken,
    ) -> ReconfigOutcome {
        if cancel.is_cancelled() {
            return ReconfigOutcome::Cancelled;
        }
        self.reconfigure_client(client, tasks, now)
    }

    /// The earliest cycle ≥ `now` at which this interconnect's observable
    /// state can change without new input — the fabric-side half of the
    /// next-event fast-forward contract (`Some(now)` = busy, do not jump;
    /// `Some(Cycle::MAX)` = idle until the next injection).
    ///
    /// Returning `None` means the architecture does not support
    /// fast-forwarding; the harness then steps it per-cycle, which is
    /// always correct. That is the default, so test doubles and baseline
    /// models stay bit-identical without opting in.
    fn next_event_hint(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    /// Advances internal countdown state (server P/B counters) by `delta`
    /// cycles in closed form across a stretch the caller proved idle via
    /// [`next_event_hint`](Self::next_event_hint): the hint at `now` was
    /// `≥ now + delta`. Implementations must make this bit-identical to
    /// `delta` per-cycle steps with no traffic. The default is a no-op,
    /// correct for any architecture whose hint is `None`.
    fn advance_idle(&mut self, _now: Cycle, _delta: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, issued: Cycle, deadline: Cycle) -> MemoryRequest {
        MemoryRequest {
            id,
            client: 0,
            task: 0,
            addr: 0,
            kind: AccessKind::Read,
            issued_at: issued,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn latency_and_miss_accounting() {
        let r = req(1, 100, 150);
        assert_eq!(r.latency_at(130), 30);
        assert!(!r.misses_at(150));
        assert!(r.misses_at(151));
    }

    #[test]
    fn response_delegates_to_request() {
        let resp = MemoryResponse {
            request: req(2, 10, 20),
            completed_at: 25,
        };
        assert_eq!(resp.latency(), 15);
        assert!(resp.missed_deadline());
    }

    #[test]
    fn display_is_informative() {
        let s = req(3, 0, 9).to_string();
        assert!(s.contains("req#3"));
        assert!(s.contains("dl=9"));
    }
}
