//! Regenerates the paper's Fig 7 (case-study success ratio vs target
//! utilization).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin fig7 -- [--processors 16,64] [--trials N] [--horizon N]`
//!
//! Paper-scale statistics: `--trials 200`.

use bluescale_bench::fig7::{render, run, Fig7Config};
use bluescale_bench::{arg_u64, arg_usize_list};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let processors = arg_usize_list(&args, "--processors", &[16, 64]);
    for n in processors {
        let mut config = Fig7Config::new(n);
        config.trials = arg_u64(&args, "--trials", config.trials);
        config.horizon = arg_u64(&args, "--horizon", config.horizon);
        let points = run(&config);
        println!("{}", render(&config, &points));
    }
}
