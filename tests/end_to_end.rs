//! End-to-end integration tests: every interconnect architecture driven by
//! the same harness on the same workloads.

use bluescale_repro::baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::rt::task::{Task, TaskSet};
use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::workload::synthetic::{generate, SyntheticConfig};

fn light_sets(n: usize) -> Vec<TaskSet> {
    (0..n)
        .map(|i| TaskSet::new(vec![Task::new(0, 500 + 10 * i as u64, 3).unwrap()]).unwrap())
        .collect()
}

fn all_interconnects(task_sets: &[TaskSet]) -> Vec<Box<dyn Interconnect>> {
    let n = task_sets.len();
    let weights: Vec<f64> = task_sets
        .iter()
        .map(|s| s.utilization().max(1e-4))
        .collect();
    let mut bs = BlueScaleConfig::for_clients(n);
    bs.work_conserving = true;
    vec![
        Box::new(AxiIcRt::new(n, 8, 1)),
        Box::new(BlueTree::new(n, 2, 1)),
        Box::new(BlueTree::smooth(n, 2, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Tdm, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Fbsp(weights), 1)),
        Box::new(BlueScaleInterconnect::new(bs, task_sets).expect("valid build")),
    ]
}

#[test]
fn light_load_no_misses_on_any_architecture() {
    let sets = light_sets(16);
    for ic in all_interconnects(&sets) {
        let name = ic.name();
        let mut system = System::new(ic, &sets);
        let m = system.run(20_000);
        assert!(m.issued() > 1000, "{name}: issued {}", m.issued());
        assert!(m.success(), "{name}: {} misses", m.missed());
    }
}

#[test]
fn conservation_no_requests_lost() {
    // Everything issued is either completed or still in flight at the end.
    let sets = light_sets(16);
    for ic in all_interconnects(&sets) {
        let name = ic.name();
        let mut system = System::new(ic, &sets);
        let m = system.run(10_000);
        let leftover = system.in_flight() as u64;
        assert_eq!(
            m.completed() + leftover + m.backlog(),
            m.issued(),
            "{name}: {} completed + {} in flight + {} backlog != {} issued",
            m.completed(),
            leftover,
            m.backlog(),
            m.issued()
        );
    }
}

#[test]
fn sixty_four_clients_all_architectures() {
    let sets = light_sets(64);
    for ic in all_interconnects(&sets) {
        let name = ic.name();
        let mut system = System::new(ic, &sets);
        let m = system.run(15_000);
        assert!(m.issued() > 1000, "{name}");
        assert!(
            m.miss_ratio() < 0.01,
            "{name}: miss ratio {}",
            m.miss_ratio()
        );
    }
}

#[test]
fn identical_seeds_produce_identical_metrics() {
    let mut rng_a = SimRng::seed_from(99);
    let mut rng_b = SimRng::seed_from(99);
    let sets_a = generate(&SyntheticConfig::fig6(16), &mut rng_a);
    let sets_b = generate(&SyntheticConfig::fig6(16), &mut rng_b);
    assert_eq!(sets_a, sets_b);

    let run = |sets: &[TaskSet]| {
        let mut config = BlueScaleConfig::for_clients(16);
        config.work_conserving = true;
        let ic = Box::new(BlueScaleInterconnect::new(config, sets).expect("valid"))
            as Box<dyn Interconnect>;
        let mut system = System::new(ic, sets);
        let m = system.run(10_000);
        (m.issued(), m.completed(), m.missed(), m.mean_latency())
    };
    assert_eq!(run(&sets_a), run(&sets_b));
}

#[test]
fn saturated_memory_channel_is_fully_utilized() {
    // Offered load > 1: the channel must stay busy (≈ one completion per
    // cycle once the pipeline fills) regardless of architecture.
    let sets: Vec<TaskSet> = (0..16)
        .map(|_| TaskSet::new(vec![Task::new(0, 100, 10).unwrap()]).unwrap())
        .collect();
    for ic in all_interconnects(&sets) {
        let name = ic.name();
        let mut system = System::new(ic, &sets);
        let horizon = 5_000;
        let m = system.run(horizon);
        let throughput = m.completed() as f64 / horizon as f64;
        assert!(
            throughput > 0.90,
            "{name}: throughput {throughput:.3} requests/cycle"
        );
    }
}

#[test]
fn responses_route_back_to_issuing_client() {
    // Drive BlueScale directly and verify response routing field-by-field.
    let sets = light_sets(16);
    let mut config = BlueScaleConfig::for_clients(16);
    config.work_conserving = true;
    let mut ic = BlueScaleInterconnect::new(config, &sets).expect("valid");
    use bluescale_repro::interconnect::{AccessKind, MemoryRequest};
    for c in 0..16u32 {
        ic.inject(
            MemoryRequest {
                id: 1000 + c as u64,
                client: c,
                task: 0,
                addr: (c as u64) << 20,
                kind: AccessKind::Read,
                issued_at: 0,
                deadline: 500,
                blocked_cycles: 0,
            },
            0,
        )
        .expect("leaf buffer has space");
    }
    let mut seen = Vec::new();
    for now in 0..2_000 {
        ic.step(now);
        while let Some(resp) = ic.pop_response() {
            assert_eq!(resp.request.id, 1000 + resp.request.client as u64);
            seen.push(resp.request.client);
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..16).collect::<Vec<u32>>());
}
