//! BlueTree and BlueTree-Smooth: distributed binary multiplexer trees with
//! blocking-factor arbitration (paper, Section 2).
//!
//! Each 2-to-1 node buffers its left (locally high-priority) and right
//! (locally low-priority) inputs. The static arbitration scheme lets every
//! α left-side requests be "blocked by at most one request from the
//! right-hand side": the node serves left until either α consecutive left
//! grants have occurred with right-side work pending, or left is empty.
//! With α = 1 the tree degrades to local round-robin. The scheme never
//! looks at deadlines — the scheduling-scalability flaw BlueScale fixes.

use crate::{charge_fifo, next_pow2};
use bluescale_interconnect::buffer::{DelayLine, FifoBuffer};
use bluescale_interconnect::{Interconnect, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{DramConfig, MemoryController};
use bluescale_sim::Cycle;
use std::collections::VecDeque;

/// One 2-to-1 multiplexer node.
#[derive(Debug)]
struct MuxNode {
    left: FifoBuffer<MemoryRequest>,
    right: FifoBuffer<MemoryRequest>,
    /// Consecutive left grants since the last right grant.
    left_streak: u64,
}

impl MuxNode {
    fn new(capacity: usize) -> Self {
        Self {
            left: FifoBuffer::with_capacity(capacity),
            right: FifoBuffer::with_capacity(capacity),
            left_streak: 0,
        }
    }

    /// Picks the side to serve under blocking factor `alpha`.
    fn choose(&self, alpha: u64) -> Option<Side> {
        match (self.left.is_empty(), self.right.is_empty()) {
            (true, true) => None,
            (false, true) => Some(Side::Left),
            (true, false) => Some(Side::Right),
            (false, false) => {
                if self.left_streak >= alpha {
                    Some(Side::Right)
                } else {
                    Some(Side::Left)
                }
            }
        }
    }

    fn forward(&mut self, side: Side) -> MemoryRequest {
        let req = match side {
            Side::Left => {
                self.left_streak += 1;
                self.left.pop()
            }
            Side::Right => {
                self.left_streak = 0;
                self.right.pop()
            }
        }
        .expect("chosen side must be non-empty");
        // Blocking accounting: anything queued here with an earlier
        // deadline just waited for a lower-priority transfer.
        charge_fifo(&mut self.left, req.deadline);
        charge_fifo(&mut self.right, req.deadline);
        req
    }

    fn occupancy(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn buffer_mut(&mut self, side: Side) -> &mut FifoBuffer<MemoryRequest> {
        match side {
            Side::Left => &mut self.left,
            Side::Right => &mut self.right,
        }
    }

    fn buffer(&self, side: Side) -> &FifoBuffer<MemoryRequest> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

impl Side {
    fn from_index(i: usize) -> Self {
        if i.is_multiple_of(2) {
            Side::Left
        } else {
            Side::Right
        }
    }
}

/// The BlueTree distributed memory interconnect.
///
/// # Example
///
/// ```
/// use bluescale_baselines::BlueTree;
/// use bluescale_interconnect::Interconnect;
///
/// let tree = BlueTree::new(16, 2, 1);
/// assert_eq!(tree.num_clients(), 16);
/// assert_eq!(tree.depth(), 4); // log2(16) multiplexer stages
/// ```
#[derive(Debug)]
pub struct BlueTree {
    name: &'static str,
    num_clients: usize,
    /// `nodes[d]` holds the `2^d` mux nodes of depth `d` (0 = root).
    nodes: Vec<Vec<MuxNode>>,
    alpha: u64,
    controller: MemoryController<MemoryRequest>,
    response_line: DelayLine<MemoryRequest>,
    ready: VecDeque<MemoryResponse>,
    service_events: VecDeque<ServiceEvent>,
}

impl BlueTree {
    /// Creates a BlueTree for `num_clients` clients with blocking factor
    /// `alpha` (the paper's experiments use α = 2), default 2-entry stage
    /// buffers, and `service_cycles` flat memory service.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero or `alpha` is zero.
    pub fn new(num_clients: usize, alpha: u64, service_cycles: u64) -> Self {
        Self::with_buffers(
            num_clients,
            alpha,
            DramConfig::flat(service_cycles),
            2,
            "BlueTree",
        )
    }

    /// Creates a BlueTree-Smooth: identical arbitration, deeper (8-entry)
    /// stage buffers that smooth transaction bursts.
    pub fn smooth(num_clients: usize, alpha: u64, service_cycles: u64) -> Self {
        Self::with_buffers(
            num_clients,
            alpha,
            DramConfig::flat(service_cycles),
            8,
            "BlueTree-Smooth",
        )
    }

    /// Creates a BlueTree backed by a full DRAM timing model.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero or `alpha` is zero.
    pub fn with_dram(num_clients: usize, alpha: u64, dram: DramConfig) -> Self {
        Self::with_buffers(num_clients, alpha, dram, 2, "BlueTree")
    }

    /// Creates a BlueTree-Smooth backed by a full DRAM timing model.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero or `alpha` is zero.
    pub fn smooth_with_dram(num_clients: usize, alpha: u64, dram: DramConfig) -> Self {
        Self::with_buffers(num_clients, alpha, dram, 8, "BlueTree-Smooth")
    }

    fn with_buffers(
        num_clients: usize,
        alpha: u64,
        dram: DramConfig,
        capacity: usize,
        name: &'static str,
    ) -> Self {
        assert!(num_clients > 0, "at least one client required");
        assert!(alpha > 0, "blocking factor must be positive");
        let leaves = next_pow2(num_clients).max(2);
        let depth = leaves.trailing_zeros() as usize; // log2
        let nodes = (0..depth)
            .map(|d| (0..1usize << d).map(|_| MuxNode::new(capacity)).collect())
            .collect();
        Self {
            name,
            num_clients,
            nodes,
            alpha,
            controller: MemoryController::new(dram),
            response_line: DelayLine::new(depth as u64),
            ready: VecDeque::new(),
            service_events: VecDeque::new(),
        }
    }

    /// Number of multiplexer stages between a client and the memory.
    pub fn depth(&self) -> usize {
        self.nodes.len()
    }

    /// The configured blocking factor α.
    pub fn alpha(&self) -> u64 {
        self.alpha
    }
}

impl Interconnect for BlueTree {
    fn name(&self) -> &'static str {
        self.name
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn inject(&mut self, request: MemoryRequest, _now: Cycle) -> Result<(), MemoryRequest> {
        let leaf_level = self.nodes.len() - 1;
        let client = request.client as usize;
        let node = client / 2;
        let side = Side::from_index(client);
        self.nodes[leaf_level][node]
            .buffer_mut(side)
            .try_push(request)
    }

    fn step(&mut self, now: Cycle) {
        if let Some(done) = self.controller.poll_complete(now) {
            self.response_line.push(done, now);
        }
        while let Some(request) = self.response_line.pop_ready(now) {
            self.ready.push_back(MemoryResponse {
                request,
                completed_at: now,
            });
        }
        // Root forwards into the memory controller.
        if self.controller.can_accept() {
            let root = &mut self.nodes[0][0];
            if let Some(side) = root.choose(self.alpha) {
                let req = root.forward(side);
                let addr = req.addr;
                let deadline = req.deadline;
                let duration = self.controller.accept(req, addr, now);
                self.service_events.push_back(ServiceEvent {
                    at: now,
                    deadline,
                    duration,
                });
            }
        }
        // Inner nodes forward into their parents, one request per node per
        // cycle, processed root-to-leaves so movement is one stage/cycle.
        for depth in 1..self.nodes.len() {
            let (upper, lower) = self.nodes.split_at_mut(depth);
            let parents = &mut upper[depth - 1];
            for (order, node) in lower[0].iter_mut().enumerate() {
                let parent = &mut parents[order / 2];
                let side_in_parent = Side::from_index(order);
                if parent.buffer(side_in_parent).is_full() {
                    continue;
                }
                if let Some(side) = node.choose(self.alpha) {
                    let req = node.forward(side);
                    parent
                        .buffer_mut(side_in_parent)
                        .try_push(req)
                        .expect("parent slot checked free");
                }
            }
        }
    }

    fn pop_response(&mut self) -> Option<MemoryResponse> {
        self.ready.pop_front()
    }

    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        self.service_events.pop_front()
    }

    fn pending(&self) -> usize {
        let buffered: usize = self.nodes.iter().flatten().map(MuxNode::occupancy).sum();
        buffered
            + usize::from(!self.controller.can_accept())
            + self.response_line.len()
            + self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(client: u32, id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: id * 64,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn depth_matches_log2() {
        assert_eq!(BlueTree::new(4, 2, 1).depth(), 2);
        assert_eq!(BlueTree::new(16, 2, 1).depth(), 4);
        assert_eq!(BlueTree::new(64, 2, 1).depth(), 6);
        // Non-power-of-two rounds up.
        assert_eq!(BlueTree::new(5, 2, 1).depth(), 3);
    }

    #[test]
    fn single_request_completes() {
        let mut t = BlueTree::new(8, 2, 1);
        t.inject(req(3, 1, 1000), 0).unwrap();
        let mut done = None;
        for now in 0..100 {
            t.step(now);
            if let Some(r) = t.pop_response() {
                done = Some(r);
                break;
            }
        }
        assert_eq!(done.expect("completes").request.id, 1);
        assert_eq!(t.pending(), 0);
    }

    #[test]
    fn left_side_is_favoured() {
        // Saturate both children of the root; left (client 0) must get
        // roughly alpha/(alpha+1) of the bandwidth.
        let mut t = BlueTree::new(2, 2, 1);
        let mut id = 0;
        let (mut left_done, mut right_done) = (0u64, 0u64);
        for now in 0..600 {
            id += 1;
            let _ = t.inject(req(0, id, 1_000_000), now);
            id += 1;
            let _ = t.inject(req(1, id, 1), now); // earliest deadline — ignored!
            t.step(now);
            while let Some(r) = t.pop_response() {
                if r.request.client == 0 {
                    left_done += 1;
                } else {
                    right_done += 1;
                }
            }
        }
        assert!(left_done > right_done, "{left_done} vs {right_done}");
        // α = 2 → 2:1 split.
        let ratio = left_done as f64 / right_done as f64;
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alpha_one_is_round_robin() {
        let mut t = BlueTree::new(2, 1, 1);
        let mut id = 0;
        let (mut l, mut r) = (0u64, 0u64);
        for now in 0..400 {
            id += 1;
            let _ = t.inject(req(0, id, 1_000_000), now);
            id += 1;
            let _ = t.inject(req(1, id, 1_000_000), now);
            t.step(now);
            while let Some(resp) = t.pop_response() {
                if resp.request.client == 0 {
                    l += 1;
                } else {
                    r += 1;
                }
            }
        }
        let ratio = l as f64 / r as f64;
        assert!((0.8..=1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn deadline_agnostic_blocking_recorded() {
        // A deadline-1 request on the right side repeatedly blocked by
        // later-deadline left traffic must accumulate blocked_cycles.
        let mut t = BlueTree::smooth(2, 4, 1);
        for i in 0..4 {
            t.inject(req(0, 10 + i, 1_000_000), 0).unwrap();
        }
        t.inject(req(1, 1, 1), 0).unwrap();
        let mut victim = None;
        for now in 0..100 {
            t.step(now);
            while let Some(r) = t.pop_response() {
                if r.request.id == 1 {
                    victim = Some(r.request.blocked_cycles);
                }
            }
        }
        assert!(victim.expect("victim completes") >= 2);
    }

    #[test]
    fn smooth_with_dram_keeps_name_and_buffers() {
        let t = BlueTree::smooth_with_dram(4, 2, DramConfig::default());
        assert_eq!(t.name(), "BlueTree-Smooth");
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn smooth_variant_has_deeper_buffers() {
        let mut plain = BlueTree::new(2, 2, 1);
        let mut smooth = BlueTree::smooth(2, 2, 1);
        assert_eq!(smooth.name(), "BlueTree-Smooth");
        // Burst of 8 into one leaf: plain (2-entry) rejects some, smooth
        // accepts all.
        let mut plain_accepted = 0;
        let mut smooth_accepted = 0;
        for i in 0..8 {
            if plain.inject(req(0, i, 1000), 0).is_ok() {
                plain_accepted += 1;
            }
            if smooth.inject(req(0, i, 1000), 0).is_ok() {
                smooth_accepted += 1;
            }
        }
        assert_eq!(plain_accepted, 2);
        assert_eq!(smooth_accepted, 8);
    }

    #[test]
    fn sixty_four_clients_all_complete() {
        let mut t = BlueTree::new(64, 2, 1);
        for c in 0..64u32 {
            t.inject(req(c, c as u64, 100_000), 0).unwrap();
        }
        let mut done = 0;
        for now in 0..5_000 {
            t.step(now);
            while t.pop_response().is_some() {
                done += 1;
            }
        }
        assert_eq!(done, 64);
    }

    #[test]
    #[should_panic(expected = "blocking factor")]
    fn zero_alpha_rejected() {
        let _ = BlueTree::new(4, 0, 1);
    }
}
