//! Deterministic random number generation for reproducible experiments.
//!
//! Every stochastic choice in the workspace (workload generation, traffic
//! jitter, trial seeds) flows through [`SimRng`], a `SplitMix64` generator.
//! `SplitMix64` passes BigCrush, needs no allocation, and — crucially for a
//! reproduction — produces identical streams on every platform.

/// A deterministic `SplitMix64` pseudo-random number generator.
///
/// # Example
///
/// ```
/// use bluescale_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn seed_from(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[lo, hi)` using rejection-free modulo
    /// reduction with a 128-bit multiply (Lemire's method).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let x = self.next_u64();
        lo + ((x as u128 * span as u128) >> 64) as u64
    }

    /// Returns a uniform value in `[lo, hi)` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Forks a statistically independent child generator. Used to give each
    /// trial / client its own stream while keeping the parent deterministic.
    pub fn fork(&mut self) -> SimRng {
        // Mix with a golden-ratio-derived constant so that `fork(); fork()`
        // and `next_u64()` sequences do not collide.
        SimRng::seed_from(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_u64_respects_bounds() {
        let mut rng = SimRng::seed_from(9);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_u64_covers_small_range() {
        let mut rng = SimRng::seed_from(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of [0,4) should occur");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(77);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::seed_from(4242);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::seed_from(1);
        let mut child = parent.fork();
        // The child stream must not mirror the parent stream.
        let collisions = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
