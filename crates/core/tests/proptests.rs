//! Randomized property tests of the BlueScale composition invariants,
//! driven by a fixed-seed [`SimRng`] sweep (the container has no registry
//! access for `proptest`; every case is reproducible by seed).

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;

const CASES: usize = 24;

/// One light single-task set per client, mirroring the old proptest
/// strategy: `T ∈ [100, 2000)`, `C = clamp(raw, 1, T/8)` with
/// `raw ∈ [1, 20)`.
fn random_client_sets(rng: &mut SimRng, clients: usize) -> Vec<TaskSet> {
    (0..clients)
        .map(|_| {
            let period = rng.range_u64(100, 2000);
            let wcet = rng.range_u64(1, 20).min(period / 8).max(1);
            TaskSet::new(vec![Task::new(0, period, wcet).expect("valid")]).expect("valid set")
        })
        .collect()
}

/// Every SE's allocated bandwidth stays within its unit capacity, at every
/// level, whenever the analysis succeeded.
#[test]
fn per_se_bandwidth_within_capacity() {
    let mut rng = SimRng::seed_from(0xC0DE1);
    for case in 0..CASES {
        let sets = random_client_sets(&mut rng, 16);
        let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets)
            .expect("construction succeeds");
        let comp = ic.composition();
        if comp.analysis_ok {
            for level in &comp.interfaces {
                for se in level {
                    let bw: f64 = se.iter().flatten().map(|r| r.bandwidth()).sum();
                    assert!(bw <= 1.0 + 1e-9, "case {case}: SE over-allocated: {bw}");
                }
            }
        }
    }
}

/// Updating a client to its *current* task set is idempotent: every
/// interface in the tree is bit-identical afterwards.
#[test]
fn identity_update_is_idempotent() {
    let mut rng = SimRng::seed_from(0xC0DE2);
    for case in 0..CASES {
        let sets = random_client_sets(&mut rng, 16);
        let client = rng.range_usize(0, 16);
        let mut ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets)
            .expect("construction succeeds");
        let before = ic.composition().interfaces.clone();
        let schedulable_before = ic.composition().schedulable;
        ic.update_client_tasks(client, sets[client].clone())
            .expect("identity update succeeds");
        assert_eq!(&ic.composition().interfaces, &before, "case {case}");
        assert_eq!(
            ic.composition().schedulable,
            schedulable_before,
            "case {case}"
        );
    }
}

/// Construction is deterministic: the same inputs produce the same
/// composition.
#[test]
fn construction_is_deterministic() {
    let mut rng = SimRng::seed_from(0xC0DE3);
    for case in 0..CASES {
        let sets = random_client_sets(&mut rng, 8);
        let a = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(8), &sets).expect("valid");
        let b = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(8), &sets).expect("valid");
        assert_eq!(
            &a.composition().interfaces,
            &b.composition().interfaces,
            "case {case}"
        );
        assert_eq!(
            a.composition().root_bandwidth,
            b.composition().root_bandwidth,
            "case {case}"
        );
    }
}

/// Admission control never leaves the composition unschedulable: after any
/// admit attempt on a schedulable system, it stays schedulable.
#[test]
fn admission_preserves_schedulability() {
    let mut rng = SimRng::seed_from(0xC0DE4);
    for case in 0..CASES {
        let sets = random_client_sets(&mut rng, 16);
        let client = rng.range_usize(0, 16);
        let period = rng.range_u64(50, 500);
        let wcet = rng.range_u64(1, 200).min(period);
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets).expect("valid");
        if !ic.composition().schedulable {
            continue;
        }
        let candidate =
            TaskSet::new(vec![Task::new(0, period, wcet).expect("valid")]).expect("valid");
        let _ = ic
            .admit_client_tasks(client, candidate)
            .expect("no build error");
        assert!(
            ic.composition().schedulable,
            "case {case}: admission left the system unschedulable"
        );
    }
}
