//! Umbrella crate for the BlueScale reproduction workspace.
//!
//! Re-exports every sub-crate under a stable name so that examples and
//! integration tests can write `use bluescale_repro::core::...` instead of
//! depending on each crate individually.
//!
//! The interesting code lives in the member crates:
//!
//! * [`sim`] — cycle-level simulation kernel (clock, RNG, statistics).
//! * [`rt`] — real-time scheduling theory: periodic tasks, DBF/SBF, the
//!   periodic resource model and the interface-selection algorithm of the
//!   paper's Section 5.
//! * [`mem`] — DRAM + memory-controller substrate.
//! * [`interconnect`] — common interconnect framework: requests, clients,
//!   the [`interconnect::Interconnect`] trait and the system harness.
//! * [`core`] — BlueScale itself: Scale Elements, nested priority queues,
//!   interface selectors, quadtree construction.
//! * [`baselines`] — AXI-IC^RT, BlueTree, BlueTree-Smooth, GSMTree-TDM and
//!   GSMTree-FBSP comparison interconnects.
//! * [`hwcost`] — analytic hardware cost model (Table 1 / Fig 5).
//! * [`noc`] — mesh NoC substrate and the legacy memory-over-NoC path.
//! * [`workload`] — task-set and traffic generation (UUniFast, case study).
//!
//! # Example
//!
//! ```
//! use bluescale_repro::core::BlueScaleConfig;
//!
//! let config = BlueScaleConfig::for_clients(16);
//! assert_eq!(config.levels(), 2);
//! ```

#![warn(missing_docs)]

pub use bluescale as core;
pub use bluescale_baselines as baselines;
pub use bluescale_hwcost as hwcost;
pub use bluescale_interconnect as interconnect;
pub use bluescale_mem as mem;
pub use bluescale_noc as noc;
pub use bluescale_rt as rt;
pub use bluescale_sim as sim;
pub use bluescale_workload as workload;
