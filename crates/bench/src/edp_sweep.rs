//! Extension experiment: the hierarchical EDP deadline-laxity sweep.
//!
//! The EDP resource model (see [`bluescale_rt::edp`]) lets an interface
//! promise its budget within a deadline `Δ = Θ + λ(Π − Θ)`. A *tight*
//! contract (λ = 0) minimizes the child's bandwidth but exports a
//! constrained-deadline server task that is expensive for the parent; a
//! *loose* contract (λ = 1) is the paper's periodic model. This sweep
//! composes a two-level hierarchy for each λ and reports the **root**
//! allocation — locating the end-to-end optimum that the leaf-level
//! comparison in the admission experiment cannot see.
//!
//! Composition per λ: each client gets an EDP interface with laxity λ;
//! each group of four clients exports its interfaces as (constrained-
//! deadline) server tasks to a leaf SE, whose own interface is then
//! selected with the paper's periodic model; the root allocation is the
//! sum of the leaf-SE interface bandwidths.

use bluescale_rt::edp::select_interface_edp_with_laxity;
use bluescale_rt::interface::{select_interface, SelectionContext};
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use bluescale_workload::total_utilization;

/// Configuration of the laxity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EdpSweepConfig {
    /// Clients (grouped four per leaf SE).
    pub clients: usize,
    /// Laxity values to sweep.
    pub laxities: Vec<f64>,
    /// Total utilization band of the generated systems.
    pub utilization: f64,
    /// Random systems per point.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for EdpSweepConfig {
    fn default() -> Self {
        Self {
            clients: 16,
            laxities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            utilization: 0.5,
            trials: 40,
            seed: 0xED9,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct EdpSweepPoint {
    /// The laxity λ.
    pub laxity: f64,
    /// Mean summed client-interface bandwidth (level 2).
    pub leaf_alloc: f64,
    /// Mean summed leaf-SE interface bandwidth (level 1 → root demand).
    pub root_alloc: f64,
    /// Fraction of systems where every selection succeeded.
    pub feasible_rate: f64,
    /// Mean realized utilization.
    pub utilization: f64,
}

/// Composes one system at laxity λ; returns (client alloc, root alloc) or
/// `None` if any selection failed.
fn compose(sets: &[TaskSet], laxity: f64) -> Option<(f64, f64)> {
    let mut client_alloc = 0.0;
    let mut root_alloc = 0.0;
    for group in sets.chunks(4) {
        // Level 2: one EDP interface per client.
        let mut exported = Vec::new();
        for (i, set) in group.iter().enumerate() {
            if set.is_empty() {
                continue;
            }
            let iface = select_interface_edp_with_laxity(set, laxity).ok()?;
            client_alloc += iface.bandwidth();
            exported.push(
                Task::with_deadline(i as u32, iface.period(), iface.deadline(), iface.budget())
                    .ok()?,
            );
        }
        if exported.is_empty() {
            continue;
        }
        // Level 1: the leaf SE serves the exported (possibly constrained-
        // deadline) server tasks with a periodic interface.
        let server_set = TaskSet::new(exported).ok()?;
        let ctx = SelectionContext::isolated(&server_set);
        let se_iface = select_interface(&server_set, &ctx).ok()?;
        root_alloc += se_iface.bandwidth();
    }
    Some((client_alloc, root_alloc))
}

/// Runs the sweep.
pub fn run(config: &EdpSweepConfig) -> Vec<EdpSweepPoint> {
    let mut master = SimRng::seed_from(config.seed);
    // Same systems across λ points for a paired comparison.
    let systems: Vec<Vec<TaskSet>> = (0..config.trials)
        .map(|_| {
            let mut rng = master.fork();
            generate(
                &SyntheticConfig {
                    util_lo: (config.utilization - 0.02).max(0.01),
                    util_hi: config.utilization + 0.02,
                    ..SyntheticConfig::fig6(config.clients)
                },
                &mut rng,
            )
        })
        .collect();
    config
        .laxities
        .iter()
        .map(|&laxity| {
            let mut leaf = OnlineStats::new();
            let mut root = OnlineStats::new();
            let mut util = OnlineStats::new();
            let mut feasible = 0u64;
            for sets in &systems {
                util.push(total_utilization(sets));
                if let Some((l, r)) = compose(sets, laxity) {
                    feasible += 1;
                    leaf.push(l);
                    root.push(r);
                }
            }
            EdpSweepPoint {
                laxity,
                leaf_alloc: leaf.mean(),
                root_alloc: root.mean(),
                feasible_rate: feasible as f64 / config.trials as f64,
                utilization: util.mean(),
            }
        })
        .collect()
}

/// Renders the sweep as a markdown table.
pub fn render(config: &EdpSweepConfig, points: &[EdpSweepPoint]) -> String {
    let mut s = format!(
        "# Extension: hierarchical EDP deadline-laxity sweep \
         ({} clients, U ≈ {:.2}, {} systems)\n\n\
         λ = 0 is the tightest supply contract (Δ = Θ); λ = 1 is the \
         paper's periodic model (Δ = Π).\n\n",
        config.clients, config.utilization, config.trials
    );
    s.push_str("| λ | Client alloc (level 2) | Root alloc (level 1) | Feasible |\n");
    s.push_str("|---:|---:|---:|---:|\n");
    for p in points {
        s.push_str(&format!(
            "| {:.2} | {:.3} | {:.3} | {:.0}% |\n",
            p.laxity,
            p.leaf_alloc,
            p.root_alloc,
            100.0 * p.feasible_rate,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EdpSweepConfig {
        EdpSweepConfig {
            clients: 8,
            laxities: vec![0.0, 0.5, 1.0],
            utilization: 0.4,
            trials: 6,
            seed: 2,
        }
    }

    #[test]
    fn sweep_covers_all_laxities() {
        let pts = run(&tiny());
        assert_eq!(pts.len(), 3);
        // λ = 0 exports D = C server tasks, which only a dedicated parent
        // can serve — infeasibility there is the finding, not a bug.
        for p in &pts[1..] {
            assert!(p.feasible_rate > 0.0, "λ={} produced nothing", p.laxity);
        }
    }

    #[test]
    fn root_allocation_shrinks_with_laxity() {
        // The headline finding: tight supply contracts explode the
        // parent's obligation; the periodic model (λ = 1) is the cheapest
        // at the root.
        let pts = run(&tiny());
        let mid = &pts[1]; // λ = 0.5
        let loose = &pts[2]; // λ = 1.0
        assert!(
            loose.root_alloc <= mid.root_alloc + 1e-9,
            "λ=1 {} vs λ=0.5 {}",
            loose.root_alloc,
            mid.root_alloc
        );
    }

    #[test]
    fn root_allocation_covers_utilization() {
        for p in run(&tiny()) {
            if p.feasible_rate > 0.0 {
                assert!(
                    p.root_alloc >= p.utilization * 0.9,
                    "λ={}: root {} below utilization {}",
                    p.laxity,
                    p.root_alloc,
                    p.utilization
                );
            }
        }
    }

    #[test]
    fn render_mentions_laxity() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("λ"));
    }
}
