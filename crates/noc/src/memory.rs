//! Memory-over-NoC: the legacy memory path.
//!
//! Without a dedicated real-time memory interconnect, a many-core SoC
//! routes memory traffic over its general mesh NoC to a memory controller
//! on one node (here the north-west corner). Requests contend with XY
//! routing and round-robin arbitration — no deadline awareness anywhere —
//! which is precisely the baseline the paper's "Legacy" system embodies.

use crate::mesh::{Mesh, MeshConfig, NodeId, Packet};
use bluescale_interconnect::{Interconnect, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{DramConfig, MemoryController};
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry};
use bluescale_sim::Cycle;
use std::collections::VecDeque;

/// The legacy memory-over-NoC interconnect.
///
/// # Example
///
/// ```
/// use bluescale_noc::NocMemoryInterconnect;
/// use bluescale_interconnect::Interconnect;
///
/// let noc = NocMemoryInterconnect::new(16, 1);
/// assert_eq!(noc.num_clients(), 16);
/// assert_eq!(noc.name(), "Legacy-NoC");
/// ```
#[derive(Debug)]
pub struct NocMemoryInterconnect {
    mesh: Mesh<MemoryRequest>,
    client_nodes: Vec<NodeId>,
    memory_node: NodeId,
    /// Requests that crossed the mesh and wait for the controller.
    at_memory: VecDeque<MemoryRequest>,
    /// Responses waiting for space at the memory node's injection port.
    outbound: VecDeque<MemoryRequest>,
    controller: MemoryController<MemoryRequest>,
    ready: VecDeque<MemoryResponse>,
    service_events: VecDeque<ServiceEvent>,
    metrics: MetricsRegistry,
}

impl NocMemoryInterconnect {
    /// Creates a mesh just large enough for `num_clients` clients plus the
    /// memory node, with `service_cycles` flat memory service.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero.
    pub fn new(num_clients: usize, service_cycles: u64) -> Self {
        Self::with_dram(num_clients, DramConfig::flat(service_cycles))
    }

    /// Creates a legacy NoC backed by a full DRAM timing model.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` is zero.
    pub fn with_dram(num_clients: usize, dram: DramConfig) -> Self {
        assert!(num_clients > 0, "at least one client required");
        let config = MeshConfig::square_for(num_clients + 1);
        let memory_node = NodeId::new(0, 0);
        // Clients occupy the remaining nodes in row-major order.
        let client_nodes: Vec<NodeId> = (0..config.width * config.height)
            .map(|i| NodeId::new(i % config.width, i / config.width))
            .filter(|&n| n != memory_node)
            .take(num_clients)
            .collect();
        assert_eq!(client_nodes.len(), num_clients, "mesh too small");
        Self {
            mesh: Mesh::new(config),
            client_nodes,
            memory_node,
            at_memory: VecDeque::new(),
            outbound: VecDeque::new(),
            controller: MemoryController::new(dram),
            ready: VecDeque::new(),
            service_events: VecDeque::new(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Read access to the interconnect's registry (memory-controller
    /// tallies are refreshed on [`Interconnect::metrics_mut`], not here).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The mesh node hosting `client`.
    pub fn node_of(&self, client: usize) -> NodeId {
        self.client_nodes[client]
    }

    /// Mesh side length (the paper's platform uses 9 for 64 clients + 2
    /// HAs + memory).
    pub fn mesh_side(&self) -> usize {
        self.mesh.config().width
    }
}

impl Interconnect for NocMemoryInterconnect {
    fn name(&self) -> &'static str {
        "Legacy-NoC"
    }

    fn num_clients(&self) -> usize {
        self.client_nodes.len()
    }

    fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest> {
        let node = self.client_nodes[request.client as usize];
        let (id, client) = (request.id, request.client);
        self.mesh
            .inject(
                node,
                Packet {
                    dest: self.memory_node,
                    payload: request,
                },
            )
            .map_err(|p| p.payload)?;
        self.metrics
            .inc(ComponentId::Client(client), Counter::Enqueued);
        self.metrics
            .request_enqueued(now, id, client, ComponentId::Client(client));
        Ok(())
    }

    fn step(&mut self, now: Cycle) {
        // Memory completions become outbound response packets.
        if let Some(done) = self.controller.poll_complete(now) {
            self.metrics.request_mem_complete(now, done.id);
            self.outbound.push_back(done);
        }
        // Feed the controller from arrived requests.
        if self.controller.can_accept() {
            if let Some(req) = self.at_memory.pop_front() {
                let addr = req.addr;
                let deadline = req.deadline;
                let id = req.id;
                let duration = self.controller.accept(req, addr, now);
                self.metrics.request_mem_issue(now, id, duration);
                self.service_events.push_back(ServiceEvent {
                    at: now,
                    deadline,
                    duration,
                });
            }
        }
        // Re-inject responses as the memory node's local port frees up.
        while let Some(resp) = self.outbound.pop_front() {
            let dest = self.client_nodes[resp.client as usize];
            match self.mesh.inject(
                self.memory_node,
                Packet {
                    dest,
                    payload: resp,
                },
            ) {
                Ok(()) => {}
                Err(p) => {
                    self.outbound.push_front(p.payload);
                    break;
                }
            }
        }
        self.mesh.step();
        // Collect arrivals.
        while let Some(p) = self.mesh.take_delivered(self.memory_node) {
            self.at_memory.push_back(p.payload);
        }
        for &node in &self.client_nodes {
            while let Some(p) = self.mesh.take_delivered(node) {
                self.metrics.request_completed(now, p.payload.id);
                self.ready.push_back(MemoryResponse {
                    request: p.payload,
                    completed_at: now,
                });
            }
        }
    }

    fn pop_response(&mut self) -> Option<MemoryResponse> {
        self.ready.pop_front()
    }

    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        self.service_events.pop_front()
    }

    fn pending(&self) -> usize {
        self.mesh.occupancy()
            + self.at_memory.len()
            + self.outbound.len()
            + usize::from(!self.controller.can_accept())
            + self.ready.len()
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(&self.metrics)
    }

    fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.controller.record_metrics(&mut self.metrics);
        Some(&mut self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(client: u32, id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: id * 64,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn sizes_mesh_to_clients() {
        assert_eq!(NocMemoryInterconnect::new(16, 1).mesh_side(), 5);
        // 64 clients + memory → 9×9, silent nod to the paper's platform.
        assert_eq!(NocMemoryInterconnect::new(64, 1).mesh_side(), 9);
    }

    #[test]
    fn clients_do_not_share_the_memory_node() {
        let noc = NocMemoryInterconnect::new(24, 1);
        for c in 0..24 {
            assert_ne!(noc.node_of(c), NodeId::new(0, 0));
        }
    }

    #[test]
    fn request_round_trips_over_the_mesh() {
        let mut noc = NocMemoryInterconnect::new(16, 1);
        noc.inject(req(10, 1, 10_000), 0).unwrap();
        let mut done = None;
        for now in 0..200 {
            noc.step(now);
            if let Some(r) = noc.pop_response() {
                done = Some((now, r));
                break;
            }
        }
        let (when, resp) = done.expect("must complete");
        assert_eq!(resp.request.id, 1);
        // Distance to (0,0) and back plus service: several cycles at least.
        assert!(when >= 4, "NoC transit cannot be instant (was {when})");
        assert_eq!(noc.pending(), 0);
    }

    #[test]
    fn all_clients_round_trip() {
        let mut noc = NocMemoryInterconnect::new(64, 1);
        for c in 0..64u32 {
            noc.inject(req(c, c as u64, 100_000), 0).unwrap();
        }
        let mut done = 0;
        for now in 0..10_000 {
            noc.step(now);
            while noc.pop_response().is_some() {
                done += 1;
            }
        }
        assert_eq!(done, 64);
        assert_eq!(noc.pending(), 0);
    }

    #[test]
    fn metrics_track_enqueues_and_lifecycle() {
        use bluescale_sim::metrics::SampleKind;

        let mut noc = NocMemoryInterconnect::new(16, 3);
        Interconnect::metrics_mut(&mut noc)
            .expect("noc keeps a registry")
            .enable_detail();
        noc.inject(req(5, 9, 10_000), 0).unwrap();
        for now in 0..200 {
            noc.step(now);
            if noc.pop_response().is_some() {
                break;
            }
        }
        let reg = Interconnect::metrics_mut(&mut noc).unwrap();
        assert_eq!(reg.counter(ComponentId::Client(5), Counter::Enqueued), 1);
        // Controller tallies were mirrored on metrics_mut().
        assert_eq!(reg.counter(ComponentId::Memory, Counter::MemAccepted), 1);
        // The lifecycle closed with a breakdown: no grant stage on a mesh
        // (queueing stays 0), but transit and service are visible.
        assert_eq!(reg.inflight(), 0);
        let service = reg
            .samples(ComponentId::Client(5), SampleKind::Service)
            .expect("service stage recorded");
        assert_eq!(service.as_slice(), &[3.0]);
        let transit = reg
            .samples(ComponentId::Client(5), SampleKind::NocTransit)
            .expect("transit stage recorded");
        assert!(transit.as_slice()[0] >= 1.0, "mesh hops take cycles");
    }

    #[test]
    fn service_events_recorded() {
        let mut noc = NocMemoryInterconnect::new(4, 2);
        noc.inject(req(0, 7, 500), 0).unwrap();
        let mut events = 0;
        for now in 0..100 {
            noc.step(now);
            while noc.pop_service_event().is_some() {
                events += 1;
            }
        }
        assert_eq!(events, 1);
    }
}
