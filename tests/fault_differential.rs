//! Differential tests for the fault-injection + guard layer.
//!
//! The layer's load-bearing invariants:
//!
//! 1. **Empty plan ≡ baseline** — installing an empty [`FaultPlan`] (and no
//!    guards) leaves every externally visible quantity bit-identical to a
//!    system that never heard of faults: counts, the full latency sample
//!    sequences, per-SE forwards, per-port grants.
//! 2. **Guards without faults are inert** — deadline-miss detection and a
//!    watchdog that never fires must not change a single decision.
//! 3. **Seeded reproducibility** — the same seed + plan + guards replayed
//!    twice produce bit-identical results, including the pseudo-random
//!    DRAM jitter.
//! 4. **Containment** — a rogue client is quarantined and its victims stay
//!    miss-free; dropped responses are recovered by the watchdog without
//!    double-counting completions.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::guard::{GuardConfig, QuarantinePolicy, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0xFA17;
const HORIZON: u64 = 20_000;

fn task_sets(clients: usize) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(&SyntheticConfig::fig6(clients), &mut rng)
}

fn build_system(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

/// Everything two runs must agree on to count as bit-identical.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for depth in 0..config.levels() {
        for order in 0..config.elements_at(depth) {
            counts.extend(sys.interconnect().metrics().port_counters(
                depth,
                order,
                config.branch,
                Counter::Grants,
            ));
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

#[test]
fn empty_fault_plan_is_bit_identical_to_baseline() {
    let sets = task_sets(16);

    let mut baseline = build_system(&sets);
    let mut with_empty_plan = build_system(&sets);
    with_empty_plan.set_fault_plan(FaultPlan::new(SEED));
    assert!(with_empty_plan.fault_plan().is_empty());

    let a = fingerprint(&mut baseline, HORIZON);
    let b = fingerprint(&mut with_empty_plan, HORIZON);
    assert!(a.0[1] > 0, "the workload must exercise the tree");
    assert_eq!(a, b, "an empty plan must take the exact baseline path");
    assert_eq!(
        with_empty_plan
            .registry()
            .counter(ComponentId::System, Counter::FaultsInjected),
        0
    );
}

#[test]
fn idle_guards_are_bit_identical_to_baseline() {
    let sets = task_sets(16);

    let mut baseline = build_system(&sets);
    let mut guarded = build_system(&sets);
    // Detection observes; the watchdog's timeout exceeds the horizon so it
    // never fires; no quarantine. Nothing may perturb the run.
    guarded
        .set_guards(GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: HORIZON,
                max_retries: 1,
            }),
            quarantine: None,
        })
        .expect("the horizon exceeds every deadline window");

    let a = fingerprint(&mut baseline, HORIZON);
    let b = fingerprint(&mut guarded, HORIZON);
    assert_eq!(a, b, "idle guards must not change a single decision");
    assert_eq!(
        guarded
            .registry()
            .counter(ComponentId::System, Counter::Retries),
        0
    );
}

fn faulted_system(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
    let mut sys = build_system(sets);
    let mut plan = FaultPlan::new(SEED ^ 0xBEEF);
    plan.push(
        FaultKind::RogueDemand {
            client: 0,
            factor: 6,
        },
        FaultWindow::new(2_000, 12_000),
    )
    .push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 40,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 1,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 6,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    sys.set_fault_plan(plan);
    // Sub-window timeout (1024 < period_max 4000) on purpose: the
    // differential needs live retry traffic to pin.
    sys.set_guards_unchecked(GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 1_024,
            max_retries: 3,
        }),
        quarantine: Some(QuarantinePolicy { miss_threshold: 50 }),
    });
    sys
}

#[test]
fn same_seed_and_plan_reproduce_bit_identically() {
    let sets = task_sets(16);
    let mut first = faulted_system(&sets);
    let mut second = faulted_system(&sets);

    let a = fingerprint(&mut first, HORIZON);
    let b = fingerprint(&mut second, HORIZON);
    assert_eq!(a, b, "seeded fault runs must replay exactly");
    assert_eq!(first.quarantined_clients(), second.quarantined_clients());
    assert_eq!(first.guard_outstanding(), second.guard_outstanding());

    // The plan actually did something in both runs (this is not the
    // baseline): fault counters are non-zero and agree.
    for sys in [&mut first, &mut second] {
        let merged = sys.merged_registry();
        assert!(
            merged.counter(ComponentId::System, Counter::FaultsInjected) > 0,
            "faults must have fired"
        );
    }
}

#[test]
fn rogue_client_is_quarantined_and_victims_stay_bounded() {
    // Strict budget gating (the guaranteed mode): the rogue's excess
    // traffic is throttled to its reserved budget and misses, while the
    // analysis keeps every victim on schedule. (Work-conserving mode
    // would simply absorb the flood in this workload's slack.)
    let sets = task_sets(16);
    let config = BlueScaleConfig::for_clients(sets.len());
    let ic = BlueScaleInterconnect::new(config, &sets).expect("valid task sets");
    let mut sys = System::new(Box::new(ic), &sets);
    let mut plan = FaultPlan::new(7);
    plan.push(
        FaultKind::RogueDemand {
            client: 0,
            factor: 8,
        },
        FaultWindow::ALWAYS,
    );
    sys.set_fault_plan(plan);
    sys.set_guards(GuardConfig {
        deadline_miss_detection: true,
        watchdog: None,
        quarantine: Some(QuarantinePolicy { miss_threshold: 20 }),
    })
    .expect("no watchdog to validate");
    sys.run(HORIZON);

    assert_eq!(sys.quarantined_clients(), vec![0], "the rogue is contained");
    assert!(sys.detected_misses(0) >= 20);
    assert!(
        sys.registry()
            .counter(ComponentId::System, Counter::Quarantines)
            >= 1
    );
    // Temporal isolation holds for the victims: budget-regulated service
    // means the rogue's flood never shows up as victim deadline misses.
    for victim in sys.per_client_metrics().iter().skip(1) {
        assert_eq!(victim.missed(), 0, "victims must stay miss-free");
    }
}

#[test]
fn watchdog_recovers_dropped_responses_without_double_counting() {
    let sets = task_sets(16);
    let mut sys = build_system(&sets);
    let mut plan = FaultPlan::new(99);
    plan.push(
        FaultKind::DropResponse {
            client: 3,
            every: 2,
        },
        FaultWindow::new(0, 10_000),
    );
    sys.set_fault_plan(plan);
    // Sub-window timeout (512 < period_max 4000) on purpose: this scenario
    // measures recovery from dropped responses via fast re-injection.
    sys.set_guards_unchecked(GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 512,
            max_retries: 4,
        }),
        quarantine: None,
    });
    let mut m = sys.run(HORIZON);

    let merged = sys.merged_registry();
    let dropped = merged.counter(ComponentId::System, Counter::ResponsesDropped);
    let retries = merged.counter(ComponentId::System, Counter::Retries);
    assert!(dropped > 0, "the fault must have fired");
    assert!(retries > 0, "the watchdog must have re-issued");

    // Request conservation: everything accepted either completed exactly
    // once or is still tracked as outstanding (in flight or lost past the
    // retry limit). Backlog never entered the interconnect.
    assert_eq!(
        m.issued(),
        m.completed() + m.backlog() + sys.guard_outstanding() as u64,
        "conservation: issued = completed + backlog + outstanding"
    );
    assert!(
        m.completed() > 0 && m.latency().as_slice().len() == m.completed() as usize,
        "every completion sampled exactly once"
    );
}
