//! End-to-end daemon tests: real TCP clients against a running daemon,
//! covering the retry path under injected connection faults, the circuit
//! breaker, and crash/restart recovery.

use bluescale_ctl::client::{CtlClient, RetryPolicy};
use bluescale_ctl::proto::{RejectReason, Response, TaskSpec, TenantClass};
use bluescale_ctl::server::{Daemon, DaemonConfig};
use bluescale_sim::metrics::Counter;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn test_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bluescale-ctl-e2e-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec(period: u64, wcet: u64) -> TaskSpec {
    TaskSpec { period, wcet }
}

fn small_config() -> DaemonConfig {
    DaemonConfig {
        capacity: 8,
        queue_depth: 64,
        batch_max: 8,
        sim_cycles_per_batch: 32,
        compact_every: 0,
        queue_deadline: Duration::from_secs(2),
        ..DaemonConfig::default()
    }
}

#[test]
fn join_renegotiate_leave_over_tcp() {
    let dir = test_dir("basic");
    let daemon = Daemon::start(&dir, small_config()).expect("start");
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), 1);

    assert!(matches!(client.ping(), Ok(Response::Pong)));
    let joined = client
        .join(7, TenantClass::Guaranteed, vec![spec(400, 2)])
        .expect("join");
    assert!(
        matches!(joined, Response::Admitted { .. }),
        "got {joined:?}"
    );
    assert!(matches!(
        client
            .renegotiate(7, vec![spec(200, 2)])
            .expect("renegotiate"),
        Response::Admitted { .. }
    ));
    assert!(matches!(
        client.stats(7).expect("stats"),
        Response::Stats(_)
    ));
    assert!(matches!(
        client.stats(99).expect("stats unknown"),
        Response::Rejected {
            reason: RejectReason::UnknownTenant
        }
    ));
    assert!(matches!(
        client.leave(7).expect("leave"),
        Response::Admitted { .. }
    ));
    assert_eq!(daemon.tenant_count(), 0);

    let stats = daemon.shutdown();
    assert!(stats.conservation_holds(), "leaky accounting: {stats:?}");
    // Read-only requests (ping, stats) never enter the admission queue
    // and are outside conservation.
    assert_eq!(stats.received, 3, "join + renegotiate + leave");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_responses_are_survived_by_retries() {
    let dir = test_dir("faults");
    let daemon = Daemon::start(&dir, small_config()).expect("start");
    // Sever the connection after every 2nd sent frame: every other
    // response is lost in flight and the client must reconnect + resend.
    let policy = RetryPolicy {
        drop_after_send_every: Some(2),
        ..RetryPolicy::default()
    };
    let mut client = CtlClient::new(daemon.addr(), policy, 99);

    for tenant in 0..4u64 {
        let r = client
            .join(tenant, TenantClass::BestEffort, vec![spec(1000, 2)])
            .unwrap_or_else(|e| panic!("join {tenant} failed under faults: {e}"));
        assert!(matches!(r, Response::Admitted { .. }), "got {r:?}");
    }
    assert_eq!(daemon.tenant_count(), 4);
    let retries = daemon.sim_counter(Counter::Retries);
    assert!(retries > 0, "fault injection must force retries");

    let stats = daemon.shutdown();
    assert!(stats.retries > 0);
    // Retried requests are counted once per arrival; conservation still
    // holds because every arrival got exactly one verdict.
    assert!(stats.conservation_holds(), "leaky accounting: {stats:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn flapping_tenant_trips_the_breaker_into_quarantine() {
    let dir = test_dir("breaker");
    let daemon = Daemon::start(&dir, small_config()).expect("start");
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), 3);

    assert!(matches!(
        client
            .join(5, TenantClass::BestEffort, vec![spec(400, 2)])
            .expect("join"),
        Response::Admitted { .. }
    ));
    // Flap: conflicting joins keep getting rejected until the breaker
    // (threshold 8 within a window of 16) trips.
    let mut saw_quarantined = false;
    for _ in 0..12 {
        match client
            .join(5, TenantClass::Guaranteed, vec![spec(400, 2)])
            .expect("flapping join")
        {
            Response::Rejected {
                reason: RejectReason::AlreadyJoined,
            } => {}
            Response::Rejected {
                reason: RejectReason::Quarantined,
            } => {
                saw_quarantined = true;
                break;
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    assert!(saw_quarantined, "breaker never tripped");
    let stats = daemon.shutdown();
    assert!(stats.conservation_holds(), "leaky accounting: {stats:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_frees_capacity_durably_across_restart() {
    let dir = test_dir("quarantine-restart");
    let config = small_config();
    let daemon = Daemon::start(&dir, config.clone()).expect("start");
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), 7);

    // Three tenants at ~19% demand each saturate the root budget.
    for t in 1..=3u64 {
        assert!(matches!(
            client
                .join(t, TenantClass::Guaranteed, vec![spec(16, 3)])
                .expect("join"),
            Response::Admitted { .. }
        ));
    }
    // Tenant 3 flaps: renegotiations that cannot fit keep getting
    // rejected until the breaker (threshold 8, window 16) trips it into
    // quarantine, shedding its reservation.
    let mut quarantined = false;
    for _ in 0..12 {
        match client.renegotiate(3, vec![spec(8, 3)]).expect("flap") {
            Response::Rejected {
                reason: RejectReason::Inadmissible,
            } => {}
            Response::Rejected {
                reason: RejectReason::Quarantined,
            } => {
                quarantined = true;
                break;
            }
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    assert!(quarantined, "breaker never tripped");
    assert_eq!(daemon.quarantined_slots(), vec![2]);

    // The demotion freed tenant 3's reservation: a 4th identical tenant
    // now fits, and its admission is journaled AFTER the quarantine.
    assert!(matches!(
        client
            .join(4, TenantClass::Guaranteed, vec![spec(16, 3)])
            .expect("post-demotion join"),
        Response::Admitted { .. }
    ));
    let digest = daemon.state_digest();
    daemon.kill();

    // Replay must re-shed the quarantined reservation; an unjournaled
    // demotion would make tenant 4's join replay as Rejected and the
    // daemon refuse to start (ReplayDiverged).
    let revived = Daemon::start(&dir, config).expect("restart after breaker trip");
    assert_eq!(
        revived.state_digest(),
        digest,
        "recovery must reproduce the post-demotion admission state"
    );
    assert_eq!(revived.quarantined_slots(), vec![2]);
    assert_eq!(revived.tenant_count(), 4);
    revived.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_trickled_frames_stay_in_sync() {
    // A healthy-but-slow client that dribbles its frame across several
    // of the daemon's 100ms read-poll windows: the handler must buffer
    // the partial frame, not restart the framing mid-stream.
    use bluescale_ctl::proto::{read_frame, write_frame, Request};
    use std::io::Write as _;
    use std::net::TcpStream;

    let dir = test_dir("trickle");
    let daemon = Daemon::start(&dir, small_config()).expect("start");
    let mut stream = TcpStream::connect(daemon.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let payload = Request::Join {
        tenant: 21,
        class: TenantClass::Guaranteed,
        tasks: vec![spec(400, 2)],
        attempt: 0,
    }
    .encode();
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).expect("encode frame");
    // Trickle: split inside the length prefix AND inside the payload,
    // pausing past the read timeout between every piece.
    for piece in [&frame[..2], &frame[2..6], &frame[6..]] {
        stream.write_all(piece).expect("write piece");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(250));
    }
    let response = read_frame(&mut stream).expect("response arrives");
    assert!(matches!(
        Response::decode(&response).expect("decodes"),
        Response::Admitted { .. }
    ));
    assert_eq!(daemon.tenant_count(), 1);

    let stats = daemon.shutdown();
    assert!(stats.conservation_holds(), "leaky accounting: {stats:?}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_restart_replays_to_the_same_state() {
    let dir = test_dir("restart");
    let config = small_config();
    let daemon = Daemon::start(&dir, config.clone()).expect("start");
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), 4);

    for (tenant, class, tasks) in [
        (1u64, TenantClass::Guaranteed, vec![spec(400, 2)]),
        (2, TenantClass::BestEffort, vec![spec(1000, 5)]),
        (3, TenantClass::Guaranteed, vec![spec(500, 1)]),
    ] {
        assert!(matches!(
            client.join(tenant, class, tasks).expect("join"),
            Response::Admitted { .. }
        ));
    }
    assert!(matches!(
        client
            .renegotiate(1, vec![spec(200, 2)])
            .expect("renegotiate"),
        Response::Admitted { .. }
    ));
    assert!(matches!(
        client.leave(2).expect("leave"),
        Response::Admitted { .. }
    ));
    // Every acknowledged op is durable: the digest here is the recovery
    // target.
    let digest = daemon.state_digest();
    daemon.kill();

    let revived = Daemon::start(&dir, config).expect("restart");
    assert_eq!(
        revived.state_digest(),
        digest,
        "recovery must replay to the exact pre-crash admission state"
    );
    assert_eq!(revived.tenant_count(), 2);
    assert_eq!(revived.sim_counter(Counter::RecoveryReplays), 5);

    // The revived daemon keeps serving: the freed slot is reusable.
    let mut client = CtlClient::new(revived.addr(), RetryPolicy::default(), 5);
    assert!(matches!(
        client
            .join(9, TenantClass::BestEffort, vec![spec(800, 2)])
            .expect("post-recovery join"),
        Response::Admitted { .. }
    ));
    revived.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_mid_run_preserves_recovery() {
    let dir = test_dir("compacted");
    let config = DaemonConfig {
        compact_every: 3,
        ..small_config()
    };
    let daemon = Daemon::start(&dir, config.clone()).expect("start");
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), 6);
    for tenant in 0..6u64 {
        assert!(matches!(
            client
                .join(tenant, TenantClass::BestEffort, vec![spec(2000, 2)])
                .expect("join"),
            Response::Admitted { .. }
        ));
    }
    assert!(matches!(
        client.leave(0).expect("leave"),
        Response::Admitted { .. }
    ));
    let digest = daemon.state_digest();
    daemon.kill();

    let revived = Daemon::start(&dir, config).expect("restart");
    assert_eq!(revived.state_digest(), digest);
    assert_eq!(revived.tenant_count(), 5);
    revived.shutdown();
    fs::remove_dir_all(&dir).ok();
}
