//! Extension experiment: reconfiguration cost when software tasks change.
//!
//! The paper's Section 3.2 claims the property that makes BlueScale's
//! *scheduling* scale: "when a task joins or leaves a client, the system
//! will only update the parameters of the server tasks on the
//! corresponding memory request path" — O(tree depth) Scale Elements,
//! versus a centralized interconnect that "requires recalculation of the
//! memory bandwidth of all clients if the software tasks on any one
//! client are altered" (Section 2.2, about TDM/centralized designs).
//!
//! This experiment quantifies that: the wall-clock cost of one task-set
//! change under (a) BlueScale's path-local update and (b) a full
//! recomputation of every interface (what a global analysis must do), as
//! the client count scales. SEs touched are also reported — the
//! architecture-level measure, independent of host speed.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;
use bluescale_workload::uunifast::taskset_with_utilization;
use std::time::Instant;

/// Configuration of the reconfiguration experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Task-set updates measured per point.
    pub updates: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![16, 64, 256, 1024],
            updates: 20,
            seed: 0x2ECF,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigPoint {
    /// Number of clients.
    pub clients: usize,
    /// SEs reprogrammed by one path-local update (= tree depth).
    pub ses_touched_path: usize,
    /// SEs reprogrammed by a full recomputation (= all SEs).
    pub ses_touched_full: usize,
    /// Mean wall-clock microseconds per path-local update.
    pub path_update_us: f64,
    /// Mean wall-clock microseconds per full recomputation.
    pub full_rebuild_us: f64,
}

fn light_sets(n: usize, rng: &mut SimRng) -> Vec<TaskSet> {
    (0..n)
        .map(|_| taskset_with_utilization(1, (0.5 / n as f64).max(1e-4), 400, 4000, rng))
        .collect()
}

/// Runs the sweep.
pub fn run(config: &ReconfigConfig) -> Vec<ReconfigPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut rng = master.fork();
            let sets = light_sets(clients, &mut rng);
            let bs_config = BlueScaleConfig::for_clients(clients);
            let mut ic = BlueScaleInterconnect::new(bs_config.clone(), &sets).expect("valid build");
            let ses_touched_full = ic.composition().reprogrammed_elements;

            // Path-local updates.
            let mut path_total = 0.0;
            let mut ses_touched_path = 0;
            for u in 0..config.updates {
                let client = rng.range_usize(0, clients);
                let new_tasks =
                    TaskSet::new(vec![
                        Task::new(0, 400 + 10 * u as u64, 1 + (u as u64 % 4)).expect("valid task")
                    ])
                    .expect("valid set");
                let start = Instant::now();
                let report = ic
                    .update_client_tasks(client, new_tasks)
                    .expect("update succeeds");
                path_total += start.elapsed().as_secs_f64() * 1e6;
                ses_touched_path = report.reprogrammed_elements;
            }

            // Full recomputations (what a global analysis must redo).
            let mut full_total = 0.0;
            for _ in 0..config.updates {
                let start = Instant::now();
                let rebuilt =
                    BlueScaleInterconnect::new(bs_config.clone(), &sets).expect("valid build");
                full_total += start.elapsed().as_secs_f64() * 1e6;
                std::hint::black_box(&rebuilt);
            }

            ReconfigPoint {
                clients,
                ses_touched_path,
                ses_touched_full,
                path_update_us: path_total / config.updates as f64,
                full_rebuild_us: full_total / config.updates as f64,
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(config: &ReconfigConfig, points: &[ReconfigPoint]) -> String {
    let mut s = format!(
        "# Extension: reconfiguration cost per task-set change \
         ({} updates/point)\n\n",
        config.updates
    );
    s.push_str(
        "| Clients | SEs touched (path) | SEs touched (full) | Path update (µs) | Full recompute (µs) | Speed-up |\n",
    );
    s.push_str("|---:|---:|---:|---:|---:|---:|\n");
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {} | {:.0} | {:.0} | {:.1}× |\n",
            p.clients,
            p.ses_touched_path,
            p.ses_touched_full,
            p.path_update_us,
            p.full_rebuild_us,
            p.full_rebuild_us / p.path_update_us.max(1e-9),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReconfigConfig {
        ReconfigConfig {
            client_counts: vec![16, 64],
            updates: 3,
            seed: 4,
        }
    }

    #[test]
    fn path_touches_depth_ses_only() {
        let pts = run(&tiny());
        assert_eq!(pts[0].ses_touched_path, 2); // 16 clients → depth 2
        assert_eq!(pts[0].ses_touched_full, 5); // 1 + 4 SEs
        assert_eq!(pts[1].ses_touched_path, 3); // 64 clients → depth 3
        assert_eq!(pts[1].ses_touched_full, 21);
    }

    #[test]
    fn path_update_scales_with_depth_not_clients() {
        let pts = run(&tiny());
        // 4× the clients adds one SE to the path, not 4× the elements.
        assert_eq!(pts[1].ses_touched_path, pts[0].ses_touched_path + 1);
        assert!(pts[1].ses_touched_full > 4 * pts[0].ses_touched_path);
    }

    #[test]
    fn render_reports_speedup() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Speed-up"));
        assert!(text.contains("16"));
    }
}
