//! Crash-consistent admission journal: CRC-framed write-ahead log plus
//! atomic snapshot compaction.
//!
//! # Write path
//!
//! Only operations that change admission state are journaled: admitted
//! requests and circuit-breaker quarantine demotions ([`Op::Quarantine`]
//! sheds a reservation, so it must replay). A rejected or shed request
//! changes no durable state. The daemon's ordering per batch is
//! apply → append → `sync` → reply: a client that has seen
//! [`Response::Admitted`](crate::proto::Response::Admitted) is guaranteed
//! the operation survives a crash, and a torn record at the tail can only
//! belong to a request that was never acknowledged.
//!
//! # Record layout
//!
//! ```text
//! [u32 le len][u32 le crc32][payload]      payload = [u64 le seq][op]
//! ```
//!
//! `crc32` (IEEE) covers the payload. Sequence numbers are dense and
//! monotone across compactions; the snapshot pins the sequence number the
//! log resumes from.
//!
//! # Compaction
//!
//! `compact` writes the full tenant table to `snapshot.tmp`, fsyncs,
//! renames over `snapshot.bin` (atomic on POSIX), fsyncs the directory,
//! then truncates the log. A crash between the rename and the truncate
//! leaves stale records whose sequence numbers predate the snapshot;
//! recovery skips those explicitly, so every crash point lands in a
//! well-defined state.
//!
//! # Recovery
//!
//! [`recover`] replays: decoded snapshot (if present), then every whole,
//! CRC-valid, in-sequence log record. A short/corrupt tail is **not** an
//! error — it is reported via [`Recovery::torn_tail`] and truncated on
//! the next [`Journal::open`]. A corrupt *snapshot* is an error: the
//! snapshot write is atomic, so damage there means real storage
//! corruption, which must not be silently repaired.

use crate::proto::{put_tasks, take_tasks, Cursor, ProtoError, TaskSpec, TenantClass};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside the journal directory.
pub const WAL_FILE: &str = "wal.log";
/// File name of the compacted snapshot inside the journal directory.
pub const SNAP_FILE: &str = "snapshot.bin";
const SNAP_TMP: &str = "snapshot.tmp";
const SNAP_MAGIC: u32 = 0xB5CA_5A02;
/// Records cannot exceed a frame: one op per tenant request.
const MAX_RECORD: u32 = crate::proto::MAX_FRAME;

/// CRC-32 (IEEE 802.3, reflected), bitwise. The journal writes one small
/// record per admission — table-free simplicity beats throughput here.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One durable admission operation. The `slot` is recorded at append time
/// and cross-checked on replay: replay re-runs the deterministic
/// admission path, so a slot divergence means the journal and the code
/// disagree about history — a structural error, not a torn tail.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Tenant admitted with the declared task set.
    Join {
        /// Tenant identity.
        tenant: u64,
        /// Service class.
        class: TenantClass,
        /// Client slot the admission assigned.
        slot: u32,
        /// Declared tasks.
        tasks: Vec<TaskSpec>,
    },
    /// Tenant's task set replaced.
    Renegotiate {
        /// Tenant identity.
        tenant: u64,
        /// The tenant's slot (unchanged by renegotiation).
        slot: u32,
        /// Replacement tasks.
        tasks: Vec<TaskSpec>,
    },
    /// Tenant's reservation released.
    Leave {
        /// Tenant identity.
        tenant: u64,
        /// The slot being freed.
        slot: u32,
    },
    /// Tenant's slot demoted through the guard quarantine path (a
    /// circuit-breaker trip). The tenant stays registered — identity,
    /// class and declared tasks survive — but its reservation is shed,
    /// freeing capacity later admissions may consume. The demotion
    /// changes durable admission capacity, so it must be journaled:
    /// replay re-sheds the slot, keeping recovered capacity identical to
    /// live capacity (otherwise a post-demotion join that only fit
    /// because of the freed reservation would replay as Rejected).
    Quarantine {
        /// Tenant identity.
        tenant: u64,
        /// The slot being demoted.
        slot: u32,
    },
}

impl Op {
    /// The tenant the operation concerns.
    pub fn tenant(&self) -> u64 {
        match *self {
            Op::Join { tenant, .. }
            | Op::Renegotiate { tenant, .. }
            | Op::Leave { tenant, .. }
            | Op::Quarantine { tenant, .. } => tenant,
        }
    }

    /// The slot recorded at append time.
    pub fn slot(&self) -> u32 {
        match *self {
            Op::Join { slot, .. }
            | Op::Renegotiate { slot, .. }
            | Op::Leave { slot, .. }
            | Op::Quarantine { slot, .. } => slot,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Op::Join {
                tenant,
                class,
                slot,
                tasks,
            } => {
                buf.push(1);
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.push(match class {
                    TenantClass::Guaranteed => 0,
                    TenantClass::BestEffort => 1,
                });
                buf.extend_from_slice(&slot.to_le_bytes());
                put_tasks(buf, tasks);
            }
            Op::Renegotiate {
                tenant,
                slot,
                tasks,
            } => {
                buf.push(2);
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&slot.to_le_bytes());
                put_tasks(buf, tasks);
            }
            Op::Leave { tenant, slot } => {
                buf.push(3);
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&slot.to_le_bytes());
            }
            Op::Quarantine { tenant, slot } => {
                buf.push(4);
                buf.extend_from_slice(&tenant.to_le_bytes());
                buf.extend_from_slice(&slot.to_le_bytes());
            }
        }
    }

    fn decode(c: &mut Cursor<'_>) -> Result<Self, ProtoError> {
        Ok(match c.take_u8()? {
            1 => {
                let tenant = c.take_u64()?;
                let class = match c.take_u8()? {
                    0 => TenantClass::Guaranteed,
                    1 => TenantClass::BestEffort,
                    other => return Err(ProtoError::BadTag(other)),
                };
                let slot = c.take_u32()?;
                let tasks = take_tasks(c)?;
                Op::Join {
                    tenant,
                    class,
                    slot,
                    tasks,
                }
            }
            2 => {
                let tenant = c.take_u64()?;
                let slot = c.take_u32()?;
                let tasks = take_tasks(c)?;
                Op::Renegotiate {
                    tenant,
                    slot,
                    tasks,
                }
            }
            3 => Op::Leave {
                tenant: c.take_u64()?,
                slot: c.take_u32()?,
            },
            4 => Op::Quarantine {
                tenant: c.take_u64()?,
                slot: c.take_u32()?,
            },
            other => return Err(ProtoError::BadTag(other)),
        })
    }
}

/// One admitted tenant inside a snapshot, slot-ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTenant {
    /// Tenant identity.
    pub tenant: u64,
    /// Service class.
    pub class: TenantClass,
    /// Assigned client slot.
    pub slot: u32,
    /// Currently-declared tasks.
    pub tasks: Vec<TaskSpec>,
}

/// The compacted state: the full tenant table plus the sequence number
/// the write-ahead log resumes from.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// First sequence number NOT folded into this snapshot.
    pub next_seq: u64,
    /// Admitted tenants, slot-ascending.
    pub tenants: Vec<SnapshotTenant>,
    /// Slots demoted through the quarantine path, ascending. A
    /// quarantined slot holds no reservation even when a tenant still
    /// owns it (the demotion shed it), and may appear here with no
    /// owning tenant at all (the tenant left after the demotion).
    pub quarantined: Vec<u32>,
}

impl Snapshot {
    /// Encodes the snapshot with a trailing CRC over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&self.next_seq.to_le_bytes());
        buf.extend_from_slice(&(self.tenants.len() as u32).to_le_bytes());
        for t in &self.tenants {
            buf.extend_from_slice(&t.tenant.to_le_bytes());
            buf.push(match t.class {
                TenantClass::Guaranteed => 0,
                TenantClass::BestEffort => 1,
            });
            buf.extend_from_slice(&t.slot.to_le_bytes());
            put_tasks(&mut buf, &t.tasks);
        }
        buf.extend_from_slice(&(self.quarantined.len() as u32).to_le_bytes());
        for &slot in &self.quarantined {
            buf.extend_from_slice(&slot.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and CRC-verifies an encoded snapshot.
    pub fn decode(bytes: &[u8]) -> Result<Self, RecoveryError> {
        if bytes.len() < 4 {
            return Err(RecoveryError::CorruptSnapshot("shorter than its CRC"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != expected {
            return Err(RecoveryError::CorruptSnapshot("CRC mismatch"));
        }
        let mut c = Cursor::new(body);
        let magic = c.take_u32().map_err(|_| truncated_snapshot())?;
        if magic != SNAP_MAGIC {
            return Err(RecoveryError::CorruptSnapshot("bad magic"));
        }
        let next_seq = c.take_u64().map_err(|_| truncated_snapshot())?;
        let count = c.take_u32().map_err(|_| truncated_snapshot())?;
        let mut tenants = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let tenant = c.take_u64().map_err(|_| truncated_snapshot())?;
            let class = match c.take_u8().map_err(|_| truncated_snapshot())? {
                0 => TenantClass::Guaranteed,
                1 => TenantClass::BestEffort,
                _ => return Err(RecoveryError::CorruptSnapshot("bad tenant class")),
            };
            let slot = c.take_u32().map_err(|_| truncated_snapshot())?;
            let tasks = take_tasks(&mut c).map_err(|_| truncated_snapshot())?;
            tenants.push(SnapshotTenant {
                tenant,
                class,
                slot,
                tasks,
            });
        }
        let qcount = c.take_u32().map_err(|_| truncated_snapshot())?;
        let mut quarantined = Vec::with_capacity(qcount as usize);
        for _ in 0..qcount {
            quarantined.push(c.take_u32().map_err(|_| truncated_snapshot())?);
        }
        c.finish()
            .map_err(|_| RecoveryError::CorruptSnapshot("trailing bytes"))?;
        Ok(Snapshot {
            next_seq,
            tenants,
            quarantined,
        })
    }
}

fn truncated_snapshot() -> RecoveryError {
    RecoveryError::CorruptSnapshot("truncated body")
}

/// What [`recover`] reconstructed from the journal directory.
#[derive(Debug)]
pub struct Recovery {
    /// Decoded snapshot, if one was ever compacted.
    pub snapshot: Option<Snapshot>,
    /// Whole, CRC-valid, in-sequence log records after the snapshot.
    pub ops: Vec<(u64, Op)>,
    /// The sequence number the journal resumes appending at.
    pub next_seq: u64,
    /// True when the log ended in a short or corrupt record. The torn
    /// bytes belong to an operation that was never acknowledged; they are
    /// dropped (and truncated by [`Journal::open`]), never half-applied.
    pub torn_tail: bool,
    /// Log bytes that survived validation (the truncation point).
    pub valid_len: u64,
}

/// A recovery failure that must stop the daemon (unlike a torn tail).
#[derive(Debug)]
pub enum RecoveryError {
    /// Reading the directory, snapshot or log failed.
    Io(io::Error),
    /// The snapshot exists but fails validation — real storage damage,
    /// since its write was atomic.
    CorruptSnapshot(&'static str),
    /// A CRC-valid record carries an out-of-order sequence number: the
    /// journal and the code disagree about history.
    SeqGap {
        /// Sequence number recovery expected next.
        expected: u64,
        /// Sequence number the record carries.
        got: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "journal I/O failed: {e}"),
            RecoveryError::CorruptSnapshot(why) => write!(f, "snapshot is corrupt: {why}"),
            RecoveryError::SeqGap { expected, got } => write!(
                f,
                "journal sequence gap: expected record {expected}, found {got}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Scans the journal directory and reconstructs the replayable history.
/// Never panics on torn or garbage log bytes; see [`Recovery::torn_tail`].
pub fn recover(dir: &Path) -> Result<Recovery, RecoveryError> {
    let snap_path = dir.join(SNAP_FILE);
    let snapshot = if snap_path.exists() {
        let bytes = fs::read(&snap_path)?;
        Some(Snapshot::decode(&bytes)?)
    } else {
        None
    };
    let mut next_seq = snapshot.as_ref().map_or(0, |s| s.next_seq);

    let wal_path = dir.join(WAL_FILE);
    let bytes = if wal_path.exists() {
        fs::read(&wal_path)?
    } else {
        Vec::new()
    };

    let mut ops = Vec::new();
    let mut pos = 0usize;
    let mut valid_len = 0u64;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            torn_tail = true;
            break;
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            torn_tail = true;
            break;
        }
        let body_start = pos + 8;
        let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
            torn_tail = true;
            break;
        };
        if crc32(payload) != crc {
            torn_tail = true;
            break;
        }
        let mut c = Cursor::new(payload);
        let (seq, op) = match c
            .take_u64()
            .and_then(|seq| Op::decode(&mut c).map(|op| (seq, op)))
        {
            Ok(rec) => rec,
            // A CRC-valid but undecodable payload is treated as tail
            // corruption: drop it and everything after.
            Err(_) => {
                torn_tail = true;
                break;
            }
        };
        pos = body_start + len as usize;
        if seq < next_seq {
            // Stale pre-compaction record (crash between snapshot rename
            // and log truncate): already folded into the snapshot.
            valid_len = pos as u64;
            continue;
        }
        if seq != next_seq {
            return Err(RecoveryError::SeqGap {
                expected: next_seq,
                got: seq,
            });
        }
        next_seq += 1;
        valid_len = pos as u64;
        ops.push((seq, op));
    }
    torn_tail |= valid_len < bytes.len() as u64;

    Ok(Recovery {
        snapshot,
        ops,
        next_seq,
        torn_tail,
        valid_len,
    })
}

/// The append-side handle. Obtained from [`Journal::open`] after
/// [`recover`]; appends are durable only after [`sync`](Journal::sync).
#[derive(Debug)]
pub struct Journal {
    wal: File,
    dir: PathBuf,
    next_seq: u64,
    /// Log bytes currently on disk (post-truncation).
    len: u64,
}

impl Journal {
    /// Opens the log for appending, truncating any torn tail the given
    /// recovery reported.
    pub fn open(dir: &Path, recovery: &Recovery) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .read(true)
            .open(dir.join(WAL_FILE))?;
        wal.set_len(recovery.valid_len)?;
        wal.seek(SeekFrom::Start(recovery.valid_len))?;
        if recovery.torn_tail {
            wal.sync_data()?;
        }
        Ok(Journal {
            wal,
            dir: dir.to_path_buf(),
            next_seq: recovery.next_seq,
            len: recovery.valid_len,
        })
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one record. NOT durable until [`sync`](Self::sync) — the
    /// daemon group-commits a batch with a single sync, and replies only
    /// after it.
    pub fn append(&mut self, op: &Op) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(64);
        payload.extend_from_slice(&seq.to_le_bytes());
        op.encode(&mut payload);
        let mut record = Vec::with_capacity(payload.len() + 8);
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.wal.write_all(&record)?;
        self.next_seq += 1;
        self.len += record.len() as u64;
        Ok(seq)
    }

    /// Makes every append so far durable.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync_data()
    }

    /// Atomically replaces the snapshot with `snapshot` and truncates the
    /// log. `snapshot.next_seq` must equal [`next_seq`](Self::next_seq)
    /// (everything appended so far is folded in).
    pub fn compact(&mut self, snapshot: &Snapshot) -> io::Result<()> {
        assert_eq!(
            snapshot.next_seq, self.next_seq,
            "compaction must fold in every appended record"
        );
        let tmp = self.dir.join(SNAP_TMP);
        let mut f = File::create(&tmp)?;
        f.write_all(&snapshot.encode())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        // Make the rename itself durable before dropping the log records
        // it supersedes.
        File::open(&self.dir)?.sync_all()?;
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.sync_data()?;
        self.len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bluescale-ctl-journal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Join {
                tenant: 10,
                class: TenantClass::Guaranteed,
                slot: 0,
                tasks: vec![TaskSpec {
                    period: 400,
                    wcet: 3,
                }],
            },
            Op::Join {
                tenant: 11,
                class: TenantClass::BestEffort,
                slot: 1,
                tasks: vec![TaskSpec {
                    period: 1000,
                    wcet: 5,
                }],
            },
            Op::Renegotiate {
                tenant: 10,
                slot: 0,
                tasks: vec![TaskSpec {
                    period: 200,
                    wcet: 2,
                }],
            },
            Op::Leave {
                tenant: 11,
                slot: 1,
            },
            Op::Quarantine {
                tenant: 10,
                slot: 0,
            },
        ]
    }

    fn fresh_journal(dir: &Path) -> Journal {
        let recovery = recover(dir).expect("recover empty");
        Journal::open(dir, &recovery).expect("open")
    }

    #[test]
    fn append_sync_recover_roundtrips() {
        let dir = test_dir("roundtrip");
        let mut j = fresh_journal(&dir);
        for (i, op) in sample_ops().iter().enumerate() {
            assert_eq!(j.append(op).expect("append"), i as u64);
        }
        j.sync().expect("sync");
        drop(j);

        let r = recover(&dir).expect("recover");
        assert!(!r.torn_tail);
        assert!(r.snapshot.is_none());
        assert_eq!(r.next_seq, 5);
        assert_eq!(
            r.ops.iter().map(|(_, op)| op.clone()).collect::<Vec<_>>(),
            sample_ops()
        );
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = test_dir("torn");
        let mut j = fresh_journal(&dir);
        for op in &sample_ops() {
            j.append(op).expect("append");
        }
        j.sync().expect("sync");
        drop(j);

        let full = fs::read(dir.join(WAL_FILE)).expect("read wal");
        // Cut the last record in half.
        let cut = full.len() - 7;
        fs::write(dir.join(WAL_FILE), &full[..cut]).expect("truncate");

        let r = recover(&dir).expect("torn tail is recoverable");
        assert!(r.torn_tail);
        assert_eq!(r.ops.len(), 4, "only whole records replay");
        assert_eq!(r.next_seq, 4);

        // Re-opening truncates the torn bytes and appends continue.
        let mut j = Journal::open(&dir, &r).expect("open");
        assert_eq!(j.append(&sample_ops()[4]).expect("append"), 4);
        j.sync().expect("sync");
        let r = recover(&dir).expect("recover");
        assert!(!r.torn_tail);
        assert_eq!(r.ops.len(), 5);
    }

    #[test]
    fn corrupt_record_body_is_a_torn_tail() {
        let dir = test_dir("corrupt");
        let mut j = fresh_journal(&dir);
        for op in &sample_ops() {
            j.append(op).expect("append");
        }
        j.sync().expect("sync");
        drop(j);

        let mut bytes = fs::read(dir.join(WAL_FILE)).expect("read wal");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join(WAL_FILE), &bytes).expect("write");

        let r = recover(&dir).expect("bit flip must not panic");
        assert!(r.torn_tail);
        assert_eq!(r.ops.len(), 4);
    }

    #[test]
    fn compaction_snapshots_and_resumes_sequence_numbers() {
        let dir = test_dir("compact");
        let mut j = fresh_journal(&dir);
        for op in &sample_ops() {
            j.append(op).expect("append");
        }
        j.sync().expect("sync");
        let snap = Snapshot {
            next_seq: j.next_seq(),
            tenants: vec![SnapshotTenant {
                tenant: 10,
                class: TenantClass::Guaranteed,
                slot: 0,
                tasks: vec![TaskSpec {
                    period: 200,
                    wcet: 2,
                }],
            }],
            quarantined: vec![0],
        };
        j.compact(&snap).expect("compact");
        assert!(j.is_empty());
        let post = Op::Join {
            tenant: 12,
            class: TenantClass::Guaranteed,
            slot: 1,
            tasks: vec![TaskSpec {
                period: 800,
                wcet: 4,
            }],
        };
        assert_eq!(j.append(&post).expect("append"), 5, "seq continues");
        j.sync().expect("sync");
        drop(j);

        let r = recover(&dir).expect("recover");
        assert_eq!(r.snapshot, Some(snap));
        assert_eq!(r.ops, vec![(5, post)]);
        assert_eq!(r.next_seq, 6);
        assert!(!r.torn_tail);
    }

    #[test]
    fn stale_pre_compaction_records_are_skipped() {
        // Simulate a crash between the snapshot rename and the log
        // truncate: snapshot says next_seq=5 but the log still holds
        // records 0..5. Recovery must skip them, not SeqGap.
        let dir = test_dir("stale");
        let mut j = fresh_journal(&dir);
        for op in &sample_ops() {
            j.append(op).expect("append");
        }
        j.sync().expect("sync");
        let snap = Snapshot {
            next_seq: 5,
            tenants: Vec::new(),
            quarantined: Vec::new(),
        };
        fs::write(dir.join(SNAP_FILE), snap.encode()).expect("write snapshot");
        drop(j);

        let r = recover(&dir).expect("recover");
        assert_eq!(r.snapshot, Some(snap));
        assert!(r.ops.is_empty(), "stale records fold into the snapshot");
        assert_eq!(r.next_seq, 5);
        assert!(!r.torn_tail);
    }

    #[test]
    fn corrupt_snapshot_is_fatal() {
        let dir = test_dir("snapbad");
        let snap = Snapshot {
            next_seq: 1,
            tenants: Vec::new(),
            quarantined: Vec::new(),
        };
        let mut bytes = snap.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(dir.join(SNAP_FILE), &bytes).expect("write");
        assert!(matches!(
            recover(&dir),
            Err(RecoveryError::CorruptSnapshot(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
