//! Randomized tests of the workload crate: generator bounds and parser
//! robustness (failure injection — arbitrary input must never panic the
//! parser). Driven by fixed-seed [`SimRng`] sweeps so every case is
//! reproducible (the container has no registry access for `proptest`).

use bluescale_sim::rng::SimRng;
use bluescale_workload::casestudy::{generate as gen_cs, CaseStudyConfig};
use bluescale_workload::file;
use bluescale_workload::synthetic::{generate as gen_syn, SyntheticConfig};
use bluescale_workload::total_utilization;

/// A random string of 0–400 chars mixing printable ASCII, whitespace,
/// control bytes and multi-byte scalars.
fn random_text(rng: &mut SimRng) -> String {
    let len = rng.range_usize(0, 401);
    (0..len)
        .map(|_| match rng.range_u64(0, 10) {
            0 => '\n',
            1 => '\t',
            2 => char::from_u32(rng.range_u64(0, 32) as u32).unwrap_or('\0'),
            3 => char::from_u32(rng.range_u64(0x80, 0x2000) as u32).unwrap_or('¿'),
            _ => (rng.range_u64(0x20, 0x7F) as u8) as char,
        })
        .collect()
}

/// Arbitrary bytes: the parser returns an error or a valid workload — it
/// never panics.
#[test]
fn parser_never_panics() {
    let mut rng = SimRng::seed_from(0x9A25E);
    for _ in 0..400 {
        let input = random_text(&mut rng);
        let _ = file::from_str(&input);
    }
}

/// Structured-ish garbage built from the format's own keywords.
#[test]
fn parser_survives_keyword_soup() {
    const WORDS: [&str; 12] = [
        "client",
        "task",
        "period",
        "deadline",
        "wcet",
        "0",
        "1",
        "99999999999999999999",
        "-3",
        "x",
        "\n",
        "# c",
    ];
    let mut rng = SimRng::seed_from(0x50FF);
    for _ in 0..300 {
        let n = rng.range_usize(0, 60);
        let mut text = String::from("# bluescale workload v1\n");
        for _ in 0..n {
            text.push_str(WORDS[rng.range_usize(0, WORDS.len())]);
            text.push(' ');
        }
        let _ = file::from_str(&text);
    }
}

/// Every parsed workload round-trips: parse(render(w)) == w.
#[test]
fn generated_workloads_round_trip() {
    let mut meta = SimRng::seed_from(0x2019);
    for case in 0..100 {
        let seed = meta.next_u64();
        let clients = meta.range_usize(1, 32);
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(clients), &mut rng);
        let text = file::to_string(&sets);
        assert_eq!(
            file::from_str(&text).expect("own output parses"),
            sets,
            "case {case} (seed {seed}, {clients} clients)"
        );
    }
}

/// `save`/`load` round-trips through the filesystem for seeded sweeps of
/// both generators (the on-disk path must add nothing to `to_string`).
#[test]
fn save_load_round_trips_for_seeded_sweeps() {
    let dir = std::env::temp_dir().join("bluescale-proptest-saveload");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut meta = SimRng::seed_from(0x5AFE);
    for case in 0..20 {
        let seed = meta.next_u64();
        let clients = meta.range_usize(1, 24);
        let mut rng = SimRng::seed_from(seed);
        let sets = if case % 2 == 0 {
            gen_syn(&SyntheticConfig::fig6(clients), &mut rng)
        } else {
            gen_cs(&CaseStudyConfig::fig7(clients, 0.4), &mut rng)
        };
        let path = dir.join(format!("case-{case}.bsw"));
        file::save(&path, &sets).expect("save succeeds");
        assert_eq!(
            file::load(&path).expect("own file loads"),
            sets,
            "case {case} (seed {seed}, {clients} clients)"
        );
        std::fs::remove_file(&path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Line-boundary truncation: every completed client parses back exactly,
/// and the cut-off tail can only shorten the last client's task list —
/// never corrupt an earlier one.
#[test]
fn line_truncated_files_parse_to_a_prefix() {
    let mut meta = SimRng::seed_from(0x7C07);
    for case in 0..40 {
        let seed = meta.next_u64();
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(meta.range_usize(1, 16)), &mut rng);
        let text = file::to_string(&sets);
        let lines: Vec<&str> = text.lines().collect();
        let keep = rng.range_usize(1, lines.len() + 1);
        let truncated = lines[..keep].join("\n");
        let parsed = file::from_str(&truncated)
            .unwrap_or_else(|e| panic!("case {case}: line-truncated input must parse: {e}"));
        assert!(parsed.len() <= sets.len(), "case {case}: extra clients");
        for (c, set) in parsed.iter().enumerate() {
            if c + 1 < parsed.len() {
                assert_eq!(set, &sets[c], "case {case}: completed client {c} corrupted");
            } else {
                assert_eq!(
                    set.tasks(),
                    &sets[c].tasks()[..set.len()],
                    "case {case}: last client {c} must be a task prefix"
                );
            }
        }
    }
}

/// Byte-level truncation (possibly mid-token): the parser must error or
/// return a workload that round-trips — it must never panic or produce
/// unparsable output.
#[test]
fn byte_truncated_files_never_panic() {
    let mut meta = SimRng::seed_from(0xB17E);
    for _ in 0..60 {
        let seed = meta.next_u64();
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(8), &mut rng);
        let text = file::to_string(&sets);
        let mut cut = rng.range_usize(0, text.len() + 1);
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        if let Ok(parsed) = file::from_str(&text[..cut]) {
            assert_eq!(
                file::from_str(&file::to_string(&parsed)).expect("reserialization parses"),
                parsed
            );
        }
    }
}

/// Filesystem error paths: a missing file and malformed on-disk content
/// both surface as typed errors, not panics.
#[test]
fn load_error_paths_are_typed() {
    let dir = std::env::temp_dir().join("bluescale-proptest-errors");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let missing = file::load(dir.join("does-not-exist.bsw"));
    assert!(
        matches!(missing, Err(file::ParseWorkloadError::Io(_))),
        "missing file must be an Io error"
    );
    let bad = dir.join("bad.bsw");
    std::fs::write(&bad, "not a workload\n").expect("write");
    assert!(
        matches!(file::load(&bad), Err(file::ParseWorkloadError::BadHeader)),
        "garbage must be rejected at the header"
    );
    std::fs::remove_file(&bad).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Synthetic generation respects its utilization band (with rounding
/// slack) for arbitrary seeds.
#[test]
fn synthetic_utilization_in_band() {
    let mut meta = SimRng::seed_from(0xBA2D);
    for case in 0..100 {
        let seed = meta.next_u64();
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(16), &mut rng);
        let u = total_utilization(&sets);
        assert!(u > 0.5 && u < 1.05, "case {case}: utilization {u}");
    }
}

/// Case-study generation hits its target within tolerance for arbitrary
/// seeds and targets.
#[test]
fn case_study_hits_target() {
    let mut meta = SimRng::seed_from(0xCA5E);
    for case in 0..100 {
        let seed = meta.next_u64();
        let decile = meta.range_u64(3, 9) as u32;
        let target = decile as f64 / 10.0;
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_cs(&CaseStudyConfig::fig7(16, target), &mut rng);
        let u = total_utilization(&sets);
        assert!(
            (u - target).abs() < 0.15,
            "case {case}: target {target}, got {u}"
        );
    }
}
