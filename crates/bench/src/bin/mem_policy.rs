//! Runs the memory-policy zoo matrix — 4 policies × 2 seam-bearing
//! interconnects × fault scenarios, plus the dense throughput side of
//! the frontier — writing `results/BENCH_mem_policy.json`.
//!
//! The run asserts its headline claim: under `RogueDemand` on AXI-IC^RT,
//! per-bank regulation keeps every victim miss-free while the
//! unregulated controller shows measurable victim degradation.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin mem_policy -- \
//!    [--clients N] [--horizon N] [--seed N] [--json path]`

use bluescale_bench::mem_policy::{render, render_json, run, MemPolicyConfigSweep};
use bluescale_bench::{arg_u64, arg_usize, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = MemPolicyConfigSweep::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    config.seed = arg_u64(&args, "--seed", config.seed);

    let report = run(&config);
    println!("{}", render(&report));

    let json = render_json(&report);
    let out =
        arg_value(&args, "--json").unwrap_or_else(|| "results/BENCH_mem_policy.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
