//! The next-event contract used by the idle-cycle fast-forward path.
//!
//! A cycle-driven kernel steps every component every cycle, so wall-clock
//! grows as O(cycles × components) even when the whole system is idle. The
//! standard discrete-event fix is to let each component report the earliest
//! future cycle at which its observable state can change; when every
//! component agrees that nothing happens before cycle `X`, the kernel jumps
//! straight to `X`, advancing pure countdown state (server P/B counters) in
//! closed form instead of `X - now` unit ticks.
//!
//! The contract is deliberately *conservative*: a component may report an
//! earlier cycle than strictly necessary (a spurious wake-up merely costs
//! one per-cycle step), but it must never report a later one — that would
//! skip an observable event and break the bit-identicality guarantee the
//! differential tests pin.

use crate::Cycle;

/// A component that can promise "nothing observable happens before cycle X".
///
/// Implementations must uphold, for every `now` at which the component is
/// quiescent (no work in flight):
///
/// * **Soundness** — between `now` (inclusive) and `next_event(now)`
///   (exclusive) the component, stepped per-cycle with no external input,
///   produces no observable effect: no request released or forwarded, no
///   grant, no completion, no metric counted, no fault injected.
/// * **Monotonicity** — `next_event(now) >= now`. Returning `now` itself
///   means "I am busy this very cycle; do not jump".
/// * [`Cycle::MAX`] means "idle forever absent external input".
pub trait NextEvent {
    /// The earliest cycle ≥ `now` at which this component's observable
    /// state can change on its own.
    fn next_event(&self, now: Cycle) -> Cycle;
}

/// Folds component reports into a jump target: the earliest of `reports`,
/// clamped to `horizon`. Returns `None` (do not jump) unless the fold lands
/// strictly after `now` — any component reporting `now` or earlier vetoes
/// the jump.
pub fn jump_target<I>(now: Cycle, horizon: Cycle, reports: I) -> Option<Cycle>
where
    I: IntoIterator<Item = Cycle>,
{
    let mut target = horizon;
    for report in reports {
        if report <= now {
            return None;
        }
        target = target.min(report);
    }
    (target > now).then_some(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_target_takes_minimum_report() {
        assert_eq!(jump_target(10, 1000, [50, 30, 900]), Some(30));
    }

    #[test]
    fn busy_component_vetoes_jump() {
        assert_eq!(jump_target(10, 1000, [50, 10]), None);
        assert_eq!(jump_target(10, 1000, [9]), None);
    }

    #[test]
    fn idle_forever_jumps_to_horizon() {
        assert_eq!(jump_target(10, 1000, [Cycle::MAX, Cycle::MAX]), Some(1000));
        assert_eq!(jump_target(10, 1000, std::iter::empty()), Some(1000));
    }

    #[test]
    fn at_horizon_no_jump() {
        assert_eq!(jump_target(1000, 1000, [Cycle::MAX]), None);
    }
}
