//! Kill-at-every-journal-byte recovery sweep.
//!
//! Builds a reference history of admission operations, journaling each
//! like the daemon does, and records the admission-state digest after
//! every durable record. Then, for **every byte length** of the journal
//! file, simulates a crash by truncating the log at that boundary and
//! recovering into a fresh registry. The invariant:
//!
//! * recovery never panics and never reports a corrupt journal for a
//!   mere torn tail;
//! * the recovered state equals (digest-identical) the reference state
//!   after the longest whole-record prefix — a half-written record is
//!   torn tail, never a half-admitted tenant;
//! * `torn_tail` is reported exactly when the cut falls inside a record.

use bluescale_ctl::journal::{self, Journal, Op};
use bluescale_ctl::proto::{TaskSpec, TenantClass};
use bluescale_ctl::registry::{ApplyOutcome, ControlRegistry};
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn test_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bluescale-ctl-sweep-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spec(period: u64, wcet: u64) -> TaskSpec {
    TaskSpec { period, wcet }
}

/// The reference history: joins, renegotiations, leaves, a
/// circuit-breaker quarantine demotion, and a rejoin into a freed slot —
/// enough op variety to cover every record type.
fn history() -> Vec<(u64, TenantClass, Vec<TaskSpec>, HistoryOp)> {
    use HistoryOp::*;
    let g = TenantClass::Guaranteed;
    let b = TenantClass::BestEffort;
    vec![
        (10, g, vec![spec(400, 2)], Join),
        (11, b, vec![spec(1000, 5)], Join),
        (12, g, vec![spec(500, 1), spec(2000, 4)], Join),
        (10, g, vec![spec(200, 2)], Renegotiate),
        (11, b, vec![], Leave),
        (13, b, vec![spec(800, 3)], Join),
        (12, g, vec![spec(400, 1)], Renegotiate),
        (12, g, vec![], Quarantine),
        (13, b, vec![], Leave),
        (14, g, vec![spec(1000, 2)], Join),
        (10, g, vec![], Leave),
        (15, b, vec![spec(600, 2)], Join),
        (14, g, vec![spec(500, 2)], Renegotiate),
    ]
}

#[derive(Clone, Copy)]
enum HistoryOp {
    Join,
    Renegotiate,
    Leave,
    Quarantine,
}

/// Applies the history to a registry + journal exactly like the daemon's
/// admission worker: apply, append the journaled op, sync per op (the
/// sweep needs every record boundary durable). Returns the digest after
/// each record, indexed by record count.
fn run_reference(dir: &Path) -> Vec<u64> {
    let recovery = journal::recover(dir).expect("fresh dir recovers empty");
    assert!(recovery.snapshot.is_none());
    assert!(recovery.ops.is_empty());
    let mut journal = Journal::open(dir, &recovery).expect("open journal");
    let mut reg = ControlRegistry::new(8).expect("build registry");
    let mut digests = vec![reg.state_digest()];
    for (tenant, class, tasks, op) in history() {
        let (outcome, journal_op) = match op {
            HistoryOp::Join => {
                let o = reg.try_join(tenant, class, &tasks);
                let jop = match o {
                    ApplyOutcome::Admitted { slot, .. } => Some(Op::Join {
                        tenant,
                        class,
                        slot,
                        tasks: tasks.clone(),
                    }),
                    _ => None,
                };
                (o, jop)
            }
            HistoryOp::Renegotiate => {
                let o = reg.try_renegotiate(tenant, &tasks);
                let jop = match o {
                    ApplyOutcome::Admitted { slot, .. } => Some(Op::Renegotiate {
                        tenant,
                        slot,
                        tasks: tasks.clone(),
                    }),
                    _ => None,
                };
                (o, jop)
            }
            HistoryOp::Leave => {
                let o = reg.try_leave(tenant);
                let jop = match o {
                    ApplyOutcome::Admitted { slot, .. } => Some(Op::Leave { tenant, slot }),
                    _ => None,
                };
                (o, jop)
            }
            HistoryOp::Quarantine => {
                let slot = reg.quarantine(tenant).expect("quarantine demotes");
                (
                    ApplyOutcome::Admitted {
                        slot,
                        transition_cycles: 0,
                    },
                    Some(Op::Quarantine { tenant, slot }),
                )
            }
        };
        let op =
            journal_op.unwrap_or_else(|| panic!("reference history must admit, got {outcome:?}"));
        journal.append(&op).expect("append");
        journal.sync().expect("sync");
        digests.push(reg.state_digest());
    }
    digests
}

/// Record boundaries (byte offsets after each whole record) of the WAL.
fn record_boundaries(wal: &[u8]) -> Vec<usize> {
    let mut bounds = vec![0usize];
    let mut pos = 0usize;
    while pos + 8 <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        let end = pos + 8 + len;
        if end > wal.len() {
            break;
        }
        pos = end;
        bounds.push(pos);
    }
    assert_eq!(pos, wal.len(), "reference WAL has no torn tail");
    bounds
}

#[test]
fn crash_at_every_byte_recovers_the_longest_whole_prefix() {
    let ref_dir = test_dir("ref");
    let digests = run_reference(&ref_dir);
    let wal = fs::read(ref_dir.join(journal::WAL_FILE)).expect("read reference WAL");
    let bounds = record_boundaries(&wal);
    assert_eq!(
        bounds.len(),
        digests.len(),
        "one digest per record boundary"
    );

    for cut in 0..=wal.len() {
        let dir = test_dir("cut");
        fs::write(dir.join(journal::WAL_FILE), &wal[..cut]).expect("write truncated WAL");

        // Recovery must never panic or hard-fail on a torn tail.
        let recovery = journal::recover(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery failed: {e}"));

        // The longest whole-record prefix at or below the cut.
        let prefix = bounds.iter().rposition(|&b| b <= cut).expect("bound 0");
        assert_eq!(
            recovery.ops.len(),
            prefix,
            "cut at byte {cut}: wrong record count"
        );
        let torn = cut != bounds[prefix];
        assert_eq!(
            recovery.torn_tail, torn,
            "cut at byte {cut}: torn-tail misreported"
        );
        assert_eq!(
            recovery.valid_len, bounds[prefix] as u64,
            "cut at byte {cut}: wrong valid length"
        );

        // Replay reaches the reference state for that prefix — never a
        // half-admitted tenant.
        let mut reg = ControlRegistry::new(8).expect("build");
        for (seq, op) in &recovery.ops {
            reg.replay(*seq, op)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: replay diverged: {e}"));
        }
        assert_eq!(
            reg.state_digest(),
            digests[prefix],
            "cut at byte {cut}: recovered state diverges from reference"
        );

        // Re-opening truncates the torn tail and accepts new appends.
        let mut journal = Journal::open(&dir, &recovery).expect("reopen");
        assert_eq!(journal.len(), bounds[prefix] as u64);
        assert_eq!(journal.next_seq(), prefix as u64);
        let extra = Op::Join {
            tenant: 99,
            class: TenantClass::BestEffort,
            slot: 7,
            tasks: vec![spec(4000, 1)],
        };
        journal.append(&extra).expect("append after truncation");
        journal.sync().expect("sync after truncation");
        let reopened = journal::recover(&dir).expect("recover appended");
        assert_eq!(reopened.ops.len(), prefix + 1);
        assert!(!reopened.torn_tail);

        fs::remove_dir_all(&dir).ok();
    }
    fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn crash_between_compaction_rename_and_truncate_is_recovered() {
    // Build a journal, compact it, then re-append the pre-compaction
    // records to simulate a crash after the snapshot rename but before
    // the WAL truncation. Recovery must skip the stale records.
    let dir = test_dir("compact-crash");
    let recovery = journal::recover(&dir).expect("fresh");
    let mut journal = Journal::open(&dir, &recovery).expect("open");
    let mut reg = ControlRegistry::new(8).expect("build");

    let mut pre_compaction = Vec::new();
    for (tenant, tasks) in [(1u64, spec(400, 2)), (2, spec(1000, 3))] {
        let ApplyOutcome::Admitted { slot, .. } =
            reg.try_join(tenant, TenantClass::Guaranteed, &[tasks])
        else {
            panic!("join must admit");
        };
        let op = Op::Join {
            tenant,
            class: TenantClass::Guaranteed,
            slot,
            tasks: vec![tasks],
        };
        journal.append(&op).expect("append");
        pre_compaction.push(op);
    }
    journal.sync().expect("sync");
    let wal_before = fs::read(dir.join(journal::WAL_FILE)).expect("read WAL");

    journal
        .compact(&reg.snapshot(journal.next_seq()))
        .expect("compact");
    // Undo the truncation: put the stale records back under the snapshot.
    {
        use std::io::Write as _;
        let mut f = OpenOptions::new()
            .write(true)
            .open(dir.join(journal::WAL_FILE))
            .expect("reopen WAL");
        f.write_all(&wal_before).expect("restore stale WAL");
        f.sync_data().expect("sync stale WAL");
    }

    let recovered = journal::recover(&dir).expect("recover post-crash");
    assert!(recovered.snapshot.is_some(), "snapshot survived");
    assert!(
        recovered.ops.is_empty(),
        "stale pre-compaction records are skipped, got {:?}",
        recovered.ops
    );
    let mut fresh = ControlRegistry::new(8).expect("build");
    fresh
        .restore(recovered.snapshot.as_ref().unwrap())
        .expect("restore");
    assert_eq!(fresh.state_digest(), reg.state_digest());
    fs::remove_dir_all(&dir).ok();
}
