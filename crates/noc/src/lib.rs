//! Mesh network-on-chip substrate.
//!
//! The paper's platform connects its system elements "using BlueScale and a
//! 9×9 mesh type open-source NoC" — the NoC carries inter-processor
//! communication, and in *legacy* systems (no dedicated real-time memory
//! interconnect, the "Legacy" series of Fig 5) it is the memory path too.
//! This crate provides that substrate:
//!
//! * [`mesh::Mesh`] — a W×H grid of XY-routed, round-robin-arbitrated
//!   routers moving one packet per link per cycle.
//! * [`memory::NocMemoryInterconnect`] — memory-over-NoC: clients on mesh
//!   nodes reach a memory controller attached to a corner node. Implements
//!   [`bluescale_interconnect::Interconnect`], so the experiment harness
//!   can compare the legacy memory path head-to-head with BlueScale and
//!   the other real-time interconnects.
//!
//! The routers are deliberately *not* deadline-aware: that is the whole
//! point of the legacy comparison.

#![warn(missing_docs)]

pub mod memory;
pub mod mesh;

pub use memory::NocMemoryInterconnect;
pub use mesh::{Mesh, MeshConfig, NodeId};
