//! Maximum synthesizable clock frequency per system (Fig 5(c)).
//!
//! Distributed interconnects synthesize each node independently, so their
//! critical path — one small arbiter — is constant in the client count.
//! The centralized AXI-IC^RT's monolithic arbiter grows with its fan-in
//! and eventually becomes the system's critical path: below the legacy
//! system's own f_max past ~32 clients (the paper's Obs 3).

/// Which system's maximum frequency to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrequencyTarget {
    /// The many-core system without a real-time interconnect (MicroBlaze
    /// cores + plain bus): its cores set the critical path.
    Legacy,
    /// The system with the centralized AXI-IC^RT.
    AxiIcRt,
    /// The system with BlueScale.
    BlueScale,
}

/// Maximum synthesizable frequency in MHz for `target` at `clients`
/// clients.
///
/// Model: the legacy system is flat at 200 MHz (MicroBlaze timing
/// closure); BlueScale is flat at 380 MHz (a Scale Element's single-cycle
/// scheduling circuit is small and synthesized independently); AXI-IC^RT
/// degrades as `480 / (1 + 0.035·n)` — its monolithic comparator tree and
/// switch box grow with the port count.
///
/// # Panics
///
/// Panics if `clients` is zero.
///
/// # Example
///
/// ```
/// use bluescale_hwcost::frequency::{max_frequency_mhz, FrequencyTarget};
///
/// // Past 32 clients the centralized arbiter throttles the whole system…
/// assert!(max_frequency_mhz(FrequencyTarget::AxiIcRt, 64)
///     < max_frequency_mhz(FrequencyTarget::Legacy, 64));
/// // …while BlueScale never does.
/// assert!(max_frequency_mhz(FrequencyTarget::BlueScale, 128)
///     > max_frequency_mhz(FrequencyTarget::Legacy, 128));
/// ```
pub fn max_frequency_mhz(target: FrequencyTarget, clients: usize) -> f64 {
    assert!(clients > 0, "at least one client required");
    match target {
        FrequencyTarget::Legacy => 200.0,
        FrequencyTarget::BlueScale => 380.0,
        FrequencyTarget::AxiIcRt => 480.0 / (1.0 + 0.035 * clients as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_frequencies_are_flat() {
        for eta in 1..=7 {
            let n = 1usize << eta;
            assert_eq!(max_frequency_mhz(FrequencyTarget::Legacy, n), 200.0);
            assert_eq!(max_frequency_mhz(FrequencyTarget::BlueScale, n), 380.0);
        }
    }

    #[test]
    fn axi_frequency_decreases_monotonically() {
        let mut prev = f64::INFINITY;
        for eta in 1..=7 {
            let f = max_frequency_mhz(FrequencyTarget::AxiIcRt, 1 << eta);
            assert!(f < prev);
            prev = f;
        }
    }

    #[test]
    fn axi_crosses_legacy_after_32_clients() {
        // Obs 3: "when the system had more than 32 clients (η > 5), the
        // maximum frequency of AXI-IC^RT became lower than the legacy
        // system".
        assert!(max_frequency_mhz(FrequencyTarget::AxiIcRt, 32) > 200.0 * 0.9);
        assert!(max_frequency_mhz(FrequencyTarget::AxiIcRt, 64) < 200.0);
        assert!(max_frequency_mhz(FrequencyTarget::AxiIcRt, 128) < 200.0);
    }

    #[test]
    fn bluescale_always_above_legacy() {
        for eta in 1..=7 {
            let n = 1usize << eta;
            assert!(
                max_frequency_mhz(FrequencyTarget::BlueScale, n)
                    > max_frequency_mhz(FrequencyTarget::Legacy, n)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let _ = max_frequency_mhz(FrequencyTarget::Legacy, 0);
    }
}
