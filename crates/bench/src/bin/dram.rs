//! Runs the DRAM service-time sensitivity extension (see DESIGN.md).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin dram -- [--clients N] [--trials N] [--horizon N]`

use bluescale_bench::dram::{render, run, DramConfigSweep};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = DramConfigSweep::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    let rows = run(&config);
    println!("{}", render(&config, &rows));
}
