//! Runtime guards: detection and containment for misbehaving traffic.
//!
//! The analytic side of BlueScale proves that *admitted* clients meet their
//! deadlines; the guard layer watches the running system for the cases the
//! analysis cannot see — lost responses, hardware faults, clients whose
//! runtime behaviour exceeds their declared parameters — and reacts
//! deterministically:
//!
//! * **Deadline-miss detection** — every accepted request is tracked until
//!   delivery; the cycle its deadline passes with the response still
//!   outstanding, a miss is flagged (counter + typed event), without
//!   waiting for the late response to eventually arrive.
//! * **Watchdog retry** — if a response has not returned `timeout` cycles
//!   after acceptance, the request is re-injected (up to `max_retries`
//!   times). Duplicate deliveries — the retry racing the original — are
//!   suppressed and tallied, so completion counts stay exact.
//! * **Quarantine** — a client accumulating `miss_threshold` detected
//!   misses is demoted to best-effort through
//!   [`Interconnect::demote_client`](crate::Interconnect::demote_client),
//!   which re-runs admission along its request path.
//!
//! All guards are **off by default** and, when on, feed only on the guard's
//! own bookkeeping — a fully guarded fault-free run is bit-identical to an
//! unguarded one except for the quarantine guard, which by design feeds
//! back into scheduling (and therefore only acts when misses actually
//! occur, which admitted fault-free runs never exhibit).

use crate::MemoryRequest;
use bluescale_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Why a [`GuardConfig`] was rejected by [`GuardConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardConfigError {
    /// The watchdog timeout is shorter than the longest deadline window of
    /// the guarded workload. Such a watchdog re-injects *healthy* slow
    /// requests — the duplicates steal budget from admitted traffic and the
    /// guard itself breaks isolation (the PR-3 isolation-bench finding,
    /// now enforced instead of documented).
    WatchdogBelowDeadlineWindow {
        /// The configured watchdog timeout.
        timeout: Cycle,
        /// The longest deadline window (max task period) in the workload.
        longest_window: Cycle,
    },
}

impl fmt::Display for GuardConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardConfigError::WatchdogBelowDeadlineWindow {
                timeout,
                longest_window,
            } => write!(
                f,
                "watchdog timeout {timeout} is below the longest deadline window \
                 {longest_window}: the watchdog would re-inject healthy slow requests \
                 and break isolation (raise the timeout above every deadline window, \
                 or use Cycle::MAX for detection-only)"
            ),
        }
    }
}

impl std::error::Error for GuardConfigError {}

/// Watchdog parameters: when to give up waiting and how often to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles after acceptance (or after a retry) before re-injecting.
    /// Must exceed the worst-case fault-free response time, or the
    /// watchdog will duplicate slow-but-healthy requests.
    pub timeout: Cycle,
    /// Maximum re-injections per request.
    pub max_retries: u32,
}

/// Quarantine policy: when to demote a client to best-effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Detected deadline misses after which the client is demoted.
    pub miss_threshold: u64,
}

/// Which guards the harness runs. Everything defaults to off, keeping the
/// guarded-but-idle path one branch per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardConfig {
    /// Flag requests whose deadline passes while still outstanding.
    pub deadline_miss_detection: bool,
    /// Re-inject requests whose response never arrived.
    pub watchdog: Option<WatchdogConfig>,
    /// Demote clients that accumulate detected misses (implies
    /// deadline-miss detection).
    pub quarantine: Option<QuarantinePolicy>,
}

impl GuardConfig {
    /// All guards off (the default).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any guard needs per-request outstanding tracking.
    pub fn tracks(&self) -> bool {
        self.deadline_miss_detection || self.watchdog.is_some() || self.quarantine.is_some()
    }

    /// Whether deadline misses must be detected (explicitly, or because
    /// the quarantine guard feeds on them).
    pub fn detects_misses(&self) -> bool {
        self.deadline_miss_detection || self.quarantine.is_some()
    }

    /// Checks this configuration against the workload it is about to
    /// guard. `longest_window` is the longest deadline window (max task
    /// period) across all guarded clients — a request can legitimately
    /// stay outstanding for that many cycles, so a watchdog timeout below
    /// it re-injects healthy requests and breaks the isolation the guard
    /// exists to protect.
    ///
    /// # Errors
    ///
    /// [`GuardConfigError::WatchdogBelowDeadlineWindow`] when a watchdog is
    /// armed with `timeout < longest_window`.
    pub fn validate(&self, longest_window: Cycle) -> Result<(), GuardConfigError> {
        if let Some(w) = &self.watchdog {
            if w.timeout < longest_window {
                return Err(GuardConfigError::WatchdogBelowDeadlineWindow {
                    timeout: w.timeout,
                    longest_window,
                });
            }
        }
        Ok(())
    }
}

/// One tracked in-flight request.
#[derive(Debug, Clone)]
pub(crate) struct Outstanding {
    pub(crate) client: u32,
    /// A clone for re-injection; kept only while a watchdog is armed.
    pub(crate) request: Option<MemoryRequest>,
    pub(crate) retries: u32,
    pub(crate) miss_flagged: bool,
}

/// The guard layer's deterministic bookkeeping. All collections are
/// ordered (B-trees / a binary heap over totally ordered keys), so guard
/// decisions replay identically for identical traffic.
#[derive(Debug, Default)]
pub struct GuardState {
    /// Accepted requests whose response has not been delivered.
    pub(crate) outstanding: BTreeMap<u64, Outstanding>,
    /// `(deadline, id)` min-heap feeding the miss detector.
    pub(crate) deadline_heap: BinaryHeap<Reverse<(Cycle, u64)>>,
    /// `(due, id)` watchdog timers, ordered by expiry.
    pub(crate) retry_due: BTreeSet<(Cycle, u64)>,
    /// Detected misses per client (the quarantine guard's evidence).
    pub(crate) miss_tally: BTreeMap<u32, u64>,
    /// Clients already demoted (or whose demotion was attempted).
    pub(crate) quarantined: BTreeSet<u32>,
}

impl GuardState {
    /// Creates empty guard state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests accepted but not yet delivered — in flight inside the
    /// interconnect or permanently lost to a fault. With duplicate
    /// suppression active, `issued == completed + outstanding` is the
    /// request-conservation invariant the fault smoke test asserts.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Clients demoted (or attempted) by the quarantine guard, ascending.
    pub fn quarantined(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    /// Detected deadline misses charged to `client` so far.
    pub fn detected_misses(&self, client: u32) -> u64 {
        self.miss_tally.get(&client).copied().unwrap_or(0)
    }

    /// Starts tracking an accepted request. `keep_request` carries the
    /// clone a watchdog needs for re-injection (`None` when no watchdog is
    /// armed).
    pub(crate) fn track(
        &mut self,
        id: u64,
        client: u32,
        deadline: Cycle,
        keep_request: Option<MemoryRequest>,
        now: Cycle,
        config: &GuardConfig,
    ) {
        if config.detects_misses() {
            self.deadline_heap.push(Reverse((deadline, id)));
        }
        if let Some(w) = &config.watchdog {
            // Saturating: a sentinel timeout like `Cycle::MAX` means
            // "detection-only, never retry" and must not overflow the timer
            // arithmetic; the timer lands at `Cycle::MAX` and simply never
            // comes due.
            self.retry_due
                .insert((now.saturating_add(w.timeout.max(1)), id));
        }
        self.outstanding.insert(
            id,
            Outstanding {
                client,
                request: keep_request,
                retries: 0,
                miss_flagged: false,
            },
        );
    }

    /// Closes a delivered request. Returns `true` for the first delivery
    /// and `false` for a duplicate (or a request accepted before tracking
    /// was enabled) — the caller suppresses the latter.
    pub(crate) fn close(&mut self, id: u64) -> bool {
        self.outstanding.remove(&id).is_some()
    }

    /// The earliest cycle at which a guard can act on its own: the next
    /// deadline-miss firing (a deadline `d` is flagged at cycle `d + 1`,
    /// when it has passed with the response still outstanding) or the next
    /// watchdog expiry. [`Cycle::MAX`] with no timers armed.
    ///
    /// Conservative on purpose: heap or timer entries whose request has
    /// already been delivered still report a wake-up — the guard tick at
    /// that cycle then discards them without observable effect, so a
    /// spurious wake-up costs one stepped cycle, never correctness.
    pub fn next_event(&self) -> Cycle {
        let mut next = Cycle::MAX;
        if let Some(&Reverse((deadline, _))) = self.deadline_heap.peek() {
            next = next.min(deadline.saturating_add(1));
        }
        if let Some(&(due, _)) = self.retry_due.iter().next() {
            next = next.min(due);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_tracks_nothing() {
        let c = GuardConfig::disabled();
        assert!(!c.tracks());
        assert!(!c.detects_misses());
    }

    #[test]
    fn quarantine_implies_detection_and_tracking() {
        let c = GuardConfig {
            quarantine: Some(QuarantinePolicy { miss_threshold: 5 }),
            ..GuardConfig::disabled()
        };
        assert!(c.tracks());
        assert!(c.detects_misses());
        let w = GuardConfig {
            watchdog: Some(WatchdogConfig {
                timeout: 100,
                max_retries: 2,
            }),
            ..GuardConfig::disabled()
        };
        assert!(w.tracks());
        assert!(!w.detects_misses());
    }

    #[test]
    fn track_and_close_round_trip() {
        let config = GuardConfig {
            deadline_miss_detection: true,
            ..GuardConfig::disabled()
        };
        let mut state = GuardState::new();
        state.track(7, 3, 100, None, 0, &config);
        assert_eq!(state.outstanding(), 1);
        assert!(state.close(7), "first delivery is fresh");
        assert!(!state.close(7), "second delivery is a duplicate");
        assert_eq!(state.outstanding(), 0);
    }

    #[test]
    fn watchdog_arms_a_timer_per_tracked_request() {
        let config = GuardConfig {
            watchdog: Some(WatchdogConfig {
                timeout: 50,
                max_retries: 1,
            }),
            ..GuardConfig::disabled()
        };
        let mut state = GuardState::new();
        state.track(1, 0, 100, None, 10, &config);
        state.track(2, 0, 100, None, 12, &config);
        let timers: Vec<(Cycle, u64)> = state.retry_due.iter().copied().collect();
        assert_eq!(timers, vec![(60, 1), (62, 2)]);
    }

    #[test]
    fn sentinel_timeout_saturates_instead_of_overflowing() {
        // Regression: `now + Cycle::MAX` used to overflow in debug builds
        // for the documented detection-only configuration.
        let config = GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: Cycle::MAX,
                max_retries: 1,
            }),
            ..GuardConfig::disabled()
        };
        let mut state = GuardState::new();
        state.track(1, 0, 500, None, 100, &config);
        let timers: Vec<(Cycle, u64)> = state.retry_due.iter().copied().collect();
        assert_eq!(
            timers,
            vec![(Cycle::MAX, 1)],
            "timer pinned at the sentinel"
        );
        // The armed-but-never-due timer must not mask the miss wake-up.
        assert_eq!(state.next_event(), 501);
    }

    #[test]
    fn next_event_reports_earliest_guard_action() {
        let mut state = GuardState::new();
        assert_eq!(state.next_event(), Cycle::MAX, "no timers armed");
        let config = GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 30,
                max_retries: 1,
            }),
            ..GuardConfig::disabled()
        };
        state.track(1, 0, 100, None, 80, &config);
        // Watchdog due at 110, miss fires at 101 → earliest is the miss.
        assert_eq!(state.next_event(), 101);
        state.track(2, 0, 400, None, 80, &config);
        assert_eq!(state.next_event(), 101, "later request does not mask it");
    }
}
