//! Extension experiment: worst-case vs average response time.
//!
//! The paper motivates BlueScale with a measurement from the literature
//! (Garside et al., Wang et al.): "in an 8-client BlueTree, the worst-case
//! response time of a memory transaction is up to 6 times higher than the
//! average case". This experiment reproduces that ratio for every
//! interconnect: the observed worst / mean end-to-end latency over many
//! trials — the *timing variance* BlueScale is designed to remove.

use crate::runner::{build, InterconnectKind};
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of the WCRT-ratio experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcrtConfig {
    /// Clients (8 matches the quoted BlueTree measurement).
    pub clients: usize,
    /// Trials.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Cycles discarded before measuring (the synchronous-release
    /// transient at t = 0 is identical for every architecture and would
    /// otherwise dominate the worst case).
    pub warmup: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for WcrtConfig {
    fn default() -> Self {
        Self {
            clients: 8,
            trials: 50,
            horizon: 20_000,
            warmup: 4_000,
            seed: 0x6C27,
        }
    }
}

/// One interconnect's latency profile.
#[derive(Debug, Clone, PartialEq)]
pub struct WcrtRow {
    /// The interconnect.
    pub kind: InterconnectKind,
    /// Mean latency over all requests and trials (cycles).
    pub mean: f64,
    /// Mean 99th-percentile latency across trials (cycles).
    pub p99: f64,
    /// Largest observed latency across all trials (cycles).
    pub worst: f64,
    /// Worst / mean — the paper's "up to 6×" ratio.
    pub ratio: f64,
    /// Worst deadline-normalized response time (1.0 = exactly at the
    /// deadline; > 1 is a miss). Separates scheduling jitter from burst
    /// effects.
    pub worst_normalized: f64,
}

/// Runs the experiment.
pub fn run(config: &WcrtConfig) -> Vec<WcrtRow> {
    let mut master = SimRng::seed_from(config.seed);
    let mut mean = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
    let mut p99 = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
    let mut worst = vec![0.0f64; InterconnectKind::EXTENDED.len()];
    let mut worst_norm = vec![0.0f64; InterconnectKind::EXTENDED.len()];
    for _ in 0..config.trials {
        let mut rng = master.fork();
        let synthetic = SyntheticConfig {
            // Moderate load: the quoted 6× is contention jitter, not
            // overload collapse.
            util_lo: 0.55,
            util_hi: 0.70,
            ..SyntheticConfig::fig6(config.clients)
        };
        let sets = generate(&synthetic, &mut rng);
        for (i, kind) in InterconnectKind::EXTENDED.into_iter().enumerate() {
            let ic = build(kind, &sets);
            let mut system = System::new(ic, &sets);
            let mut m = system.run_with_warmup(config.warmup, config.horizon);
            mean[i].push(m.mean_latency());
            if let Some(q) = m.latency().percentile(99.0) {
                p99[i].push(q);
            }
            if let Some(w) = m.latency().max() {
                worst[i] = worst[i].max(w);
            }
            if let Some(w) = m.normalized_response().max() {
                worst_norm[i] = worst_norm[i].max(w);
            }
        }
    }
    InterconnectKind::EXTENDED
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            let avg = mean[i].mean();
            WcrtRow {
                kind,
                mean: avg,
                p99: p99[i].mean(),
                worst: worst[i],
                ratio: if avg > 0.0 { worst[i] / avg } else { 0.0 },
                worst_normalized: worst_norm[i],
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(config: &WcrtConfig, rows: &[WcrtRow]) -> String {
    let mut s = format!(
        "# Extension: worst-case vs average response time \
         ({} clients, {} trials)\n\n",
        config.clients, config.trials
    );
    s.push_str(
        "| Interconnect | Mean (cy) | p99 (cy) | Worst (cy) | Worst/Mean | Worst normalized |\n",
    );
    s.push_str("|---|---:|---:|---:|---:|---:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.0} | {:.1}× | {:.2} |\n",
            r.kind.name(),
            r.mean,
            r.p99,
            r.worst,
            r.ratio,
            r.worst_normalized,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WcrtConfig {
        WcrtConfig {
            clients: 8,
            trials: 4,
            horizon: 10_000,
            warmup: 2_000,
            seed: 2,
        }
    }

    #[test]
    fn produces_one_row_per_interconnect() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.worst >= r.mean, "{:?}", r.kind);
            assert!(r.ratio >= 1.0, "{:?}", r.kind);
        }
    }

    #[test]
    fn bluetree_has_high_wcrt_jitter() {
        // The motivating claim: heuristic trees show large worst/mean
        // ratios under contention; BlueScale's ratio is smaller.
        let rows = run(&WcrtConfig {
            trials: 8,
            ..tiny()
        });
        let get = |k: InterconnectKind| rows.iter().find(|r| r.kind == k).unwrap();
        let bluetree = get(InterconnectKind::BlueTree);
        assert!(
            bluetree.ratio > 2.0,
            "BlueTree worst/mean was only {:.2}",
            bluetree.ratio
        );
    }

    #[test]
    fn render_reports_ratio_column() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Worst/Mean"));
        assert!(text.contains("BlueScale"));
    }
}
