//! Structure-of-arrays hot core: arena-indexed server and RAB state.
//!
//! The per-cycle path of [`crate::network::BlueScaleInterconnect::step`]
//! dominates wall-clock once the fast-forward path has removed idle
//! stretches, and the legacy layout makes every busy cycle chase pointers:
//! each SE owns a `Vec<Option<ServerTask>>`, each port a `Vec` of buffered
//! requests, and every grant/replenish tally is a `BTreeMap` insertion.
//! This module flattens the whole quadtree into one arena:
//!
//! * **Server state** lives in [`ServerArena`] — parallel slices of
//!   P-counters, B-counters, periods, budgets and staged (Π,Θ) swaps,
//!   indexed by a stable [`TaskSlot`]. An SE does not own servers; it owns
//!   the index range `[se·branch, (se+1)·branch)`. The GEDF argmin is a
//!   linear scan over the contiguous P-counter slice, and the batched
//!   `advance` of the fast-forward path is a single sweep over the slices.
//! * **Request queues** live in a flat per-slot slab scanned linearly
//!   (mirroring the hardware's comparator banks) for small capacities, or
//!   in a [`BucketedDeadlineQueue`] — deadline buckets with a binary-heap
//!   fallback above [`BUCKET_SPAN`] — for deep buffers.
//! * **Counters** (grants, forwards, throttles, replenishments, overruns)
//!   accumulate in plain delta arrays and are folded into the
//!   [`MetricsRegistry`] on [`SoaCore::flush_metrics`] — the same
//!   "refreshed on `metrics_mut`" contract the memory controller already
//!   uses. With detail recording on, counters and typed events are written
//!   through directly in the legacy order, so event streams stay
//!   bit-identical.
//!
//! **Slot stability rules.** A [`TaskSlot`] is a function of topology only
//! (`slot = (level_base[depth] + order)·branch + port`): it never moves
//! while the system runs, across reconfigurations, or across clones. A
//! leaving tenant zeroes its slot (including any staged swap); a joining
//! tenant reuses the same slot with fresh state. Cloning an [`SoaCore`]
//! (or a bare [`ServerArena`]) is a slice memcpy, which is what makes
//! trial-admission snapshots cheap.
//!
//! Semantics are pinned to the legacy path bit-for-bit: all staging and
//! advance arithmetic round-trips through [`ServerTask`]
//! (`from_parts`/`into_parts`), and the differential suites compare full
//! fingerprints of both engines.

use crate::rab::QueuePolicy;
use crate::topology::BlueScaleConfig;
use bluescale_interconnect::{AccessKind, MemoryRequest};
use bluescale_rt::server::ServerTask;
use bluescale_rt::supply::PeriodicResource;
use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry};
use bluescale_sim::Cycle;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Width of one deadline bucket in cycles.
pub const BUCKET_WIDTH: u64 = 4;
/// Number of buckets in a [`BucketedDeadlineQueue`] before it falls back
/// to a heap.
pub const NUM_BUCKETS: usize = 1024;
/// The bucketed queue's deadline span: a queue whose resident deadlines
/// ever spread further than this (relative to the earliest buffered
/// deadline) permanently falls back to a binary heap. `4 × 1024 = 4096`
/// cycles covers the paper's whole period range (200–4000), so the
/// fallback only triggers on deliberately adversarial workloads.
pub const BUCKET_SPAN: u64 = BUCKET_WIDTH * NUM_BUCKETS as u64;
/// Largest per-port buffer capacity served by the linear-scan slab; deeper
/// buffers use the [`BucketedDeadlineQueue`].
pub const LINEAR_SCAN_MAX: usize = 16;

/// Stable index of one server-task slot in the [`ServerArena`].
///
/// Slots are assigned by topology (`(level_base[depth] + order)·branch +
/// port`) and never move: reconfigurations, leaves and rejoins all reuse
/// the same slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskSlot(u32);

impl TaskSlot {
    /// Creates a slot handle for `index`.
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("arena slot fits in u32"))
    }

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// All server-task state of the tree as contiguous parallel slices.
///
/// Unprogrammed slots hold zeros; staged swaps use `pend_period == 0` as
/// the "none" sentinel (a valid [`PeriodicResource`] period is ≥ 1).
/// Cloning is a straight memcpy of the slices — the cheap trial-admission
/// snapshot the SoA layout exists for.
#[derive(Debug, Clone, Default)]
pub struct ServerArena {
    programmed: Vec<bool>,
    period: Vec<u64>,
    budget: Vec<u64>,
    p: Vec<u64>,
    b: Vec<u64>,
    pend_period: Vec<u64>,
    pend_budget: Vec<u64>,
}

impl ServerArena {
    /// Creates an arena of `slots` unprogrammed slots.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            programmed: vec![false; slots],
            period: vec![0; slots],
            budget: vec![0; slots],
            p: vec![0; slots],
            b: vec![0; slots],
            pend_period: vec![0; slots],
            pend_budget: vec![0; slots],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.programmed.len()
    }

    /// Whether the arena has no slots.
    pub fn is_empty(&self) -> bool {
        self.programmed.is_empty()
    }

    /// Materializes the server at `slot`, or `None` if unprogrammed.
    pub fn get(&self, slot: TaskSlot) -> Option<ServerTask> {
        let i = slot.index();
        if !self.programmed[i] {
            return None;
        }
        let interface = PeriodicResource::new(self.period[i], self.budget[i])
            .expect("arena stores valid interfaces");
        let pending = (self.pend_period[i] != 0).then(|| {
            PeriodicResource::new(self.pend_period[i], self.pend_budget[i])
                .expect("arena stores valid staged interfaces")
        });
        Some(ServerTask::from_parts(
            interface, self.p[i], self.b[i], pending,
        ))
    }

    /// Stores `server` at `slot` (`None` clears the slot, zeroing all of
    /// its state including any staged swap — a reused slot starts fresh).
    pub fn set(&mut self, slot: TaskSlot, server: Option<ServerTask>) {
        let i = slot.index();
        match server {
            Some(server) => {
                let (interface, p, b, pending) = server.into_parts();
                self.programmed[i] = true;
                self.period[i] = interface.period();
                self.budget[i] = interface.budget();
                self.p[i] = p;
                self.b[i] = b;
                match pending {
                    Some(next) => {
                        self.pend_period[i] = next.period();
                        self.pend_budget[i] = next.budget();
                    }
                    None => {
                        self.pend_period[i] = 0;
                        self.pend_budget[i] = 0;
                    }
                }
            }
            None => {
                self.programmed[i] = false;
                self.period[i] = 0;
                self.budget[i] = 0;
                self.p[i] = 0;
                self.b[i] = 0;
                self.pend_period[i] = 0;
                self.pend_budget[i] = 0;
            }
        }
    }

    /// Programs `slot` immediately with a fresh, fully replenished server
    /// (the selector's program port — [`ServerTask::new`] semantics; any
    /// staged swap is discarded).
    pub fn program(&mut self, slot: TaskSlot, interface: PeriodicResource) {
        self.set(slot, Some(ServerTask::new(interface)));
    }

    /// Clears `slot` (the client became idle).
    pub fn clear(&mut self, slot: TaskSlot) {
        self.set(slot, None);
    }

    /// The interface currently programmed at `slot`.
    pub fn interface(&self, slot: TaskSlot) -> Option<PeriodicResource> {
        self.get(slot).map(|s| s.interface())
    }

    /// Programs `slot` through the safe mode-change protocol, mirroring
    /// [`LocalScheduler::program_deferred`](crate::scheduler::LocalScheduler::program_deferred):
    /// a changed interface on a running server is staged to swap at the
    /// next replenishment boundary, a fresh server programs immediately,
    /// `None` clears immediately. Returns the transition latency.
    pub fn program_deferred(&mut self, slot: TaskSlot, interface: Option<PeriodicResource>) -> u64 {
        match (interface, self.get(slot)) {
            (Some(next), Some(mut server)) => {
                if server.interface() == next && server.pending_interface().is_none() {
                    return 0;
                }
                let latency = server.until_replenish();
                server.reprogram_at_boundary(next);
                self.set(slot, Some(server));
                latency
            }
            (Some(next), None) => {
                self.set(slot, Some(ServerTask::new(next)));
                0
            }
            (None, _) => {
                self.set(slot, None);
                0
            }
        }
    }

    /// Advances `slot` by `delta` cycles in closed form (no consumption),
    /// committing a staged swap at the first boundary exactly like
    /// [`ServerTask::advance`]. Returns the boundary crossings (0 on an
    /// unprogrammed slot).
    pub fn advance(&mut self, slot: TaskSlot, delta: u64) -> u64 {
        match self.get(slot) {
            Some(mut server) => {
                let crossings = server.advance(delta);
                self.set(slot, Some(server));
                crossings
            }
            None => 0,
        }
    }
}

/// A bounded earliest-deadline queue over deadline buckets, with FIFO
/// arrival-order tie-breaking as a **documented invariant**: among equal
/// deadlines, requests pop in arrival (sequence) order, exactly like the
/// legacy [`RandomAccessBuffer`](crate::rab::RandomAccessBuffer)'s
/// comparator scan. The randomized regression tests in this module pin
/// that equivalence in both modes.
///
/// Entries land in `⌈span/4⌉`-cycle buckets relative to the earliest
/// resident deadline (the base rebases whenever the queue drains empty);
/// `pop` finds the first occupied bucket through a bitset and scans it for
/// the `(deadline, seq)` minimum. Deadlines below the current base clamp
/// into bucket 0, which preserves exact ordering because bucket 0 is
/// always scanned in full. If a push would land beyond [`BUCKET_SPAN`],
/// the queue permanently falls back to a binary heap keyed on
/// `(deadline, seq)` — same order, heap cost.
#[derive(Debug, Clone)]
pub struct BucketedDeadlineQueue {
    capacity: usize,
    len: usize,
    next_seq: u64,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Buckets {
        base: u64,
        buckets: Vec<Vec<(u64, MemoryRequest)>>,
        /// Occupancy bitset over buckets, one bit per bucket.
        occupied: Vec<u64>,
    },
    Heap {
        heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
        slab: Vec<Option<MemoryRequest>>,
        free: Vec<usize>,
    },
}

impl BucketedDeadlineQueue {
    /// Creates a queue holding at most `capacity` requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            capacity,
            len: 0,
            next_seq: 0,
            inner: Inner::Buckets {
                base: 0,
                buckets: vec![Vec::new(); NUM_BUCKETS],
                occupied: vec![0u64; NUM_BUCKETS.div_ceil(64)],
            },
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the queue has fallen back to the binary heap (a resident
    /// deadline span once exceeded [`BUCKET_SPAN`]).
    pub fn uses_heap_fallback(&self) -> bool {
        matches!(self.inner, Inner::Heap { .. })
    }

    /// Loads a request, or hands it back at capacity.
    ///
    /// # Errors
    ///
    /// Returns the request as the error value if the queue is full.
    pub fn try_push(&mut self, request: MemoryRequest) -> Result<(), MemoryRequest> {
        if self.len == self.capacity {
            return Err(request);
        }
        if let Inner::Buckets { base, .. } = &mut self.inner {
            if self.len == 0 {
                *base = request.deadline;
            }
            let idx = request.deadline.saturating_sub(*base) / BUCKET_WIDTH;
            if (idx as usize) < NUM_BUCKETS {
                let seq = self.next_seq;
                self.next_seq += 1;
                let Inner::Buckets {
                    buckets, occupied, ..
                } = &mut self.inner
                else {
                    unreachable!()
                };
                buckets[idx as usize].push((seq, request));
                occupied[idx as usize / 64] |= 1u64 << (idx as usize % 64);
                self.len += 1;
                return Ok(());
            }
            self.fall_back_to_heap();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let Inner::Heap { heap, slab, free } = &mut self.inner else {
            unreachable!()
        };
        let i = free.pop().unwrap_or_else(|| {
            slab.push(None);
            slab.len() - 1
        });
        heap.push(Reverse((request.deadline, seq, i)));
        slab[i] = Some(request);
        self.len += 1;
        Ok(())
    }

    /// Fetches the earliest-deadline request (FIFO among equal deadlines).
    pub fn pop(&mut self) -> Option<MemoryRequest> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        match &mut self.inner {
            Inner::Buckets {
                buckets, occupied, ..
            } => {
                let word = occupied
                    .iter()
                    .position(|&w| w != 0)
                    .expect("non-empty queue has an occupied bucket");
                let bit = occupied[word].trailing_zeros() as usize;
                let idx = word * 64 + bit;
                let bucket = &mut buckets[idx];
                let mut best = 0;
                for i in 1..bucket.len() {
                    if (bucket[i].1.deadline, bucket[i].0)
                        < (bucket[best].1.deadline, bucket[best].0)
                    {
                        best = i;
                    }
                }
                let (_, request) = bucket.swap_remove(best);
                if bucket.is_empty() {
                    occupied[word] &= !(1u64 << bit);
                }
                Some(request)
            }
            Inner::Heap { heap, slab, free } => {
                let Reverse((_, _, i)) = heap.pop().expect("non-empty queue has a heap entry");
                free.push(i);
                Some(slab[i].take().expect("heap entry is backed by the slab"))
            }
        }
    }

    /// The request [`pop`](Self::pop) would return, without removing it —
    /// same occupied-word scan, same `(deadline, seq)` tie-break, so
    /// pre-arbitration policy peeks see exactly the grant candidate.
    pub fn peek(&self) -> Option<&MemoryRequest> {
        if self.len == 0 {
            return None;
        }
        match &self.inner {
            Inner::Buckets {
                buckets, occupied, ..
            } => {
                let word = occupied
                    .iter()
                    .position(|&w| w != 0)
                    .expect("non-empty queue has an occupied bucket");
                let bit = occupied[word].trailing_zeros() as usize;
                let bucket = &buckets[word * 64 + bit];
                let mut best = 0;
                for i in 1..bucket.len() {
                    if (bucket[i].1.deadline, bucket[i].0)
                        < (bucket[best].1.deadline, bucket[best].0)
                    {
                        best = i;
                    }
                }
                Some(&bucket[best].1)
            }
            Inner::Heap { heap, slab, .. } => {
                let Reverse((_, _, i)) = heap.peek().expect("non-empty queue has a heap entry");
                Some(slab[*i].as_ref().expect("heap entry is backed by the slab"))
            }
        }
    }

    /// Charges one blocked cycle to every resident request with a deadline
    /// strictly earlier than `served_deadline`. Returns how many were
    /// charged. Only `blocked_cycles` mutates, so heap/bucket keys stay
    /// valid.
    pub fn charge_blocking(&mut self, served_deadline: u64) -> usize {
        let mut charged = 0;
        match &mut self.inner {
            Inner::Buckets {
                buckets, occupied, ..
            } => {
                for (word, &bits) in occupied.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        for (_, r) in &mut buckets[word * 64 + bit] {
                            if r.deadline < served_deadline {
                                r.blocked_cycles += 1;
                                charged += 1;
                            }
                        }
                    }
                }
            }
            Inner::Heap { slab, .. } => {
                for r in slab.iter_mut().flatten() {
                    if r.deadline < served_deadline {
                        r.blocked_cycles += 1;
                        charged += 1;
                    }
                }
            }
        }
        charged
    }

    /// Migrates every bucketed entry into a fresh heap. One-way: once a
    /// queue has proven its deadlines can outrun the bucket span, it stays
    /// on the heap.
    fn fall_back_to_heap(&mut self) {
        let Inner::Buckets { buckets, .. } = &mut self.inner else {
            return;
        };
        let mut heap = BinaryHeap::with_capacity(self.capacity);
        let mut slab: Vec<Option<MemoryRequest>> = Vec::with_capacity(self.capacity);
        for bucket in buckets {
            for (seq, request) in bucket.drain(..) {
                heap.push(Reverse((request.deadline, seq, slab.len())));
                slab.push(Some(request));
            }
        }
        self.inner = Inner::Heap {
            heap,
            slab,
            free: Vec::new(),
        };
    }
}

/// The per-port request queues of the whole tree.
#[derive(Debug, Clone)]
enum PortQueues {
    /// Flat fixed-stride slab: slot `s` owns `reqs[s·cap .. s·cap+len[s]]`,
    /// scanned linearly on pop — the comparator-bank model, now contiguous
    /// across the whole tree.
    Slab {
        capacity: usize,
        policy: QueuePolicy,
        reqs: Vec<MemoryRequest>,
        seqs: Vec<u64>,
        len: Vec<u32>,
        next_seq: Vec<u64>,
    },
    /// One bucketed deadline queue per slot (deep EDF buffers).
    Bucketed(Vec<BucketedDeadlineQueue>),
}

fn placeholder_request() -> MemoryRequest {
    MemoryRequest {
        id: 0,
        client: 0,
        task: 0,
        addr: 0,
        kind: AccessKind::Read,
        issued_at: 0,
        deadline: 0,
        blocked_cycles: 0,
    }
}

impl PortQueues {
    fn new(slots: usize, capacity: usize, policy: QueuePolicy) -> Self {
        if policy == QueuePolicy::EarliestDeadline && capacity > LINEAR_SCAN_MAX {
            PortQueues::Bucketed(
                (0..slots)
                    .map(|_| BucketedDeadlineQueue::with_capacity(capacity))
                    .collect(),
            )
        } else {
            PortQueues::Slab {
                capacity,
                policy,
                reqs: vec![placeholder_request(); slots * capacity],
                seqs: vec![0; slots * capacity],
                len: vec![0; slots],
                next_seq: vec![0; slots],
            }
        }
    }

    /// Bitmask of the ports in `b0..b0 + branch` holding at least one
    /// buffered request — one enum dispatch for the whole SE instead of
    /// one per port (the arbitration hot path).
    fn occupancy_mask(&self, b0: usize, branch: usize) -> u64 {
        let mut mask = 0;
        match self {
            PortQueues::Slab { len, .. } => {
                for (port, &n) in len[b0..b0 + branch].iter().enumerate() {
                    if n > 0 {
                        mask |= 1 << port;
                    }
                }
            }
            PortQueues::Bucketed(queues) => {
                for (port, q) in queues[b0..b0 + branch].iter().enumerate() {
                    if !q.is_empty() {
                        mask |= 1 << port;
                    }
                }
            }
        }
        mask
    }

    /// [`charge_blocking`](Self::charge_blocking) over the SE's whole
    /// port range in one dispatch.
    fn charge_blocking_se(&mut self, b0: usize, branch: usize, served_deadline: u64) {
        match self {
            PortQueues::Slab {
                capacity,
                reqs,
                len,
                ..
            } => {
                for slot in b0..b0 + branch {
                    let base = slot * *capacity;
                    for r in &mut reqs[base..base + len[slot] as usize] {
                        if r.deadline < served_deadline {
                            r.blocked_cycles += 1;
                        }
                    }
                }
            }
            PortQueues::Bucketed(queues) => {
                for q in &mut queues[b0..b0 + branch] {
                    q.charge_blocking(served_deadline);
                }
            }
        }
    }

    fn is_full(&self, slot: usize) -> bool {
        match self {
            PortQueues::Slab { capacity, len, .. } => len[slot] as usize == *capacity,
            PortQueues::Bucketed(queues) => queues[slot].is_full(),
        }
    }

    fn try_push(&mut self, slot: usize, request: MemoryRequest) -> Result<(), MemoryRequest> {
        match self {
            PortQueues::Slab {
                capacity,
                reqs,
                seqs,
                len,
                next_seq,
                ..
            } => {
                let n = len[slot] as usize;
                if n == *capacity {
                    return Err(request);
                }
                let at = slot * *capacity + n;
                seqs[at] = next_seq[slot];
                next_seq[slot] += 1;
                reqs[at] = request;
                len[slot] += 1;
                Ok(())
            }
            PortQueues::Bucketed(queues) => queues[slot].try_push(request),
        }
    }

    fn pop(&mut self, slot: usize) -> Option<MemoryRequest> {
        match self {
            PortQueues::Slab {
                capacity,
                policy,
                reqs,
                seqs,
                len,
                ..
            } => {
                let n = len[slot] as usize;
                if n == 0 {
                    return None;
                }
                let base = slot * *capacity;
                let mut best = 0;
                match policy {
                    QueuePolicy::EarliestDeadline => {
                        for i in 1..n {
                            if (reqs[base + i].deadline, seqs[base + i])
                                < (reqs[base + best].deadline, seqs[base + best])
                            {
                                best = i;
                            }
                        }
                    }
                    QueuePolicy::Fifo => {
                        for i in 1..n {
                            if seqs[base + i] < seqs[base + best] {
                                best = i;
                            }
                        }
                    }
                }
                let request = reqs[base + best].clone();
                reqs.swap(base + best, base + n - 1);
                seqs.swap(base + best, base + n - 1);
                len[slot] -= 1;
                Some(request)
            }
            PortQueues::Bucketed(queues) => queues[slot].pop(),
        }
    }

    /// The request [`pop`](Self::pop) would return for `slot`, without
    /// removing it (identical selection scan).
    fn peek(&self, slot: usize) -> Option<&MemoryRequest> {
        match self {
            PortQueues::Slab {
                capacity,
                policy,
                reqs,
                seqs,
                len,
                ..
            } => {
                let n = len[slot] as usize;
                if n == 0 {
                    return None;
                }
                let base = slot * *capacity;
                let mut best = 0;
                match policy {
                    QueuePolicy::EarliestDeadline => {
                        for i in 1..n {
                            if (reqs[base + i].deadline, seqs[base + i])
                                < (reqs[base + best].deadline, seqs[base + best])
                            {
                                best = i;
                            }
                        }
                    }
                    QueuePolicy::Fifo => {
                        for i in 1..n {
                            if seqs[base + i] < seqs[base + best] {
                                best = i;
                            }
                        }
                    }
                }
                Some(&reqs[base + best])
            }
            PortQueues::Bucketed(queues) => queues[slot].peek(),
        }
    }
}

/// The flattened runtime engine: all SEs' arbitration state in one arena.
///
/// Replaces the per-SE runtime of [`ScaleElement`](crate::element::ScaleElement)
/// (the elements remain the home of the interface *selectors* and analysis
/// tables); [`step_se`](Self::step_se) reproduces
/// [`ScaleElement::step_masked`](crate::element::ScaleElement::step_masked)
/// bit-for-bit on the slice layout.
#[derive(Debug, Clone)]
pub struct SoaCore {
    branch: usize,
    levels: usize,
    /// `level_base[d]` = linear index of SE `(d, 0)`; `level_base[levels]`
    /// = total SE count. Slots of linear SE `s` are `s·branch..(s+1)·branch`.
    level_base: Vec<usize>,
    work_conserving: bool,
    arena: ServerArena,
    queues: PortQueues,
    /// Response demultiplexer per SE (linear index).
    responses: Vec<VecDeque<MemoryRequest>>,
    /// Running totals for O(1) `pending`/quiescence checks.
    buffered: usize,
    responses_queued: usize,
    /// Requests buffered per SE (linear index): lets the batched step
    /// skip an SE's whole arbitration pass when nothing is pending.
    buffered_se: Vec<u32>,
    /// Responses queued per tree level: lets the response phase skip
    /// levels with nothing in flight.
    responses_per_level: Vec<u32>,
    // Batched counter deltas, folded into the registry on flush. Indexed
    // by linear SE / slot respectively.
    d_grants_se: Vec<u64>,
    d_forwarded_se: Vec<u64>,
    d_throttled_se: Vec<u64>,
    d_overrun_se: Vec<u64>,
    d_grants_port: Vec<u64>,
    d_replenish_port: Vec<u64>,
    d_overrun_port: Vec<u64>,
    dirty: bool,
}

impl SoaCore {
    /// Builds the arena for `config`'s topology and programs every SE from
    /// `interfaces` (indexed `[depth][order][port]`, as in
    /// [`CompositionReport::interfaces`](crate::network::CompositionReport)).
    pub fn new(
        config: &BlueScaleConfig,
        interfaces: &[Vec<Vec<Option<PeriodicResource>>>],
    ) -> Self {
        let levels = config.levels();
        let branch = config.branch;
        assert!(branch <= 64, "the SoA pending mask is a u64 bitmask");
        let mut level_base = Vec::with_capacity(levels + 1);
        let mut total = 0;
        for depth in 0..levels {
            level_base.push(total);
            total += config.elements_at(depth);
        }
        level_base.push(total);
        let slots = total * branch;
        let mut core = Self {
            branch,
            levels,
            level_base,
            work_conserving: config.work_conserving,
            arena: ServerArena::with_slots(slots),
            queues: PortQueues::new(slots, config.buffer_capacity, config.low_level_policy),
            responses: vec![VecDeque::new(); total],
            buffered: 0,
            responses_queued: 0,
            buffered_se: vec![0; total],
            responses_per_level: vec![0; levels],
            d_grants_se: vec![0; total],
            d_forwarded_se: vec![0; total],
            d_throttled_se: vec![0; total],
            d_overrun_se: vec![0; total],
            d_grants_port: vec![0; slots],
            d_replenish_port: vec![0; slots],
            d_overrun_port: vec![0; slots],
            dirty: false,
        };
        for (depth, level) in interfaces.iter().enumerate() {
            for (order, ifaces) in level.iter().enumerate() {
                core.program_se(depth, order, ifaces);
            }
        }
        core
    }

    /// Linear index of SE `(depth, order)`.
    fn se_lin(&self, depth: usize, order: usize) -> usize {
        debug_assert!(depth < self.levels);
        debug_assert!(order < self.level_base[depth + 1] - self.level_base[depth]);
        self.level_base[depth] + order
    }

    /// The arena slot of `(depth, order, port)`.
    pub fn slot(&self, depth: usize, order: usize, port: usize) -> TaskSlot {
        debug_assert!(port < self.branch);
        TaskSlot::new(self.se_lin(depth, order) * self.branch + port)
    }

    /// Read access to the server arena.
    pub fn arena(&self) -> &ServerArena {
        &self.arena
    }

    /// Programs SE `(depth, order)`'s server slots immediately from
    /// `interfaces` (one per port, `None` clears).
    pub fn program_se(
        &mut self,
        depth: usize,
        order: usize,
        interfaces: &[Option<PeriodicResource>],
    ) {
        assert_eq!(interfaces.len(), self.branch, "one interface per port");
        let b0 = self.se_lin(depth, order) * self.branch;
        for (port, iface) in interfaces.iter().enumerate() {
            match iface {
                Some(r) => self.arena.program(TaskSlot::new(b0 + port), *r),
                None => self.arena.clear(TaskSlot::new(b0 + port)),
            }
        }
    }

    /// Programs SE `(depth, order)` through the safe mode-change protocol
    /// (staged boundary swaps); returns the summed transition latency —
    /// the SoA counterpart of
    /// [`ScaleElement::program_deferred`](crate::element::ScaleElement::program_deferred).
    pub fn program_se_deferred(
        &mut self,
        depth: usize,
        order: usize,
        interfaces: &[Option<PeriodicResource>],
    ) -> u64 {
        assert_eq!(interfaces.len(), self.branch, "one interface per port");
        let b0 = self.se_lin(depth, order) * self.branch;
        interfaces
            .iter()
            .enumerate()
            .map(|(port, iface)| {
                self.arena
                    .program_deferred(TaskSlot::new(b0 + port), *iface)
            })
            .sum()
    }

    /// Whether `(depth, order, port)`'s buffer can accept a request.
    pub fn can_accept(&self, depth: usize, order: usize, port: usize) -> bool {
        !self.queues.is_full(self.slot(depth, order, port).index())
    }

    /// The request that would be granted next from `(depth, order, port)`
    /// if the scheduler selected that port — the policy peek used for
    /// pre-arbitration deferral. Non-destructive; mirrors the pop scan
    /// exactly.
    pub fn peek_head(&self, depth: usize, order: usize, port: usize) -> Option<&MemoryRequest> {
        self.queues.peek(self.slot(depth, order, port).index())
    }

    /// Offers a request at `(depth, order, port)`.
    ///
    /// # Errors
    ///
    /// Returns the request back when the port buffer is full.
    pub fn try_accept(
        &mut self,
        depth: usize,
        order: usize,
        port: usize,
        request: MemoryRequest,
    ) -> Result<(), MemoryRequest> {
        let slot = self.slot(depth, order, port).index();
        self.queues.try_push(slot, request)?;
        self.buffered += 1;
        let se = self.se_lin(depth, order);
        self.buffered_se[se] += 1;
        Ok(())
    }

    /// Accepts a response into SE `(depth, order)`'s demultiplexer.
    pub fn accept_response(&mut self, depth: usize, order: usize, response: MemoryRequest) {
        let se = self.se_lin(depth, order);
        self.responses[se].push_back(response);
        self.responses_queued += 1;
        self.responses_per_level[depth] += 1;
    }

    /// Pops at most one response per cycle from SE `(depth, order)`'s
    /// demultiplexer.
    pub fn pop_response(&mut self, depth: usize, order: usize) -> Option<MemoryRequest> {
        let se = self.se_lin(depth, order);
        let response = self.responses[se].pop_front();
        if response.is_some() {
            self.responses_queued -= 1;
            self.responses_per_level[depth] -= 1;
        }
        response
    }

    /// Responses currently queued across level `depth`'s demultiplexers —
    /// the response phase skips a whole level when this is zero.
    pub fn responses_at_level(&self, depth: usize) -> u32 {
        self.responses_per_level[depth]
    }

    /// Requests buffered across all ports of the tree.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Responses queued across all demultiplexers.
    pub fn responses_queued(&self) -> usize {
        self.responses_queued
    }

    /// Whether the whole fabric is quiescent (nothing buffered, no
    /// responses queued) — the per-tree analogue of
    /// [`ScaleElement::is_quiescent`](crate::element::ScaleElement::is_quiescent).
    pub fn is_quiescent(&self) -> bool {
        self.buffered == 0 && self.responses_queued == 0
    }

    /// One arbitration cycle of SE `(depth, order)`: the SoA rewrite of
    /// [`ScaleElement::step_masked`](crate::element::ScaleElement::step_masked).
    /// GEDF argmin is a linear scan over the SE's contiguous P-counter
    /// slice; server ticks run in-place on the slices. With detail
    /// recording off, counters land in the delta arrays (flushed on
    /// [`flush_metrics`](Self::flush_metrics)); with it on, counters and
    /// typed events write through in the legacy order.
    pub fn step_se(
        &mut self,
        depth: usize,
        order: usize,
        now: Cycle,
        provider_ready: bool,
        stuck: Option<&[bool]>,
        metrics: &mut MetricsRegistry,
    ) -> Option<MemoryRequest> {
        let se = self.se_lin(depth, order);
        let b0 = se * self.branch;
        let detail = metrics.detail();
        let component = ComponentId::Se { depth, order };

        // Pending mask: a port is eligible when its buffer is non-empty
        // and its grant line is not held stuck by the fault layer.
        let mut pending_mask = self.queues.occupancy_mask(b0, self.branch);
        if let Some(m) = stuck {
            for (port, &held) in m.iter().take(self.branch).enumerate() {
                if held {
                    pending_mask &= !(1 << port);
                }
            }
        }
        let any_pending = pending_mask != 0;

        let mut granted = None;
        if provider_ready {
            // GEDF argmin over the contiguous P-counter slice: strict `<`
            // keeps the lowest port on ties, as the legacy scan does.
            let mut winner: Option<(Cycle, usize)> = None;
            for port in 0..self.branch {
                if pending_mask & (1 << port) == 0 {
                    continue;
                }
                let slot = b0 + port;
                if !self.arena.programmed[slot] || self.arena.b[slot] == 0 {
                    continue;
                }
                let deadline = now + self.arena.p[slot];
                if winner.is_none_or(|(best, _)| deadline < best) {
                    winner = Some((deadline, port));
                }
            }
            if winner.is_none() && self.work_conserving {
                for port in 0..self.branch {
                    if pending_mask & (1 << port) == 0 {
                        continue;
                    }
                    let slot = b0 + port;
                    let deadline = if self.arena.programmed[slot] {
                        now + self.arena.p[slot]
                    } else {
                        Cycle::MAX
                    };
                    if winner.is_none_or(|(best, _)| deadline < best) {
                        winner = Some((deadline, port));
                    }
                }
            }
            if let Some((_, port)) = winner {
                let slot = b0 + port;
                let request = self
                    .queues
                    .pop(slot)
                    .expect("selected port must have a pending request");
                self.buffered -= 1;
                self.buffered_se[se] -= 1;
                // commit_grant: tally under the SE and its port, consume a
                // budget unit or record the overrun.
                let overrun = !(self.arena.programmed[slot] && self.arena.b[slot] > 0);
                if detail {
                    metrics.inc(component, Counter::Grants);
                    metrics.inc(component.port(port), Counter::Grants);
                    if overrun {
                        metrics.inc(component, Counter::BudgetOverruns);
                        metrics.inc(component.port(port), Counter::BudgetOverruns);
                    }
                } else {
                    self.d_grants_se[se] += 1;
                    self.d_grants_port[slot] += 1;
                    if overrun {
                        self.d_overrun_se[se] += 1;
                        self.d_overrun_port[slot] += 1;
                    }
                    self.dirty = true;
                }
                if !overrun {
                    self.arena.b[slot] -= 1;
                }
                // Blocking accounting across every port of this SE.
                self.queues
                    .charge_blocking_se(b0, self.branch, request.deadline);
                if detail {
                    metrics.inc(component, Counter::Forwarded);
                    metrics.request_granted(now, request.id, component, port);
                } else {
                    self.d_forwarded_se[se] += 1;
                    self.dirty = true;
                }
                granted = Some(request);
            }
        }

        // Scheduler tick: throttle statistic, then per-server countdowns.
        if any_pending && granted.is_none() {
            if detail {
                metrics.inc(component, Counter::ThrottledCycles);
                metrics.record(now, Event::Throttle { component });
            } else {
                self.d_throttled_se[se] += 1;
                self.dirty = true;
            }
        }
        for port in 0..self.branch {
            let slot = b0 + port;
            if !self.arena.programmed[slot] {
                continue;
            }
            self.arena.p[slot] -= 1;
            if self.arena.p[slot] == 0 {
                // Period boundary: commit a staged swap, reload both
                // counters — ServerTask::tick on the slices.
                if self.arena.pend_period[slot] != 0 {
                    self.arena.period[slot] = self.arena.pend_period[slot];
                    self.arena.budget[slot] = self.arena.pend_budget[slot];
                    self.arena.pend_period[slot] = 0;
                    self.arena.pend_budget[slot] = 0;
                }
                self.arena.p[slot] = self.arena.period[slot];
                self.arena.b[slot] = self.arena.budget[slot];
                if detail {
                    metrics.inc(component.port(port), Counter::Replenishments);
                    metrics.record(now, Event::Replenish { component, port });
                } else {
                    self.d_replenish_port[slot] += 1;
                    self.dirty = true;
                }
            }
        }
        granted
    }

    /// The batched-mode fast path of [`step_se`](Self::step_se): same
    /// arbitration, but counters go straight to the delta arrays (no
    /// registry access, so no detail events — the caller must route
    /// detail-recording runs through `step_se`) and the per-server
    /// countdowns are *not* run here. The caller runs them for the whole
    /// arena in one flat [`tick_all`](Self::tick_all) sweep per cycle,
    /// which preserves each SE's arbitrate-before-tick order because no
    /// SE reads another SE's server slots mid-cycle. An SE with nothing
    /// buffered returns immediately: no grant, no throttle, nothing to do.
    pub fn step_se_batched(
        &mut self,
        depth: usize,
        order: usize,
        now: Cycle,
        provider_ready: bool,
        stuck: Option<&[bool]>,
    ) -> Option<MemoryRequest> {
        let se = self.se_lin(depth, order);
        if self.buffered_se[se] == 0 {
            return None;
        }
        let b0 = se * self.branch;

        let mut pending_mask = self.queues.occupancy_mask(b0, self.branch);
        if let Some(m) = stuck {
            for (port, &held) in m.iter().take(self.branch).enumerate() {
                if held {
                    pending_mask &= !(1 << port);
                }
            }
        }
        let any_pending = pending_mask != 0;

        let mut granted = None;
        if provider_ready {
            let mut winner: Option<(Cycle, usize)> = None;
            for port in 0..self.branch {
                if pending_mask & (1 << port) == 0 {
                    continue;
                }
                let slot = b0 + port;
                if !self.arena.programmed[slot] || self.arena.b[slot] == 0 {
                    continue;
                }
                let deadline = now + self.arena.p[slot];
                if winner.is_none_or(|(best, _)| deadline < best) {
                    winner = Some((deadline, port));
                }
            }
            if winner.is_none() && self.work_conserving {
                for port in 0..self.branch {
                    if pending_mask & (1 << port) == 0 {
                        continue;
                    }
                    let slot = b0 + port;
                    let deadline = if self.arena.programmed[slot] {
                        now + self.arena.p[slot]
                    } else {
                        Cycle::MAX
                    };
                    if winner.is_none_or(|(best, _)| deadline < best) {
                        winner = Some((deadline, port));
                    }
                }
            }
            if let Some((_, port)) = winner {
                let slot = b0 + port;
                let request = self
                    .queues
                    .pop(slot)
                    .expect("selected port must have a pending request");
                self.buffered -= 1;
                self.buffered_se[se] -= 1;
                let overrun = !(self.arena.programmed[slot] && self.arena.b[slot] > 0);
                self.d_grants_se[se] += 1;
                self.d_grants_port[slot] += 1;
                if overrun {
                    self.d_overrun_se[se] += 1;
                    self.d_overrun_port[slot] += 1;
                }
                if !overrun {
                    self.arena.b[slot] -= 1;
                }
                self.queues
                    .charge_blocking_se(b0, self.branch, request.deadline);
                self.d_forwarded_se[se] += 1;
                self.dirty = true;
                granted = Some(request);
            }
        }

        if any_pending && granted.is_none() {
            self.d_throttled_se[se] += 1;
            self.dirty = true;
        }
        granted
    }

    /// One cycle of server countdowns for the whole arena: the tick loop
    /// of every SE's [`step_se`](Self::step_se), fused into a single
    /// contiguous sweep over the slices (batched mode only — detail runs
    /// tick inside `step_se` so replenish events interleave with grants
    /// in the legacy order).
    pub fn tick_all(&mut self) {
        for slot in 0..self.arena.len() {
            if !self.arena.programmed[slot] {
                continue;
            }
            self.arena.p[slot] -= 1;
            if self.arena.p[slot] == 0 {
                if self.arena.pend_period[slot] != 0 {
                    self.arena.period[slot] = self.arena.pend_period[slot];
                    self.arena.budget[slot] = self.arena.pend_budget[slot];
                    self.arena.pend_period[slot] = 0;
                    self.arena.pend_budget[slot] = 0;
                }
                self.arena.p[slot] = self.arena.period[slot];
                self.arena.b[slot] = self.arena.budget[slot];
                self.d_replenish_port[slot] += 1;
                self.dirty = true;
            }
        }
    }

    /// Advances the whole (quiescent) fabric `delta` cycles in closed
    /// form: a single batched sweep over the arena slices, tallying
    /// replenishment crossings into the delta arrays.
    pub fn advance_idle(&mut self, delta: Cycle) {
        debug_assert!(self.is_quiescent(), "advance_idle on a non-idle fabric");
        if delta == 0 {
            return;
        }
        for slot in 0..self.arena.len() {
            if !self.arena.programmed[slot] {
                continue;
            }
            let crossings = self.arena.advance(TaskSlot::new(slot), delta);
            if crossings > 0 {
                self.d_replenish_port[slot] += crossings;
                self.dirty = true;
            }
        }
    }

    /// Forwarded-count delta not yet flushed for SE `(depth, order)` —
    /// lets read-side accessors merge on the fly without `&mut`.
    pub fn pending_forwarded(&self, depth: usize, order: usize) -> u64 {
        self.d_forwarded_se[self.se_lin(depth, order)]
    }

    /// Folds all batched counter deltas into `metrics` and zeroes them.
    /// Called from the interconnect's `metrics_mut` (the same refresh
    /// contract as the memory-controller counters), so any mutable metrics
    /// access observes exact tallies.
    pub fn flush_metrics(&mut self, metrics: &mut MetricsRegistry) {
        self.flush_metrics_mapped(metrics, |depth, order| (depth, order));
    }

    /// [`flush_metrics`](Self::flush_metrics) with a coordinate translation:
    /// each local SE `(depth, order)` is tallied under the component id
    /// `map(depth, order)` returns. A shard core covering one subtree of a
    /// larger tree flushes under the subtree's *global* coordinates, so a
    /// registry fed by several shard cores is indistinguishable from one
    /// fed by a single whole-tree core.
    pub fn flush_metrics_mapped(
        &mut self,
        metrics: &mut MetricsRegistry,
        map: impl Fn(usize, usize) -> (usize, usize),
    ) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        for depth in 0..self.levels {
            let ses = self.level_base[depth + 1] - self.level_base[depth];
            for order in 0..ses {
                let se = self.level_base[depth] + order;
                let (depth, order) = map(depth, order);
                let component = ComponentId::Se { depth, order };
                for (delta, counter) in [
                    (std::mem::take(&mut self.d_grants_se[se]), Counter::Grants),
                    (
                        std::mem::take(&mut self.d_forwarded_se[se]),
                        Counter::Forwarded,
                    ),
                    (
                        std::mem::take(&mut self.d_throttled_se[se]),
                        Counter::ThrottledCycles,
                    ),
                    (
                        std::mem::take(&mut self.d_overrun_se[se]),
                        Counter::BudgetOverruns,
                    ),
                ] {
                    if delta > 0 {
                        metrics.add(component, counter, delta);
                    }
                }
                for port in 0..self.branch {
                    let slot = se * self.branch + port;
                    for (delta, counter) in [
                        (
                            std::mem::take(&mut self.d_grants_port[slot]),
                            Counter::Grants,
                        ),
                        (
                            std::mem::take(&mut self.d_replenish_port[slot]),
                            Counter::Replenishments,
                        ),
                        (
                            std::mem::take(&mut self.d_overrun_port[slot]),
                            Counter::BudgetOverruns,
                        ),
                    ] {
                        if delta > 0 {
                            metrics.add(component.port(port), counter, delta);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rab::RandomAccessBuffer;
    use bluescale_sim::rng::SimRng;

    fn req(id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client: 0,
            task: 0,
            addr: 0,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    fn iface(p: u64, b: u64) -> PeriodicResource {
        PeriodicResource::new(p, b).unwrap()
    }

    // ----- bucketed queue: FIFO-tiebreak invariant (satellite: RAB pop
    // order under equal deadlines) --------------------------------------

    /// Randomized push/pop interleavings with heavy deadline ties: the
    /// bucketed queue must pop the exact id sequence of the legacy
    /// comparator-bank buffer — (deadline, arrival) order, FIFO among
    /// equal deadlines.
    #[test]
    fn bucketed_matches_legacy_rab_under_equal_deadlines() {
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from(0xB0C4 ^ seed);
            let mut bucketed = BucketedDeadlineQueue::with_capacity(32);
            let mut legacy = RandomAccessBuffer::with_capacity(32);
            let mut next_id = 0u64;
            for _ in 0..400 {
                if rng.range_u64(0, 3) < 2 {
                    // Few distinct deadlines → constant ties.
                    let deadline = 1_000 + 4 * rng.range_u64(0, 6);
                    next_id += 1;
                    let a = bucketed.try_push(req(next_id, deadline)).is_ok();
                    let b = legacy.try_push(req(next_id, deadline)).is_ok();
                    assert_eq!(a, b, "capacity behaviour must match");
                } else {
                    let a = bucketed.pop().map(|r| r.id);
                    let b = legacy.pop().map(|r| r.id);
                    assert_eq!(a, b, "seed {seed}: pop order diverged");
                }
            }
            assert!(!bucketed.uses_heap_fallback(), "ties stay within span");
            while let Some(b) = legacy.pop() {
                assert_eq!(bucketed.pop().map(|r| r.id), Some(b.id));
            }
            assert!(bucketed.is_empty());
        }
    }

    /// The same randomized regression with deadlines spread far beyond
    /// [`BUCKET_SPAN`], forcing (and then exercising) the heap fallback.
    #[test]
    fn heap_fallback_matches_legacy_rab_under_equal_deadlines() {
        for seed in 0..24u64 {
            let mut rng = SimRng::seed_from(0x4EA9 ^ seed);
            let mut bucketed = BucketedDeadlineQueue::with_capacity(32);
            let mut legacy = RandomAccessBuffer::with_capacity(32);
            let mut next_id = 0u64;
            // A pair spread wider than the span forces the fallback before
            // the interleaving starts (pops would otherwise drain the
            // queue and let the bucket window rebase past the spread).
            for deadline in [1_000, 1_000 + BUCKET_SPAN * 2] {
                next_id += 1;
                bucketed.try_push(req(next_id, deadline)).unwrap();
                legacy.try_push(req(next_id, deadline)).unwrap();
            }
            assert!(
                bucketed.uses_heap_fallback(),
                "seed {seed}: the wide spread must trigger the fallback"
            );
            for round in 0..400 {
                if rng.range_u64(0, 3) < 2 {
                    // A huge spread plus tie-heavy clusters.
                    let cluster = rng.range_u64(0, 3) * (BUCKET_SPAN * 2);
                    let deadline = 1_000 + cluster + 4 * rng.range_u64(0, 4);
                    next_id += 1;
                    let a = bucketed.try_push(req(next_id, deadline)).is_ok();
                    let b = legacy.try_push(req(next_id, deadline)).is_ok();
                    assert_eq!(a, b);
                } else {
                    let a = bucketed.pop().map(|r| r.id);
                    let b = legacy.pop().map(|r| r.id);
                    assert_eq!(a, b, "seed {seed} round {round}: pop diverged");
                }
            }
            while let Some(b) = legacy.pop() {
                assert_eq!(bucketed.pop().map(|r| r.id), Some(b.id));
            }
        }
    }

    #[test]
    fn bucketed_charge_blocking_matches_legacy() {
        let mut bucketed = BucketedDeadlineQueue::with_capacity(8);
        let mut legacy = RandomAccessBuffer::with_capacity(8);
        for (id, dl) in [(1, 10), (2, 50), (3, 30), (4, 30)] {
            bucketed.try_push(req(id, dl)).unwrap();
            legacy.try_push(req(id, dl)).unwrap();
        }
        assert_eq!(bucketed.charge_blocking(40), legacy.charge_blocking(40));
        for _ in 0..4 {
            let a = bucketed.pop().unwrap();
            let b = legacy.pop().unwrap();
            assert_eq!((a.id, a.blocked_cycles), (b.id, b.blocked_cycles));
        }
    }

    #[test]
    fn bucketed_clamps_below_base_without_reordering() {
        // After a rebase to a later deadline, an earlier-deadline arrival
        // clamps into bucket 0 and still pops first.
        let mut q = BucketedDeadlineQueue::with_capacity(4);
        q.try_push(req(1, 5_000)).unwrap();
        q.try_push(req(2, 4_990)).unwrap(); // below base → bucket 0
        q.try_push(req(3, 5_001)).unwrap();
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 3);
    }

    #[test]
    fn bucketed_backpressure_at_capacity() {
        let mut q = BucketedDeadlineQueue::with_capacity(2);
        q.try_push(req(1, 10)).unwrap();
        q.try_push(req(2, 20)).unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(req(3, 5)).unwrap_err().id, 3);
        assert_eq!(q.pop().unwrap().id, 1);
        q.try_push(req(3, 5)).unwrap();
        assert_eq!(q.pop().unwrap().id, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bucketed_zero_capacity_panics() {
        let _ = BucketedDeadlineQueue::with_capacity(0);
    }

    // ----- arena edge cases (satellite: slot reuse, clone isolation,
    // advance across staged swaps, empty ranges) ------------------------

    #[test]
    fn slot_reuse_after_leave_starts_fresh() {
        let mut arena = ServerArena::with_slots(4);
        let slot = TaskSlot::new(2);
        arena.program(slot, iface(10, 3));
        // Run the server into a mid-period, partially consumed state with
        // a staged swap pending.
        let mut server = arena.get(slot).unwrap();
        server.consume();
        server.tick();
        arena.set(slot, Some(server));
        assert_eq!(arena.program_deferred(slot, Some(iface(6, 2))), 9);
        // Leave: the tenant departs; the slot must be fully cleared.
        arena.clear(slot);
        assert!(arena.get(slot).is_none());
        // Rejoin on the same slot: state is exactly ServerTask::new — no
        // stale countdown, budget, or staged swap may leak through.
        arena.program(slot, iface(8, 4));
        let reused = arena.get(slot).unwrap();
        assert_eq!(reused, ServerTask::new(iface(8, 4)));
        assert_eq!(reused.pending_interface(), None);
    }

    #[test]
    fn clone_then_mutate_leaves_original_untouched() {
        // Trial admission snapshots the arena and mutates the clone; the
        // live arena must not observe any of it.
        let mut arena = ServerArena::with_slots(8);
        for slot in 0..8 {
            arena.program(TaskSlot::new(slot), iface(10 + slot as u64, 2));
        }
        let snapshot: Vec<Option<ServerTask>> =
            (0..8).map(|s| arena.get(TaskSlot::new(s))).collect();
        let mut trial = arena.clone();
        for slot in 0..8 {
            let slot = TaskSlot::new(slot);
            trial.advance(slot, 7);
            trial.program_deferred(slot, Some(iface(5, 1)));
        }
        trial.clear(TaskSlot::new(3));
        for (s, expected) in snapshot.iter().enumerate() {
            assert_eq!(
                arena.get(TaskSlot::new(s)),
                *expected,
                "slot {s} of the live arena changed under the trial clone"
            );
        }
        assert!(trial.get(TaskSlot::new(3)).is_none(), "clone did mutate");
    }

    #[test]
    fn advance_crosses_staged_swap_boundary_like_server_task() {
        // The arena's closed-form advance must commit a staged (Π,Θ) swap
        // at the first boundary exactly as ServerTask::advance does — for
        // every phase and jump length around the boundary.
        for phase in 0..5u64 {
            for delta in 0..20u64 {
                let mut arena = ServerArena::with_slots(1);
                let slot = TaskSlot::new(0);
                arena.program(slot, iface(5, 2));
                let mut reference = ServerTask::new(iface(5, 2));
                for _ in 0..phase {
                    reference.tick();
                    let mut s = arena.get(slot).unwrap();
                    s.tick();
                    arena.set(slot, Some(s));
                }
                arena.program_deferred(slot, Some(iface(3, 3)));
                reference.reprogram_at_boundary(iface(3, 3));
                let mut expected_crossings = 0;
                let mut ticked = reference;
                for _ in 0..delta {
                    if ticked.tick() {
                        expected_crossings += 1;
                    }
                }
                assert_eq!(
                    arena.advance(slot, delta),
                    expected_crossings,
                    "crossings at phase {phase} delta {delta}"
                );
                reference.advance(delta);
                assert_eq!(
                    arena.get(slot).unwrap(),
                    reference,
                    "state at phase {phase} delta {delta}"
                );
            }
        }
    }

    #[test]
    fn advance_on_unprogrammed_slot_is_inert() {
        let mut arena = ServerArena::with_slots(2);
        assert_eq!(arena.advance(TaskSlot::new(1), 100), 0);
        assert!(arena.get(TaskSlot::new(1)).is_none());
    }

    fn test_core(clients: usize) -> SoaCore {
        let config = BlueScaleConfig::for_clients(clients);
        let levels = config.levels();
        // Leaf ports up to `clients` get an interface; everything else —
        // including whole empty SEs — stays unprogrammed.
        let interfaces: Vec<Vec<Vec<Option<PeriodicResource>>>> = (0..levels)
            .map(|d| {
                (0..config.elements_at(d))
                    .map(|order| {
                        (0..config.branch)
                            .map(|port| {
                                let present =
                                    d < levels - 1 || order * config.branch + port < clients;
                                present.then(|| iface(20, 2))
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        SoaCore::new(&config, &interfaces)
    }

    #[test]
    fn empty_se_index_ranges_are_inert() {
        // 5 clients on a branch-4 tree: leaf SE (1,1) has one populated
        // port, SEs (1,2) and (1,3) are entirely empty index ranges.
        let mut core = test_core(5);
        let mut metrics = MetricsRegistry::new();
        assert!(core.is_quiescent());
        for now in 0..50 {
            for order in 2..4 {
                assert_eq!(
                    core.step_se(1, order, now, true, None, &mut metrics),
                    None,
                    "an empty SE must never grant"
                );
            }
        }
        core.flush_metrics(&mut metrics);
        for order in 2..4 {
            let se = ComponentId::Se { depth: 1, order };
            assert_eq!(metrics.counter(se, Counter::Grants), 0);
            assert_eq!(metrics.counter(se, Counter::ThrottledCycles), 0);
            assert_eq!(metrics.counter(se, Counter::Forwarded), 0);
        }
        // The empty ranges also contribute nothing to occupancy, and the
        // populated slot is addressable right next to them.
        assert_eq!(core.buffered(), 0);
        assert!(core.arena().get(core.slot(1, 1, 0)).is_some());
        assert!(core.arena().get(core.slot(1, 1, 1)).is_none());
        assert!(core.arena().get(core.slot(1, 3, 3)).is_none());
    }

    #[test]
    fn step_se_matches_scale_element_bit_for_bit() {
        // Drive a ScaleElement and the SoA core with an identical seeded
        // request pattern and compare every grant and every counter.
        use crate::element::ScaleElement;
        use crate::topology::SeIndex;

        for work_conserving in [false, true] {
            let mut config = BlueScaleConfig::for_clients(4);
            config.work_conserving = work_conserving;
            let ifaces: Vec<Option<PeriodicResource>> = vec![
                Some(iface(8, 2)),
                Some(iface(5, 1)),
                None,
                Some(iface(13, 4)),
            ];
            let mut se = ScaleElement::new(SeIndex::new(0, 0), 4, 8, work_conserving);
            se.program(&ifaces);
            let interfaces = vec![vec![ifaces.clone()]];
            let mut core = SoaCore::new(&config, &interfaces);

            let mut reg_legacy = MetricsRegistry::new();
            let mut reg_soa = MetricsRegistry::new();
            let mut rng = SimRng::seed_from(0x50A * (1 + work_conserving as u64));
            let mut next_id = 0;
            for now in 0..2_000u64 {
                if rng.range_u64(0, 4) == 0 {
                    let port = rng.range_u64(0, 4) as usize;
                    let deadline = now + rng.range_u64(1, 400);
                    next_id += 1;
                    let a = se.try_accept(port, req(next_id, deadline)).is_ok();
                    let b = core.try_accept(0, 0, port, req(next_id, deadline)).is_ok();
                    assert_eq!(a, b, "acceptance at {now}");
                }
                let ready = rng.range_u64(0, 3) > 0;
                let legacy = se.step(now, ready, &mut reg_legacy);
                let soa = core.step_se(0, 0, now, ready, None, &mut reg_soa);
                assert_eq!(legacy, soa, "grant at cycle {now} (wc={work_conserving})");
            }
            core.flush_metrics(&mut reg_soa);
            let com = ComponentId::Se { depth: 0, order: 0 };
            for counter in [
                Counter::Grants,
                Counter::Forwarded,
                Counter::ThrottledCycles,
                Counter::BudgetOverruns,
            ] {
                assert_eq!(
                    reg_legacy.counter(com, counter),
                    reg_soa.counter(com, counter),
                    "{counter:?} (wc={work_conserving})"
                );
            }
            for port in 0..4 {
                for counter in [
                    Counter::Grants,
                    Counter::Replenishments,
                    Counter::BudgetOverruns,
                ] {
                    assert_eq!(
                        reg_legacy.counter(com.port(port), counter),
                        reg_soa.counter(com.port(port), counter),
                        "port {port} {counter:?} (wc={work_conserving})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_step_and_fused_tick_match_step_se_bit_for_bit() {
        // The fast path (`step_se_batched` + one `tick_all` sweep per
        // cycle) must reproduce the write-through `step_se` sequence
        // exactly: same grants, same server state, same counters.
        for work_conserving in [false, true] {
            let mut config = BlueScaleConfig::for_clients(4);
            config.work_conserving = work_conserving;
            let ifaces: Vec<Option<PeriodicResource>> = vec![
                Some(iface(8, 2)),
                Some(iface(5, 1)),
                None,
                Some(iface(13, 4)),
            ];
            let interfaces = vec![vec![ifaces.clone()]];
            let mut slow = SoaCore::new(&config, &interfaces);
            let mut fast = slow.clone();

            let mut reg_slow = MetricsRegistry::new();
            let mut reg_fast = MetricsRegistry::new();
            let mut rng = SimRng::seed_from(0xBA7C + work_conserving as u64);
            let mut next_id = 0;
            for now in 0..2_000u64 {
                if rng.range_u64(0, 4) == 0 {
                    let port = rng.range_u64(0, 4) as usize;
                    let deadline = now + rng.range_u64(1, 400);
                    next_id += 1;
                    let a = slow.try_accept(0, 0, port, req(next_id, deadline)).is_ok();
                    let b = fast.try_accept(0, 0, port, req(next_id, deadline)).is_ok();
                    assert_eq!(a, b, "acceptance at {now}");
                }
                let ready = rng.range_u64(0, 3) > 0;
                let a = slow.step_se(0, 0, now, ready, None, &mut reg_slow);
                let b = fast.step_se_batched(0, 0, now, ready, None);
                fast.tick_all();
                assert_eq!(a, b, "grant at cycle {now} (wc={work_conserving})");
            }
            slow.flush_metrics(&mut reg_slow);
            fast.flush_metrics(&mut reg_fast);
            let com = ComponentId::Se { depth: 0, order: 0 };
            for counter in [
                Counter::Grants,
                Counter::Forwarded,
                Counter::ThrottledCycles,
                Counter::BudgetOverruns,
            ] {
                assert_eq!(
                    reg_slow.counter(com, counter),
                    reg_fast.counter(com, counter),
                    "{counter:?} (wc={work_conserving})"
                );
            }
            for port in 0..4 {
                for counter in [
                    Counter::Grants,
                    Counter::Replenishments,
                    Counter::BudgetOverruns,
                ] {
                    assert_eq!(
                        reg_slow.counter(com.port(port), counter),
                        reg_fast.counter(com.port(port), counter),
                        "port {port} {counter:?} (wc={work_conserving})"
                    );
                }
                assert_eq!(
                    slow.arena().get(slow.slot(0, 0, port)),
                    fast.arena().get(fast.slot(0, 0, port)),
                    "server state at port {port}"
                );
            }
        }
    }

    #[test]
    fn advance_idle_matches_stepped_idle_cycles() {
        let mut stepped = test_core(16);
        let mut jumped = stepped.clone();
        let mut reg_s = MetricsRegistry::new();
        let mut reg_j = MetricsRegistry::new();
        for now in 0..137 {
            for depth in 0..2 {
                for order in 0..stepped.level_base[depth + 1] - stepped.level_base[depth] {
                    assert_eq!(
                        stepped.step_se(depth, order, now, true, None, &mut reg_s),
                        None
                    );
                }
            }
        }
        jumped.advance_idle(137);
        stepped.flush_metrics(&mut reg_s);
        jumped.flush_metrics(&mut reg_j);
        for depth in 0..2 {
            let ses = jumped.level_base[depth + 1] - jumped.level_base[depth];
            for order in 0..ses {
                let com = ComponentId::Se { depth, order };
                for port in 0..4 {
                    assert_eq!(
                        reg_j.counter(com.port(port), Counter::Replenishments),
                        reg_s.counter(com.port(port), Counter::Replenishments),
                        "replenishments at ({depth},{order},{port})"
                    );
                    assert_eq!(
                        jumped.arena().get(jumped.slot(depth, order, port)),
                        stepped.arena().get(stepped.slot(depth, order, port)),
                        "server state at ({depth},{order},{port})"
                    );
                }
            }
        }
    }

    #[test]
    fn flush_is_idempotent_and_exact() {
        let mut core = test_core(4);
        let mut metrics = MetricsRegistry::new();
        core.try_accept(0, 0, 1, req(1, 100)).unwrap();
        assert!(core.step_se(0, 0, 0, true, None, &mut metrics).is_some());
        let com = ComponentId::Se { depth: 0, order: 0 };
        // Nothing visible before the flush...
        assert_eq!(metrics.counter(com, Counter::Grants), 0);
        core.flush_metrics(&mut metrics);
        assert_eq!(metrics.counter(com, Counter::Grants), 1);
        assert_eq!(metrics.counter(com.port(1), Counter::Grants), 1);
        assert_eq!(metrics.counter(com, Counter::Forwarded), 1);
        // ...and a second flush adds nothing.
        core.flush_metrics(&mut metrics);
        assert_eq!(metrics.counter(com, Counter::Grants), 1);
    }
}
