//! Extension experiment: *scheduling* scalability at a fixed clock.
//!
//! The paper's hardware-scalability argument (Fig 5) is about synthesis:
//! a centralized arbiter's critical path grows with the port count. This
//! experiment adds the behavioural side: with the client count scaling
//! 4 → 256 at a constant per-client load, how do latency and deadline
//! misses evolve for the centralized AXI-IC^RT (whose admission
//! serializes and whose arbitration pipeline deepens) versus the
//! distributed BlueScale (one extra tree level per 4× clients)?

use crate::runner::{run_trial, InterconnectKind};
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of the scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Total interconnect utilization (held constant across sizes).
    pub utilization: f64,
    /// Trials per point.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![4, 16, 64, 256],
            utilization: 0.6,
            trials: 15,
            horizon: 20_000,
            seed: 0x5CA1E,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of clients.
    pub clients: usize,
    /// Mean end-to-end latency (cycles) per interconnect, in
    /// [`InterconnectKind::EXTENDED`] order.
    pub latency: Vec<f64>,
    /// Mean deadline-miss ratio per interconnect.
    pub miss_ratio: Vec<f64>,
}

/// Runs the sweep.
pub fn run(config: &ScalabilityConfig) -> Vec<ScalabilityPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut latency = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            let mut miss = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            for _ in 0..config.trials {
                let mut rng = master.fork();
                let synthetic = SyntheticConfig {
                    util_lo: config.utilization - 0.02,
                    util_hi: config.utilization + 0.02,
                    ..SyntheticConfig::fig6(clients)
                };
                let sets = generate(&synthetic, &mut rng);
                for (i, kind) in InterconnectKind::EXTENDED.into_iter().enumerate() {
                    let m = run_trial(kind, &sets, config.horizon);
                    latency[i].push(m.mean_latency());
                    miss[i].push(m.miss_ratio());
                }
            }
            ScalabilityPoint {
                clients,
                latency: latency.iter().map(OnlineStats::mean).collect(),
                miss_ratio: miss.iter().map(OnlineStats::mean).collect(),
            }
        })
        .collect()
}

/// Renders both panels (latency, miss ratio) as markdown tables.
pub fn render(config: &ScalabilityConfig, points: &[ScalabilityPoint]) -> String {
    let mut s = format!(
        "# Extension: scheduling scalability at fixed clock \
         (U = {:.2}, {} trials/point)\n\n## Mean latency (cycles)\n\n",
        config.utilization, config.trials
    );
    let header = |s: &mut String| {
        s.push_str("| Clients |");
        for k in InterconnectKind::EXTENDED {
            s.push_str(&format!(" {} |", k.name()));
        }
        s.push_str("\n|---:|");
        for _ in InterconnectKind::EXTENDED {
            s.push_str("---:|");
        }
        s.push('\n');
    };
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.latency {
            s.push_str(&format!(" {v:.1} |"));
        }
        s.push('\n');
    }
    s.push_str("\n## Deadline miss ratio\n\n");
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.miss_ratio {
            s.push_str(&format!(" {:.1}% |", 100.0 * v));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalabilityConfig {
        ScalabilityConfig {
            client_counts: vec![4, 16],
            utilization: 0.5,
            trials: 2,
            horizon: 8_000,
            seed: 1,
        }
    }

    #[test]
    fn sweep_covers_requested_sizes() {
        let pts = run(&tiny());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].clients, 4);
        assert_eq!(pts[1].clients, 16);
        assert!(pts.iter().all(|p| p.latency.len() == 7));
    }

    #[test]
    fn latencies_are_positive_under_load() {
        let pts = run(&tiny());
        for p in &pts {
            for &l in &p.latency {
                assert!(l > 0.0, "latency must be positive at {} clients", p.clients);
            }
        }
    }

    #[test]
    fn render_has_both_panels() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Mean latency"));
        assert!(text.contains("miss ratio"));
    }
}
