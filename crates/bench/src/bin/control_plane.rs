//! Runs the control-plane benchmark — sustained admissions/sec, p99
//! decision latency at 10× the sustainable arrival rate, mid-bench
//! kill/restart recovery, and injected connection faults — writing
//! `results/BENCH_control_plane.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin control_plane -- \
//!    [--tenants N] [--connections N] [--capacity N] [--queue-depth N] \
//!    [--overload-factor N] [--json path]`

use bluescale_bench::control_plane::{render_json, render_table, run, ControlPlaneConfig};
use bluescale_bench::{arg_u64, arg_usize, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ControlPlaneConfig::default();
    config.tenants = arg_usize(&args, "--tenants", config.tenants);
    config.connections = arg_usize(&args, "--connections", config.connections);
    config.capacity = arg_usize(&args, "--capacity", config.capacity);
    config.queue_depth = arg_usize(&args, "--queue-depth", config.queue_depth);
    config.overload_factor = arg_u64(&args, "--overload-factor", config.overload_factor);

    println!(
        "# Control plane under {}x overload ({} tenants over {} connections, {} slots)\n",
        config.overload_factor, config.tenants, config.connections, config.capacity
    );
    let result = run(&config);
    println!("{}", render_table(&result));
    assert!(
        result.holds(),
        "control-plane robustness criteria failed: {result:?}"
    );

    let json = render_json(&config, &result);
    let out = arg_value(&args, "--json")
        .unwrap_or_else(|| "results/BENCH_control_plane.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
