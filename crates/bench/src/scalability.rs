//! Extension experiment: *scheduling* scalability at a fixed clock.
//!
//! The paper's hardware-scalability argument (Fig 5) is about synthesis:
//! a centralized arbiter's critical path grows with the port count. This
//! experiment adds the behavioural side: with the client count scaling
//! 4 → 256 at a constant per-client load, how do latency and deadline
//! misses evolve for the centralized AXI-IC^RT (whose admission
//! serializes and whose arbitration pipeline deepens) versus the
//! distributed BlueScale (one extra tree level per 4× clients)?

use crate::runner::{run_trial, InterconnectKind};
use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::SyntheticConfig;
use std::time::Instant;

/// Configuration of the scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Total interconnect utilization (held constant across sizes).
    pub utilization: f64,
    /// Trials per point.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![4, 16, 64, 256],
            utilization: 0.6,
            trials: 15,
            horizon: 20_000,
            seed: 0x5CA1E,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of clients.
    pub clients: usize,
    /// Mean end-to-end latency (cycles) per interconnect, in
    /// [`InterconnectKind::EXTENDED`] order.
    pub latency: Vec<f64>,
    /// Mean deadline-miss ratio per interconnect.
    pub miss_ratio: Vec<f64>,
}

/// Direct uniform constructor: every client carries exactly
/// `utilization / clients` in a single task with a period drawn from
/// `[period_min, period_max]`. No UUniFast split and no per-client
/// utilization floor, so large sweep points stay at the target instead of
/// being silently densified by [`SyntheticConfig::util_floor`]-style
/// clamping (the scalability sweep's 256-client points were exactly the
/// regime the old fixed floor distorted).
pub fn uniform_task_sets(
    clients: usize,
    utilization: f64,
    period_min: u64,
    period_max: u64,
    rng: &mut SimRng,
) -> Vec<bluescale_rt::task::TaskSet> {
    use bluescale_rt::task::{Task, TaskSet};
    let share = utilization / clients as f64;
    (0..clients)
        .map(|_| {
            // Draw only periods long enough that the share maps to an
            // integer WCET ≥ 1, so rounding cannot inflate the share.
            let lo = period_min.max((1.0 / share).ceil() as u64);
            let (period, wcet) = if lo > period_max {
                // Share too small for the period range: one unit of work
                // at the longest period is the closest expressible task.
                (period_max, 1)
            } else {
                let period = rng.range_u64(lo, period_max + 1);
                (period, (share * period as f64).round().max(1.0) as u64)
            };
            let task = Task::new(0, period, wcet).expect("uniform task is valid");
            TaskSet::new(vec![task]).expect("single uniform task is admissible")
        })
        .collect()
}

/// Runs the sweep.
pub fn run(config: &ScalabilityConfig) -> Vec<ScalabilityPoint> {
    let mut master = SimRng::seed_from(config.seed);
    let fig6 = SyntheticConfig::fig6(1);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut latency = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            let mut miss = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            for _ in 0..config.trials {
                let mut rng = master.fork();
                let sets = uniform_task_sets(
                    clients,
                    config.utilization,
                    fig6.period_min,
                    fig6.period_max,
                    &mut rng,
                );
                for (i, kind) in InterconnectKind::EXTENDED.into_iter().enumerate() {
                    let m = run_trial(kind, &sets, config.horizon);
                    latency[i].push(m.mean_latency());
                    miss[i].push(m.miss_ratio());
                }
            }
            ScalabilityPoint {
                clients,
                latency: latency.iter().map(OnlineStats::mean).collect(),
                miss_ratio: miss.iter().map(OnlineStats::mean).collect(),
            }
        })
        .collect()
}

/// Renders both panels (latency, miss ratio) as markdown tables.
pub fn render(config: &ScalabilityConfig, points: &[ScalabilityPoint]) -> String {
    let mut s = format!(
        "# Extension: scheduling scalability at fixed clock \
         (U = {:.2}, {} trials/point)\n\n## Mean latency (cycles)\n\n",
        config.utilization, config.trials
    );
    let header = |s: &mut String| {
        s.push_str("| Clients |");
        for k in InterconnectKind::EXTENDED {
            s.push_str(&format!(" {} |", k.name()));
        }
        s.push_str("\n|---:|");
        for _ in InterconnectKind::EXTENDED {
            s.push_str("---:|");
        }
        s.push('\n');
    };
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.latency {
            s.push_str(&format!(" {v:.1} |"));
        }
        s.push('\n');
    }
    s.push_str("\n## Deadline miss ratio\n\n");
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.miss_ratio {
            s.push_str(&format!(" {:.1}% |", 100.0 * v));
        }
        s.push('\n');
    }
    s
}

/// Configuration of the fast-forward speedup sweep
/// (`results/BENCH_fastforward.json`).
///
/// The workload is deliberately *sparse* — one long-period task per client
/// issuing `demand` requests per job — because that is the regime the
/// next-event fast path exists for: long provably-idle stretches between
/// releases that per-cycle stepping burns wall-clock on. Periods scale
/// with the client count so the aggregate release rate (and therefore the
/// fabric's duty cycle) stays roughly constant across sweep sizes; the
/// synthetic-generator path is *not* used here because its per-client
/// utilization floor would silently densify large points.
#[derive(Debug, Clone, PartialEq)]
pub struct FastForwardConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Memory requests per job (the task's `wcet` in the demand model).
    pub demand: u64,
    /// Master seed.
    pub seed: u64,
    /// Fixed horizon for every point (tests); `None` scales the horizon
    /// with the client count via [`fastforward_horizon`].
    pub horizon_override: Option<Cycle>,
}

impl Default for FastForwardConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![4, 16, 64, 256, 1024, 4096],
            demand: 2,
            seed: 0xFF5CA1E,
            horizon_override: None,
        }
    }
}

/// The sparse workload: one task per client with a period drawn from
/// `[100n, 300n)` cycles for `n` clients, each job issuing `demand`
/// requests. Scaling periods with `n` keeps the *total* utilization
/// (`n × demand / period ≈ demand / 200`) constant across sweep sizes,
/// which a fixed-period fig6-style draw cannot do once per-client
/// utilization hits the generator's floor.
pub fn sparse_task_sets(
    clients: usize,
    demand: u64,
    rng: &mut SimRng,
) -> Vec<bluescale_rt::task::TaskSet> {
    use bluescale_rt::task::{Task, TaskSet};
    let n = clients as u64;
    (0..clients)
        .map(|_| {
            let period = 100 * n + rng.range_u64(0, 200 * n);
            let task = Task::new(0, period, demand).expect("sparse task is valid");
            TaskSet::new(vec![task]).expect("single sparse task is admissible")
        })
        .collect()
}

/// Horizon for one sweep point: two full longest-period windows of the
/// scaled workload, floored so tiny points still see steady state.
pub fn fastforward_horizon(clients: usize) -> Cycle {
    (600 * clients as u64).max(20_000)
}

/// One point of the fast-forward speedup sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FastForwardPoint {
    /// Number of clients.
    pub clients: usize,
    /// Simulated horizon in cycles.
    pub horizon: Cycle,
    /// Wall-clock of the per-cycle (oracle) run, nanoseconds.
    pub percycle_ns: u128,
    /// Wall-clock of the fast-forward run, nanoseconds.
    pub fastforward_ns: u128,
    /// Number of jumps the fast path took.
    pub jumps: u64,
    /// Cycles skipped (never individually stepped).
    pub skipped: u64,
    /// Requests completed (identical across modes by construction).
    pub completed: u64,
    /// Whether the two modes produced bit-identical run metrics.
    pub verified: bool,
}

impl FastForwardPoint {
    /// Wall-clock speedup of fast-forward over per-cycle stepping.
    pub fn speedup(&self) -> f64 {
        self.percycle_ns as f64 / self.fastforward_ns.max(1) as f64
    }

    /// Fraction of the horizon covered by jumps instead of steps.
    pub fn skipped_ratio(&self) -> f64 {
        self.skipped as f64 / self.horizon as f64
    }
}

fn bluescale_system(sets: &[bluescale_rt::task::TaskSet]) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, sets).expect("sparse workload is admissible");
    System::new(Box::new(ic), sets)
}

/// Runs the fast-forward speedup sweep.
///
/// Every point runs the same seeded workload twice — per-cycle (the
/// oracle) and fast-forward — and **panics** if any externally visible
/// metric differs: the sweep doubles as an end-to-end differential check
/// at every size, not just the small ones the integration tests cover.
pub fn run_fastforward(config: &FastForwardConfig) -> Vec<FastForwardPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut rng = master.fork();
            let sets = sparse_task_sets(clients, config.demand, &mut rng);
            let horizon = config
                .horizon_override
                .unwrap_or_else(|| fastforward_horizon(clients));

            let mut slow = bluescale_system(&sets);
            slow.set_fast_forward(false);
            let t0 = Instant::now();
            let mut slow_m = slow.run(horizon);
            let percycle_ns = t0.elapsed().as_nanos();

            let mut fast = bluescale_system(&sets);
            fast.set_fast_forward(true);
            let t1 = Instant::now();
            let mut fast_m = fast.run(horizon);
            let fastforward_ns = t1.elapsed().as_nanos();

            let verified = (slow_m.issued(), slow_m.completed(), slow_m.missed())
                == (fast_m.issued(), fast_m.completed(), fast_m.missed())
                && slow_m.backlog() == fast_m.backlog()
                && slow_m.latency().as_slice() == fast_m.latency().as_slice()
                && slow_m.blocking().as_slice() == fast_m.blocking().as_slice();
            assert!(
                verified,
                "fast-forward diverged from per-cycle at {clients} clients"
            );
            assert_eq!(slow.fast_forward_jumps(), 0, "the oracle must not jump");

            FastForwardPoint {
                clients,
                horizon,
                percycle_ns,
                fastforward_ns,
                jumps: fast.fast_forward_jumps(),
                skipped: fast.fast_forwarded_cycles(),
                completed: fast_m.completed(),
                verified,
            }
        })
        .collect()
}

/// Renders the sweep as the `BENCH_fastforward.json` artefact
/// (hand-rolled JSON; the container has no serde).
pub fn render_fastforward_json(config: &FastForwardConfig, points: &[FastForwardPoint]) -> String {
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fastforward\",\n",
            "  \"unit\": \"ns\",\n",
            "  \"demand_per_job\": {},\n",
            "  \"seed\": {},\n",
            "  \"points\": [\n",
        ),
        config.demand, config.seed
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"clients\": {},\n",
                "      \"horizon\": {},\n",
                "      \"percycle_ns\": {},\n",
                "      \"fastforward_ns\": {},\n",
                "      \"speedup\": {:.2},\n",
                "      \"jumps\": {},\n",
                "      \"skipped_cycles\": {},\n",
                "      \"skipped_ratio\": {:.4},\n",
                "      \"completed\": {},\n",
                "      \"verified\": {}\n",
                "    }}{}\n",
            ),
            p.clients,
            p.horizon,
            p.percycle_ns,
            p.fastforward_ns,
            p.speedup(),
            p.jumps,
            p.skipped,
            p.skipped_ratio(),
            p.completed,
            p.verified,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the sweep as a human-readable table for stdout.
pub fn render_fastforward_table(points: &[FastForwardPoint]) -> String {
    let mut s = String::from(
        "| Clients | Horizon | Per-cycle (ms) | Fast-forward (ms) | Speedup | Skipped |\n\
         |---:|---:|---:|---:|---:|---:|\n",
    );
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.2}x | {:.1}% |\n",
            p.clients,
            p.horizon,
            p.percycle_ns as f64 / 1e6,
            p.fastforward_ns as f64 / 1e6,
            p.speedup(),
            100.0 * p.skipped_ratio(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalabilityConfig {
        ScalabilityConfig {
            client_counts: vec![4, 16],
            utilization: 0.5,
            trials: 2,
            horizon: 8_000,
            seed: 1,
        }
    }

    #[test]
    fn sweep_covers_requested_sizes() {
        let pts = run(&tiny());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].clients, 4);
        assert_eq!(pts[1].clients, 16);
        assert!(pts.iter().all(|p| p.latency.len() == 7));
    }

    #[test]
    fn latencies_are_positive_under_load() {
        let pts = run(&tiny());
        for p in &pts {
            for &l in &p.latency {
                assert!(l > 0.0, "latency must be positive at {} clients", p.clients);
            }
        }
    }

    #[test]
    fn render_has_both_panels() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Mean latency"));
        assert!(text.contains("miss ratio"));
    }

    #[test]
    fn uniform_sets_hit_the_target_without_densification() {
        // The direct constructor must land on the target utilization at
        // every sweep size — including 256 clients, where the generator's
        // old fixed floor used to densify the workload.
        let mut rng = SimRng::seed_from(77);
        for clients in [4, 64, 256] {
            let sets = uniform_task_sets(clients, 0.6, 200, 4000, &mut rng);
            assert_eq!(sets.len(), clients);
            let u: f64 = sets
                .iter()
                .flat_map(|s| s.iter())
                .map(|t| t.wcet() as f64 / t.period() as f64)
                .sum();
            assert!(
                (u - 0.6).abs() < 0.05,
                "{clients} clients: realized utilization {u} off target"
            );
        }
    }

    #[test]
    fn fastforward_sweep_verifies_and_skips() {
        let cfg = FastForwardConfig {
            client_counts: vec![4, 16],
            horizon_override: Some(10_000),
            ..Default::default()
        };
        let pts = run_fastforward(&cfg);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.verified, "{} clients must verify", p.clients);
            assert!(p.jumps > 0, "{} clients: sparse run must jump", p.clients);
            assert!(
                p.skipped_ratio() > 0.2,
                "{} clients: too few skips",
                p.clients
            );
            assert!(p.completed > 0);
        }
    }

    #[test]
    fn fastforward_json_is_well_formed() {
        let cfg = FastForwardConfig {
            client_counts: vec![4],
            horizon_override: Some(6_000),
            ..Default::default()
        };
        let pts = run_fastforward(&cfg);
        let json = render_fastforward_json(&cfg, &pts);
        assert!(json.contains("\"benchmark\": \"fastforward\""));
        assert!(json.contains("\"verified\": true"));
        assert_eq!(json.matches("\"clients\"").count(), 1);
        let table = render_fastforward_table(&pts);
        assert!(table.contains("Speedup"));
    }
}
