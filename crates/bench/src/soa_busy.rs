//! Hot-core throughput benchmark: the structure-of-arrays engine versus
//! the legacy per-SE engine on a *dense* workload
//! (`results/BENCH_soa.json`).
//!
//! Where the fast-forward sweep measures how cheaply the simulator skips
//! idle stretches, this benchmark measures the opposite regime: the
//! paper's fig6 setup at 64 clients keeps the fabric busy nearly every
//! cycle, so wall-clock is dominated by the per-cycle arbitration work —
//! GEDF argmin, RAB pops, server-counter ticks. That is exactly the loop
//! the [`bluescale::core::soa`] arena restructures (contiguous parallel
//! slices, linear-scan argmin, batched counters), so the dense run is
//! where its speedup must show.
//!
//! The timed section is the hand-rolled client/inject/step/drain loop
//! (the same driver the metrics-overhead check uses as its cost floor),
//! so the measurement is dominated by the engine under test rather than
//! by harness bookkeeping that is identical across engines. Separately —
//! and untimed — every repetition runs the identical seeded workload on
//! both engines under the full [`System`] harness and **panics** unless
//! the complete fingerprint — counts, per-client counts, per-SE
//! forwards, per-port grants and replenishments, and the full
//! latency/blocking sample sequences — is bit-identical: the benchmark
//! doubles as a differential check at benchmark scale.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::client::TrafficGenerator;
use bluescale_interconnect::system::System;
use bluescale_interconnect::Interconnect;
use bluescale_rt::task::TaskSet;
use bluescale_sim::metrics::Counter;
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use std::time::Instant;

/// Configuration of the SoA-versus-legacy throughput benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaBusyConfig {
    /// Number of traffic generators (64 = the paper's dense fig6 point).
    pub clients: usize,
    /// Repetitions; the reported wall-clock is the minimum across reps,
    /// which is the standard noise-rejecting estimator for a
    /// deterministic workload.
    pub reps: u64,
    /// Simulated horizon per repetition.
    pub horizon: Cycle,
    /// Master seed; each repetition forks its own workload stream.
    pub seed: u64,
}

impl Default for SoaBusyConfig {
    fn default() -> Self {
        Self {
            clients: 64,
            reps: 5,
            horizon: 30_000,
            seed: 0x50A_B057,
        }
    }
}

/// Result of the benchmark: one dense point, both engines.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaBusyResult {
    /// Number of clients.
    pub clients: usize,
    /// Simulated horizon per repetition.
    pub horizon: Cycle,
    /// Repetitions run.
    pub reps: u64,
    /// Minimum wall-clock of the legacy per-SE engine, nanoseconds.
    pub legacy_ns: u128,
    /// Minimum wall-clock of the SoA engine, nanoseconds.
    pub soa_ns: u128,
    /// Requests completed per repetition (identical across engines by
    /// construction).
    pub completed: u64,
    /// Whether every repetition produced bit-identical fingerprints.
    pub verified: bool,
}

impl SoaBusyResult {
    /// Wall-clock speedup of the SoA engine over the legacy engine.
    pub fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.soa_ns.max(1) as f64
    }
}

fn build_config(clients: usize, soa_core: bool) -> BlueScaleConfig {
    let mut config = BlueScaleConfig::for_clients(clients);
    config.work_conserving = true;
    config.soa_core = soa_core;
    config
}

fn build_system(sets: &[TaskSet], soa_core: bool) -> System<BlueScaleInterconnect> {
    let config = build_config(sets.len(), soa_core);
    let ic = BlueScaleInterconnect::new(config, sets).expect("fig6 workload is admissible");
    System::new(Box::new(ic), sets)
}

/// The timed loop: clients drive the bare interconnect with no harness
/// registry, service log or latency accounting in the way — wall-clock
/// here is the engine's own arbitration cost. Returns (nanoseconds,
/// requests completed).
fn time_engine(sets: &[TaskSet], soa_core: bool, horizon: Cycle) -> (u128, u64) {
    let config = build_config(sets.len(), soa_core);
    let mut ic = BlueScaleInterconnect::new(config, sets).expect("fig6 workload is admissible");
    let mut clients: Vec<TrafficGenerator> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| TrafficGenerator::new(i as u32, set))
        .collect();
    let mut completed = 0u64;
    let t0 = Instant::now();
    for now in 0..horizon {
        for client in &mut clients {
            client.on_cycle(now);
            if let Some(req) = client.take() {
                if let Err(rejected) = ic.inject(req, now) {
                    client.give_back(rejected);
                }
            }
        }
        ic.step(now);
        while ic.pop_service_event().is_some() {}
        while ic.pop_response().is_some() {
            completed += 1;
        }
    }
    (t0.elapsed().as_nanos(), completed)
}

/// Everything two runs must agree on to count as bit-identical — the
/// same fingerprint the differential test suites pin.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>, horizon: Cycle) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// Runs the benchmark.
///
/// # Panics
///
/// Panics if any repetition's SoA fingerprint differs from the legacy
/// engine's — a speedup on diverging results would be meaningless — or
/// if the timed loops complete different request counts.
pub fn run(config: &SoaBusyConfig) -> SoaBusyResult {
    let mut master = SimRng::seed_from(config.seed);
    let mut legacy_ns = u128::MAX;
    let mut soa_ns = u128::MAX;
    let mut completed = 0;
    for rep in 0..config.reps {
        let mut rng = master.fork();
        let sets = generate(&SyntheticConfig::fig6(config.clients), &mut rng);

        // Timed: the bare engine loop, both engines on the same workload.
        let (t_legacy, c_legacy) = time_engine(&sets, false, config.horizon);
        let (t_soa, c_soa) = time_engine(&sets, true, config.horizon);
        legacy_ns = legacy_ns.min(t_legacy);
        soa_ns = soa_ns.min(t_soa);
        assert_eq!(
            c_legacy, c_soa,
            "rep {rep}: timed loops completed different request counts"
        );

        // Untimed: the full-harness differential check at this scale.
        let mut legacy = build_system(&sets, false);
        let mut soa = build_system(&sets, true);
        let a = fingerprint(&mut legacy, config.horizon);
        let b = fingerprint(&mut soa, config.horizon);
        assert!(a.0[0] > 0, "rep {rep}: the dense workload must issue");
        assert_eq!(
            a, b,
            "rep {rep}: the SoA engine diverged from the legacy engine"
        );
        completed = c_soa;
    }
    SoaBusyResult {
        clients: config.clients,
        horizon: config.horizon,
        reps: config.reps,
        legacy_ns,
        soa_ns,
        completed,
        verified: true,
    }
}

/// Renders the result as the `BENCH_soa.json` artefact (hand-rolled
/// JSON; the container has no serde).
pub fn render_json(config: &SoaBusyConfig, result: &SoaBusyResult) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"soa_core\",\n",
            "  \"unit\": \"ns\",\n",
            "  \"workload\": \"fig6\",\n",
            "  \"seed\": {},\n",
            "  \"clients\": {},\n",
            "  \"horizon\": {},\n",
            "  \"reps\": {},\n",
            "  \"legacy_ns\": {},\n",
            "  \"soa_ns\": {},\n",
            "  \"speedup\": {:.2},\n",
            "  \"completed\": {},\n",
            "  \"verified\": {}\n",
            "}}\n",
        ),
        config.seed,
        result.clients,
        result.horizon,
        result.reps,
        result.legacy_ns,
        result.soa_ns,
        result.speedup(),
        result.completed,
        result.verified,
    )
}

/// Renders the result as a human-readable table for stdout.
pub fn render_table(result: &SoaBusyResult) -> String {
    format!(
        "| Clients | Horizon | Legacy (ms) | SoA (ms) | Speedup |\n\
         |---:|---:|---:|---:|---:|\n\
         | {} | {} | {:.1} | {:.1} | {:.2}x |\n",
        result.clients,
        result.horizon,
        result.legacy_ns as f64 / 1e6,
        result.soa_ns as f64 / 1e6,
        result.speedup(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SoaBusyConfig {
        SoaBusyConfig {
            clients: 8,
            reps: 1,
            horizon: 6_000,
            ..Default::default()
        }
    }

    #[test]
    fn dense_run_verifies_and_completes() {
        let r = run(&tiny());
        assert!(r.verified);
        assert!(r.completed > 0);
        assert!(r.legacy_ns > 0 && r.soa_ns > 0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn json_is_well_formed() {
        let cfg = tiny();
        let json = render_json(&cfg, &run(&cfg));
        assert!(json.contains("\"benchmark\": \"soa_core\""));
        assert!(json.contains("\"verified\": true"));
        assert_eq!(json.matches("\"speedup\"").count(), 1);
    }

    #[test]
    fn table_has_the_speedup_column() {
        let cfg = tiny();
        let table = render_table(&run(&cfg));
        assert!(table.contains("Speedup"));
        assert!(table.contains("| 8 |"));
    }
}
