//! Runs the BlueScale design-choice ablation grid (an extension beyond the
//! paper; see DESIGN.md §5).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin ablation -- [--clients N] [--trials N] [--horizon N]`

use bluescale_bench::ablation::{render, run, AblationConfig};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = AblationConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    let rows = run(&config);
    println!("{}", render(&config, &rows));
}
