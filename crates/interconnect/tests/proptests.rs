//! Property-based tests of the interconnect building blocks.

use bluescale_interconnect::buffer::{DelayLine, FifoBuffer};
use bluescale_sim::Cycle;
use proptest::prelude::*;

proptest! {
    /// A FIFO delivers exactly the accepted items, in acceptance order.
    #[test]
    fn fifo_preserves_acceptance_order(
        capacity in 1usize..16,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut fifo = FifoBuffer::with_capacity(capacity);
        let mut accepted: Vec<u32> = Vec::new();
        let mut delivered: Vec<u32> = Vec::new();
        let mut next = 0u32;
        for push in ops {
            if push {
                if fifo.try_push(next).is_ok() {
                    accepted.push(next);
                }
                next += 1;
            } else if let Some(v) = fifo.pop() {
                delivered.push(v);
            }
            prop_assert!(fifo.len() <= capacity);
        }
        while let Some(v) = fifo.pop() {
            delivered.push(v);
        }
        prop_assert_eq!(delivered, accepted);
    }

    /// A delay line emits every item exactly `latency` cycles after its
    /// push, in push order.
    #[test]
    fn delay_line_is_exact_and_ordered(
        latency in 0u64..10,
        gaps in prop::collection::vec(0u64..5, 1..50),
    ) {
        let mut line = DelayLine::new(latency);
        let mut pushes: Vec<(u64, Cycle)> = Vec::new();
        let mut now: Cycle = 0;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            line.push(i as u64, now);
            pushes.push((i as u64, now));
        }
        // Drain and verify emergence times.
        let mut emerged: Vec<(u64, Cycle)> = Vec::new();
        for t in 0..=now + latency {
            while let Some(item) = line.pop_ready(t) {
                emerged.push((item, t));
            }
        }
        prop_assert_eq!(emerged.len(), pushes.len());
        for ((item, at), (pushed_item, pushed_at)) in emerged.iter().zip(&pushes) {
            prop_assert_eq!(item, pushed_item);
            // With a per-cycle drain, emergence is exactly push + latency.
            prop_assert_eq!(*at, pushed_at + latency);
        }
        prop_assert!(line.is_empty());
    }

    /// Jain fairness is always within [1/n, 1] for positive inputs.
    #[test]
    fn jain_fairness_bounds(values in prop::collection::vec(0.001f64..1e6, 1..64)) {
        let j = bluescale_interconnect::metrics::jain_fairness(&values);
        let n = values.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }
}
