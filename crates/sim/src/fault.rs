//! Deterministic fault injection: cycle-keyed, seed-reproducible plans.
//!
//! A [`FaultPlan`] is a declarative list of fault specifications, each a
//! [`FaultKind`] active during a [`FaultWindow`] of cycles. The plan is
//! *queried* by the simulation at well-defined hook points (client release,
//! SE arbitration, DRAM accept, response delivery); it never holds mutable
//! references into the simulated system, so the same plan applied to the
//! same seeded workload replays bit-identically.
//!
//! Two invariants matter more than the fault catalogue itself:
//!
//! * **Empty plan ≡ baseline.** Every query on an empty plan returns the
//!   neutral answer (multiplier 1, no bursts, nothing stuck, zero jitter,
//!   nothing dropped), and the hook sites are written so the neutral answer
//!   takes the exact code path of a build without fault hooks. A
//!   differential test pins this bit-for-bit.
//! * **Seed-reproducible randomness.** The only "random" fault parameter —
//!   per-cycle DRAM jitter — is a pure function of `(plan seed, bank,
//!   cycle)` via a SplitMix64 finalizer. No hidden RNG state, so resuming,
//!   re-running or reordering queries cannot change outcomes.

use crate::next_event::NextEvent;
use crate::Cycle;
use std::fmt;

/// A half-open interval of cycles `[start, end)` during which a fault is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultWindow {
    /// First cycle the fault is active.
    pub start: Cycle,
    /// First cycle the fault is no longer active.
    pub end: Cycle,
}

impl FaultWindow {
    /// The window covering the whole run.
    pub const ALWAYS: FaultWindow = FaultWindow {
        start: 0,
        end: Cycle::MAX,
    };

    /// A window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`: an inverted window is nonsense, and an
    /// *empty* window (`end == start`) contains no cycle at all — not even
    /// its start — so a `RequestBurst` bound to one would pass construction
    /// yet silently never inject. Rejecting both at construction turns that
    /// silent no-op into an immediate, diagnosable error.
    pub fn new(start: Cycle, end: Cycle) -> Self {
        assert!(
            end > start,
            "fault window [{start}, {end}) is empty: end must be strictly after start"
        );
        Self { start, end }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: Cycle) -> bool {
        self.start <= now && now < self.end
    }
}

/// The class of a fault, for counting and event reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultClass {
    /// A client issues a multiple of its declared demand.
    RogueDemand,
    /// A one-shot flood of extra requests from one client.
    RequestBurst,
    /// An SE grant port is stuck (withholds grants) for a window.
    StuckGrant,
    /// DRAM service times on a bank gain deterministic extra cycles.
    DramJitter,
    /// Memory responses to a client are silently discarded.
    DropResponse,
}

impl FaultClass {
    /// All fault classes, in declaration order.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::RogueDemand,
        FaultClass::RequestBurst,
        FaultClass::StuckGrant,
        FaultClass::DramJitter,
        FaultClass::DropResponse,
    ];

    /// Stable snake_case name used in exports and bench tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::RogueDemand => "rogue_demand",
            FaultClass::RequestBurst => "request_burst",
            FaultClass::StuckGrant => "stuck_grant",
            FaultClass::DramJitter => "dram_jitter",
            FaultClass::DropResponse => "drop_response",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `client` releases `factor ×` its declared demand on every job while
    /// the window is active (the classic rogue of Fig 7).
    RogueDemand {
        /// The misbehaving client.
        client: u32,
        /// Demand multiplier (≥ 1; 1 is a no-op).
        factor: u64,
    },
    /// `client` floods `requests` extra requests in the cycle the window
    /// opens, cloned from its first task's parameters.
    RequestBurst {
        /// The misbehaving client.
        client: u32,
        /// Number of extra requests injected at `window.start`.
        requests: u64,
    },
    /// The grant port `port` of the SE at `(depth, order)` withholds all
    /// grants while the window is active — a stuck arbiter or a wedged
    /// upstream handshake.
    StuckGrant {
        /// Tree depth of the faulted SE (0 = root).
        depth: usize,
        /// Position of the faulted SE within its level.
        order: usize,
        /// The stuck port.
        port: usize,
    },
    /// Requests to `bank` take up to `max_extra_cycles` additional service
    /// cycles, drawn deterministically from the plan seed.
    DramJitter {
        /// The jittery bank.
        bank: u32,
        /// Upper bound on the extra service cycles per request.
        max_extra_cycles: u64,
    },
    /// Every `every`-th completed response owned by `client` is discarded
    /// before it reaches the response path (starting with the first).
    DropResponse {
        /// The victim client.
        client: u32,
        /// Drop period (1 = drop every response).
        every: u64,
    },
}

impl FaultKind {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::RogueDemand { .. } => FaultClass::RogueDemand,
            FaultKind::RequestBurst { .. } => FaultClass::RequestBurst,
            FaultKind::StuckGrant { .. } => FaultClass::StuckGrant,
            FaultKind::DramJitter { .. } => FaultClass::DramJitter,
            FaultKind::DropResponse { .. } => FaultClass::DropResponse,
        }
    }
}

/// A [`FaultKind`] bound to its activity [`FaultWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it goes wrong.
    pub window: FaultWindow,
}

/// A deterministic, replayable fault schedule.
///
/// # Example
///
/// ```
/// use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
///
/// let mut plan = FaultPlan::new(0xBAD5EED);
/// plan.push(
///     FaultKind::RogueDemand { client: 3, factor: 8 },
///     FaultWindow::new(1_000, 5_000),
/// );
/// assert_eq!(plan.demand_multiplier(3, 500), 1);
/// assert_eq!(plan.demand_multiplier(3, 1_000), 8);
/// assert_eq!(plan.demand_multiplier(2, 1_000), 1, "only client 3 is rogue");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
    /// Per-spec count of responses seen by each `DropResponse` fault
    /// (indexes parallel `faults`; unused slots stay 0). Plan state, not
    /// hidden RNG: cloning a freshly built plan resets it.
    drop_seen: Vec<u64>,
}

impl FaultPlan {
    /// Creates an empty plan. `seed` parameterizes the deterministic
    /// jitter draws; an empty plan never consults it.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            drop_seen: Vec::new(),
        }
    }

    /// The jitter seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a fault active during `window`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters: a zero `RogueDemand` factor or a
    /// zero `DropResponse` period.
    pub fn push(&mut self, kind: FaultKind, window: FaultWindow) -> &mut Self {
        match kind {
            FaultKind::RogueDemand { factor, .. } => {
                assert!(factor > 0, "rogue demand factor must be positive");
            }
            FaultKind::DropResponse { every, .. } => {
                assert!(every > 0, "drop period must be positive");
            }
            _ => {}
        }
        self.faults.push(FaultSpec { kind, window });
        self.drop_seen.push(0);
        self
    }

    /// Whether the plan contains no faults. Hook sites use this as the
    /// fast path: an empty plan must cost one branch per query site.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The fault specifications.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Resets transient query state (the drop counters) to the freshly
    /// built plan, so the same plan value can drive a second identical run.
    pub fn reset_state(&mut self) {
        for seen in &mut self.drop_seen {
            *seen = 0;
        }
    }

    /// Demand multiplier for `client` at `now`: the product of all active
    /// `RogueDemand` factors targeting it (1 when none are).
    pub fn demand_multiplier(&self, client: u32, now: Cycle) -> u64 {
        let mut factor = 1u64;
        for spec in &self.faults {
            if let FaultKind::RogueDemand {
                client: c,
                factor: f,
            } = spec.kind
            {
                if c == client && spec.window.contains(now) {
                    factor = factor.saturating_mul(f);
                }
            }
        }
        factor
    }

    /// Extra burst requests `client` must inject at `now`: the sum of
    /// `RequestBurst` faults whose window *opens* at this cycle.
    pub fn burst_at(&self, client: u32, now: Cycle) -> u64 {
        let mut total = 0u64;
        for spec in &self.faults {
            if let FaultKind::RequestBurst {
                client: c,
                requests,
            } = spec.kind
            {
                if c == client && spec.window.start == now && spec.window.contains(now) {
                    total = total.saturating_add(requests);
                }
            }
        }
        total
    }

    /// The stuck-port mask for the SE at `(depth, order)` with `ports`
    /// ports, or `None` when no stuck fault is active there at `now`.
    /// `mask[p] == true` means port `p` must not be granted this cycle.
    pub fn stuck_mask(
        &self,
        depth: usize,
        order: usize,
        ports: usize,
        now: Cycle,
    ) -> Option<Vec<bool>> {
        let mut mask: Option<Vec<bool>> = None;
        for spec in &self.faults {
            if let FaultKind::StuckGrant {
                depth: d,
                order: o,
                port,
            } = spec.kind
            {
                if d == depth && o == order && port < ports && spec.window.contains(now) {
                    mask.get_or_insert_with(|| vec![false; ports])[port] = true;
                }
            }
        }
        mask
    }

    /// Deterministic extra service cycles for a request to `bank` accepted
    /// at `now`: the sum over active `DramJitter` faults on that bank of a
    /// draw in `[0, max_extra_cycles]` keyed by `(seed, bank, now)`.
    pub fn dram_jitter(&self, bank: u32, now: Cycle) -> u64 {
        let mut extra = 0u64;
        for spec in &self.faults {
            if let FaultKind::DramJitter {
                bank: b,
                max_extra_cycles,
            } = spec.kind
            {
                if b == bank && spec.window.contains(now) && max_extra_cycles > 0 {
                    let draw =
                        splitmix(self.seed ^ ((bank as u64) << 32) ^ now.wrapping_mul(0x9E37_79B9));
                    extra = extra.saturating_add(draw % (max_extra_cycles + 1));
                }
            }
        }
        extra
    }

    /// The earliest cycle ≥ `now` at which this plan can influence the
    /// simulation: `now` itself while any window is active (active faults —
    /// a stuck grant port, rogue demand, jitter — must be stepped
    /// per-cycle), otherwise the earliest future window start, or
    /// [`Cycle::MAX`] when every window is already closed.
    ///
    /// Window *ends* need no wake-up of their own: a closing window only
    /// matters on cycles the simulation already steps per-cycle (the window
    /// being active forces that), so the first cycle after the end is
    /// reached by ordinary stepping.
    pub fn next_activity(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        for spec in &self.faults {
            if spec.window.contains(now) {
                return now;
            }
            if spec.window.start > now {
                next = next.min(spec.window.start);
            }
        }
        next
    }

    /// Whether the response completing at `now` for `client` must be
    /// dropped. Stateful: each active `DropResponse` fault counts the
    /// responses it observes and discards the first of every `every`.
    pub fn should_drop_response(&mut self, client: u32, now: Cycle) -> bool {
        let mut drop = false;
        for (spec, seen) in self.faults.iter().zip(&mut self.drop_seen) {
            if let FaultKind::DropResponse { client: c, every } = spec.kind {
                if c == client && spec.window.contains(now) {
                    if *seen % every == 0 {
                        drop = true;
                    }
                    *seen += 1;
                }
            }
        }
        drop
    }
}

impl NextEvent for FaultPlan {
    fn next_event(&self, now: Cycle) -> Cycle {
        self.next_activity(now)
    }
}

/// The SplitMix64 output finalizer — a bijective avalanche mix, the same
/// permutation [`crate::rng::SimRng`] uses per step.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_returns_neutral_answers() {
        let mut plan = FaultPlan::new(42);
        assert!(plan.is_empty());
        assert_eq!(plan.demand_multiplier(0, 0), 1);
        assert_eq!(plan.burst_at(0, 0), 0);
        assert_eq!(plan.stuck_mask(0, 0, 4, 0), None);
        assert_eq!(plan.dram_jitter(0, 0), 0);
        assert!(!plan.should_drop_response(0, 0));
    }

    #[test]
    fn window_contains_half_open() {
        let w = FaultWindow::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(FaultWindow::ALWAYS.contains(u64::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn inverted_window_panics() {
        let _ = FaultWindow::new(20, 10);
    }

    #[test]
    fn rogue_demand_multiplies_only_in_window() {
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::RogueDemand {
                client: 2,
                factor: 4,
            },
            FaultWindow::new(100, 200),
        );
        assert_eq!(plan.demand_multiplier(2, 99), 1);
        assert_eq!(plan.demand_multiplier(2, 100), 4);
        assert_eq!(plan.demand_multiplier(2, 199), 4);
        assert_eq!(plan.demand_multiplier(2, 200), 1);
        assert_eq!(plan.demand_multiplier(3, 150), 1);
    }

    #[test]
    fn overlapping_rogue_factors_compose() {
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::RogueDemand {
                client: 0,
                factor: 2,
            },
            FaultWindow::ALWAYS,
        )
        .push(
            FaultKind::RogueDemand {
                client: 0,
                factor: 3,
            },
            FaultWindow::new(50, 60),
        );
        assert_eq!(plan.demand_multiplier(0, 0), 2);
        assert_eq!(plan.demand_multiplier(0, 55), 6);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_rogue_factor_panics() {
        FaultPlan::new(0).push(
            FaultKind::RogueDemand {
                client: 0,
                factor: 0,
            },
            FaultWindow::ALWAYS,
        );
    }

    #[test]
    fn burst_fires_exactly_at_window_start() {
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::RequestBurst {
                client: 1,
                requests: 16,
            },
            FaultWindow::new(500, 501),
        );
        assert_eq!(plan.burst_at(1, 499), 0);
        assert_eq!(plan.burst_at(1, 500), 16);
        assert_eq!(plan.burst_at(1, 501), 0);
        assert_eq!(plan.burst_at(0, 500), 0);
    }

    #[test]
    #[should_panic(expected = "fault window [500, 500) is empty")]
    fn zero_length_burst_window_rejected() {
        // Regression: [500, 500) used to pass construction, and a
        // RequestBurst bound to it (which fires only when the window both
        // starts at and contains `now`) silently never injected. Empty
        // windows are now a construction-time error.
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::RequestBurst {
                client: 1,
                requests: 16,
            },
            FaultWindow::new(500, 500),
        );
    }

    #[test]
    fn next_activity_reports_active_and_upcoming_windows() {
        let mut plan = FaultPlan::new(0);
        assert_eq!(plan.next_activity(0), Cycle::MAX, "empty plan never wakes");
        plan.push(
            FaultKind::RogueDemand {
                client: 0,
                factor: 2,
            },
            FaultWindow::new(100, 200),
        )
        .push(
            FaultKind::StuckGrant {
                depth: 0,
                order: 0,
                port: 0,
            },
            FaultWindow::new(50, 60),
        );
        assert_eq!(plan.next_activity(0), 50, "earliest upcoming start");
        assert_eq!(plan.next_activity(55), 55, "active window pins to now");
        assert_eq!(plan.next_activity(60), 100, "between windows");
        assert_eq!(plan.next_activity(199), 199, "last active cycle");
        assert_eq!(plan.next_activity(200), Cycle::MAX, "all windows closed");
    }

    #[test]
    fn stuck_mask_targets_one_port_of_one_se() {
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::StuckGrant {
                depth: 1,
                order: 2,
                port: 3,
            },
            FaultWindow::new(10, 20),
        );
        assert_eq!(plan.stuck_mask(1, 2, 4, 5), None, "before the window");
        assert_eq!(
            plan.stuck_mask(1, 2, 4, 15),
            Some(vec![false, false, false, true])
        );
        assert_eq!(plan.stuck_mask(1, 1, 4, 15), None, "different SE");
        assert_eq!(plan.stuck_mask(0, 2, 4, 15), None, "different depth");
        // A port beyond the SE's arity is ignored rather than panicking.
        assert_eq!(plan.stuck_mask(1, 2, 2, 15), None);
    }

    #[test]
    fn dram_jitter_is_bounded_and_reproducible() {
        let mut plan = FaultPlan::new(0xFEED);
        plan.push(
            FaultKind::DramJitter {
                bank: 1,
                max_extra_cycles: 5,
            },
            FaultWindow::ALWAYS,
        );
        let draws: Vec<u64> = (0..200).map(|now| plan.dram_jitter(1, now)).collect();
        assert!(draws.iter().all(|&d| d <= 5));
        assert!(draws.iter().any(|&d| d > 0), "jitter must actually jitter");
        // Same (seed, bank, cycle) → same draw; other banks are clean.
        let replay: Vec<u64> = (0..200).map(|now| plan.dram_jitter(1, now)).collect();
        assert_eq!(draws, replay);
        assert_eq!(plan.dram_jitter(0, 7), 0);
        // A different seed changes the sequence.
        let mut other = FaultPlan::new(0xBEEF);
        other.push(
            FaultKind::DramJitter {
                bank: 1,
                max_extra_cycles: 5,
            },
            FaultWindow::ALWAYS,
        );
        let alt: Vec<u64> = (0..200).map(|now| other.dram_jitter(1, now)).collect();
        assert_ne!(draws, alt);
    }

    #[test]
    fn drop_response_drops_every_nth_and_resets() {
        let mut plan = FaultPlan::new(0);
        plan.push(
            FaultKind::DropResponse {
                client: 4,
                every: 3,
            },
            FaultWindow::ALWAYS,
        );
        let pattern: Vec<bool> = (0..6).map(|i| plan.should_drop_response(4, i)).collect();
        assert_eq!(pattern, [true, false, false, true, false, false]);
        // Other clients are unaffected and do not advance the counter.
        assert!(!plan.should_drop_response(5, 100));
        assert!(plan.should_drop_response(4, 100));
        plan.reset_state();
        assert!(plan.should_drop_response(4, 0), "reset restarts the cycle");
    }

    #[test]
    #[should_panic(expected = "drop period must be positive")]
    fn zero_drop_period_panics() {
        FaultPlan::new(0).push(
            FaultKind::DropResponse {
                client: 0,
                every: 0,
            },
            FaultWindow::ALWAYS,
        );
    }

    #[test]
    fn class_names_are_stable_and_unique() {
        let mut names: Vec<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultClass::ALL.len());
        assert_eq!(FaultClass::StuckGrant.to_string(), "stuck_grant");
        assert_eq!(
            FaultKind::DramJitter {
                bank: 0,
                max_extra_cycles: 1
            }
            .class(),
            FaultClass::DramJitter
        );
    }
}
