//! The interface selector: per-SE computation of server-task parameters.
//!
//! The hardware (paper, Section 4.3) keeps a *task parameter table* — a
//! register chain of `(client id, task id, period, execution time)` rows —
//! and a small datapath (ALU + scratchpad + FSM) that runs the interface
//! selection algorithm, then programs the local scheduler's counters and
//! forwards the chosen `(Π, Θ)` to the parent SE's selector as a new table
//! row. This module models the table and the computation; the algorithm
//! itself lives in [`bluescale_rt::interface`].

use bluescale_rt::interface::{select_se_interfaces_parallel, select_se_interfaces_with_divisor};
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_rt::Error as RtError;

/// One row of the task parameter table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRow {
    /// Local client port (0..branch), the 2-bit client id of the hardware.
    pub port: u8,
    /// Task id within the client (8 bits in hardware).
    pub task_id: u32,
    /// Period `T` (32 bits in hardware).
    pub period: u64,
    /// Analysis deadline `D` (`C ≤ D ≤ T`; deflated below `T` to reserve
    /// end-to-end pipeline slack — see `BlueScaleConfig::analysis_margin`).
    pub deadline: u64,
    /// Execution time `C` (32 bits in hardware).
    pub wcet: u64,
}

/// The task parameter table of one SE's interface selector.
///
/// # Example
///
/// ```
/// use bluescale::selector::{InterfaceSelector, TableRow};
///
/// let mut sel = InterfaceSelector::new(4);
/// sel.load(TableRow { port: 0, task_id: 1, period: 100, deadline: 80, wcet: 5 })?;
/// sel.load(TableRow { port: 2, task_id: 1, period: 80, deadline: 64, wcet: 4 })?;
/// let interfaces = sel.compute()?;
/// assert!(interfaces[0].is_some());
/// assert!(interfaces[1].is_none()); // idle port
/// assert!(interfaces[2].is_some());
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct InterfaceSelector {
    ports: usize,
    rows: Vec<TableRow>,
    period_divisor: u64,
}

impl InterfaceSelector {
    /// Creates a selector for an SE with `ports` local client ports.
    pub fn new(ports: usize) -> Self {
        Self {
            ports,
            rows: Vec::new(),
            period_divisor: 1,
        }
    }

    /// Sets the granularity divisor used by [`compute`](Self::compute):
    /// candidate server periods are capped at `min_deadline / divisor`,
    /// trading a little bandwidth for much shorter per-stage blackouts.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn set_period_divisor(&mut self, divisor: u64) {
        assert!(divisor > 0, "period divisor must be positive");
        self.period_divisor = divisor;
    }

    /// Appends a row to the parameter table.
    ///
    /// # Errors
    ///
    /// Returns [`RtError::InvalidTask`] if the row's parameters are invalid
    /// (zero period/wcet, `C > T`) and [`RtError::DuplicateTaskId`] if the
    /// `(port, task_id)` pair is already present.
    pub fn load(&mut self, row: TableRow) -> Result<(), RtError> {
        assert!(
            (row.port as usize) < self.ports,
            "port {} out of range (SE has {} ports)",
            row.port,
            self.ports
        );
        // Validate eagerly with the same rules as Task construction.
        let _ = Task::with_deadline(row.task_id, row.period, row.deadline, row.wcet)?;
        if self
            .rows
            .iter()
            .any(|r| r.port == row.port && r.task_id == row.task_id)
        {
            return Err(RtError::DuplicateTaskId { id: row.task_id });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Replaces all rows of `port` with `rows` (a client's software tasks
    /// were altered — only this port's server parameters change).
    ///
    /// # Errors
    ///
    /// Same as [`load`](Self::load) per row.
    pub fn reload_port(&mut self, port: u8, rows: &[TableRow]) -> Result<(), RtError> {
        let saved: Vec<TableRow> = self.rows.clone();
        self.rows.retain(|r| r.port != port);
        for &row in rows {
            debug_assert_eq!(row.port, port, "row for wrong port");
            if let Err(e) = self.load(TableRow { port, ..row }) {
                self.rows = saved;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Number of rows currently loaded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The raw parameter table (used by fallback allocation policies).
    pub fn rows(&self) -> &[TableRow] {
        &self.rows
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The task set of one port as described by the table.
    pub fn port_tasks(&self, port: u8) -> Result<TaskSet, RtError> {
        TaskSet::new(
            self.rows
                .iter()
                .filter(|r| r.port == port)
                .map(|r| Task::with_deadline(r.task_id, r.period, r.deadline, r.wcet))
                .collect::<Result<Vec<_>, _>>()?,
        )
    }

    /// Runs the interface selection algorithm: one minimum-bandwidth
    /// `(Π, Θ)` per non-idle port, sized against the combined utilization
    /// of all ports (Theorem 2's level utilization).
    ///
    /// # Errors
    ///
    /// Returns [`RtError::Overutilized`] when the ports' combined demand
    /// exceeds the SE's capacity, or [`RtError::NoFeasibleInterface`] when
    /// a port cannot be served.
    pub fn compute(&self) -> Result<Vec<Option<PeriodicResource>>, RtError> {
        let sets = (0..self.ports)
            .map(|p| self.port_tasks(p as u8))
            .collect::<Result<Vec<_>, _>>()?;
        select_se_interfaces_with_divisor(&sets, self.period_divisor.max(1))
    }

    /// [`compute`](Self::compute) with the per-port selections fanned out
    /// across up to `max_threads` OS threads. The ports are independent
    /// selection problems sharing a read-only context, so the result —
    /// including which error surfaces — is bit-identical to the serial
    /// [`compute`](Self::compute).
    ///
    /// # Errors
    ///
    /// Same as [`compute`](Self::compute).
    pub fn compute_parallel(
        &self,
        max_threads: usize,
    ) -> Result<Vec<Option<PeriodicResource>>, RtError> {
        let sets = (0..self.ports)
            .map(|p| self.port_tasks(p as u8))
            .collect::<Result<Vec<_>, _>>()?;
        select_se_interfaces_parallel(&sets, self.period_divisor.max(1), max_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(port: u8, task_id: u32, period: u64, wcet: u64) -> TableRow {
        TableRow {
            port,
            task_id,
            period,
            deadline: period,
            wcet,
        }
    }

    #[test]
    fn load_and_compute_per_port() {
        let mut sel = InterfaceSelector::new(4);
        sel.load(row(0, 1, 100, 5)).unwrap();
        sel.load(row(0, 2, 200, 10)).unwrap();
        sel.load(row(3, 1, 80, 4)).unwrap();
        let ifaces = sel.compute().unwrap();
        assert!(ifaces[0].is_some());
        assert!(ifaces[1].is_none());
        assert!(ifaces[2].is_none());
        assert!(ifaces[3].is_some());
        // Port 0 bandwidth must cover its utilization 0.1.
        assert!(ifaces[0].unwrap().bandwidth() >= 0.1 - 1e-12);
    }

    #[test]
    fn duplicate_rows_rejected() {
        let mut sel = InterfaceSelector::new(4);
        sel.load(row(1, 7, 100, 5)).unwrap();
        assert_eq!(
            sel.load(row(1, 7, 50, 2)).unwrap_err(),
            RtError::DuplicateTaskId { id: 7 }
        );
        // Same task id on a *different* port is fine.
        sel.load(row(2, 7, 50, 2)).unwrap();
    }

    #[test]
    fn invalid_row_rejected() {
        let mut sel = InterfaceSelector::new(4);
        assert!(sel.load(row(0, 1, 0, 1)).is_err());
        assert!(sel.load(row(0, 1, 10, 11)).is_err());
        assert!(sel.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let mut sel = InterfaceSelector::new(4);
        let _ = sel.load(row(4, 1, 10, 1));
    }

    #[test]
    fn reload_port_replaces_only_that_port() {
        let mut sel = InterfaceSelector::new(4);
        sel.load(row(0, 1, 100, 5)).unwrap();
        sel.load(row(1, 1, 100, 5)).unwrap();
        sel.reload_port(0, &[row(0, 9, 50, 1)]).unwrap();
        assert_eq!(sel.len(), 2);
        let p0 = sel.port_tasks(0).unwrap();
        assert_eq!(p0.tasks()[0].id(), 9);
        let p1 = sel.port_tasks(1).unwrap();
        assert_eq!(p1.tasks()[0].id(), 1);
    }

    #[test]
    fn reload_port_rolls_back_on_error() {
        let mut sel = InterfaceSelector::new(4);
        sel.load(row(0, 1, 100, 5)).unwrap();
        let bad = [row(0, 2, 10, 11)]; // C > T
        assert!(sel.reload_port(0, &bad).is_err());
        // Original row restored.
        assert_eq!(sel.len(), 1);
        assert_eq!(sel.port_tasks(0).unwrap().tasks()[0].id(), 1);
    }

    #[test]
    fn overutilized_table_errors() {
        let mut sel = InterfaceSelector::new(2);
        sel.load(row(0, 1, 10, 6)).unwrap();
        sel.load(row(1, 1, 10, 6)).unwrap();
        assert!(matches!(sel.compute(), Err(RtError::Overutilized { .. })));
    }

    #[test]
    fn empty_table_yields_all_idle() {
        let sel = InterfaceSelector::new(4);
        let ifaces = sel.compute().unwrap();
        assert!(ifaces.iter().all(Option::is_none));
    }

    #[test]
    fn compute_parallel_matches_serial() {
        let mut sel = InterfaceSelector::new(4);
        sel.load(row(0, 1, 100, 5)).unwrap();
        sel.load(row(0, 2, 200, 10)).unwrap();
        sel.load(row(2, 1, 80, 4)).unwrap();
        sel.load(row(3, 1, 90, 3)).unwrap();
        let serial = sel.compute().unwrap();
        for threads in [1, 2, 8] {
            assert_eq!(sel.compute_parallel(threads).unwrap(), serial);
        }
    }
}
