//! Online admission control: deterministic tenant-churn plans and the
//! reconfiguration outcome vocabulary.
//!
//! A [`ChurnPlan`] is the reconfiguration counterpart of a
//! [`FaultPlan`](bluescale_sim::fault::FaultPlan): a seeded, validated,
//! cycle-stamped schedule of [`ChurnKind::Join`] / [`ChurnKind::Leave`] /
//! [`ChurnKind::UpdateTasks`] requests that tenants present to a live
//! system. The harness drains due requests at the start of each cycle and
//! runs each through [`Interconnect::reconfigure_client`](crate::Interconnect::reconfigure_client);
//! the plan itself carries no randomness at run time — a generator derives
//! the schedule from the seed up front, so replaying the same plan
//! reproduces the same admissions bit-for-bit.
//!
//! Like the fault plan, an **empty** churn plan keeps the harness on the
//! exact churn-free code path (one branch per cycle), so a plan-less run is
//! bit-identical to one built before this subsystem existed.

use crate::ClientId;
use bluescale_rt::task::TaskSet;
use bluescale_sim::next_event::NextEvent;
use bluescale_sim::Cycle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a reconfiguration request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnKind {
    /// A tenant starts running on its client port with the declared tasks.
    Join {
        /// The task set the tenant declares at admission time.
        tasks: TaskSet,
    },
    /// The tenant leaves; its reservation is released. Always admissible
    /// (removing demand cannot break the root test).
    Leave,
    /// The tenant replaces its declared task set — a software mode change
    /// that must be re-admitted before the new parameters take effect.
    UpdateTasks {
        /// The replacement task set.
        tasks: TaskSet,
    },
}

impl ChurnKind {
    /// The task set this request asks the admission test to install: the
    /// declared set for joins and updates, the empty set for leaves.
    pub fn requested_tasks(&self) -> TaskSet {
        match self {
            ChurnKind::Join { tasks } | ChurnKind::UpdateTasks { tasks } => tasks.clone(),
            ChurnKind::Leave => TaskSet::empty(),
        }
    }

    /// Short stable name used in logs and exports.
    pub fn name(&self) -> &'static str {
        match self {
            ChurnKind::Join { .. } => "join",
            ChurnKind::Leave => "leave",
            ChurnKind::UpdateTasks { .. } => "update",
        }
    }
}

/// One cycle-stamped reconfiguration request.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Cycle at which the request arrives at the runtime manager.
    pub at: Cycle,
    /// The client (tenant slot) the request concerns.
    pub client: ClientId,
    /// What is requested.
    pub kind: ChurnKind,
}

/// A deterministic, seeded schedule of reconfiguration requests.
///
/// Requests are kept sorted by arrival cycle (stable for ties: same-cycle
/// requests apply in push order) and handed out once each via
/// [`take_due`](Self::take_due). [`reset_state`](Self::reset_state) rewinds
/// the hand-out cursor so one plan can drive several runs.
///
/// # Example
///
/// ```
/// use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
/// use bluescale_rt::task::{Task, TaskSet};
///
/// let tasks = TaskSet::new(vec![Task::new(0, 100, 2)?])?;
/// let mut plan = ChurnPlan::new(42);
/// plan.push(1_000, 3, ChurnKind::Join { tasks })
///     .push(5_000, 3, ChurnKind::Leave);
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.next_activity(0), 1_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    seed: u64,
    events: Vec<ChurnSpec>,
    /// Index of the first request not yet handed out (run state).
    cursor: usize,
}

impl ChurnPlan {
    /// Creates an empty plan tagged with the seed its schedule was (or will
    /// be) derived from. The plan draws nothing at run time; the seed is
    /// provenance, recorded so an exported result names the exact scenario.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// The seed this plan's schedule was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends a request, keeping the schedule sorted by arrival cycle.
    /// Returns `&mut Self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate request: a [`ChurnKind::Join`] or
    /// [`ChurnKind::UpdateTasks`] with an empty task set (vacating a slot
    /// is spelled [`ChurnKind::Leave`], so an empty set here is a scenario
    /// bug, caught at construction like the fault plan's parameter checks).
    pub fn push(&mut self, at: Cycle, client: ClientId, kind: ChurnKind) -> &mut Self {
        match &kind {
            ChurnKind::Join { tasks } | ChurnKind::UpdateTasks { tasks } => {
                assert!(
                    !tasks.is_empty(),
                    "join/update must declare at least one task (use Leave to vacate a slot)"
                );
            }
            ChurnKind::Leave => {}
        }
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, ChurnSpec { at, client, kind });
        self
    }

    /// Whether the plan schedules no requests at all. Hook sites branch on
    /// this once per cycle, keeping plan-less runs on the exact churn-free
    /// code path.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total scheduled requests (processed or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All scheduled requests in arrival order.
    pub fn specs(&self) -> &[ChurnSpec] {
        &self.events
    }

    /// Requests not yet handed out by [`take_due`](Self::take_due).
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Rewinds the hand-out cursor so the plan can drive a fresh run.
    pub fn reset_state(&mut self) {
        self.cursor = 0;
    }

    /// Hands out the next unprocessed request if it is due at or before
    /// `now` (the catch-up discipline of task releases: a request is never
    /// skipped, at worst applied late when the caller stalled). Each
    /// request is handed out exactly once per [`reset_state`](Self::reset_state).
    pub fn take_due(&mut self, now: Cycle) -> Option<ChurnSpec> {
        let spec = self.events.get(self.cursor)?;
        if spec.at > now {
            return None;
        }
        self.cursor += 1;
        Some(self.events[self.cursor - 1].clone())
    }

    /// The earliest cycle ≥ `now` at which this plan requires the harness
    /// to act: `now` itself while an unprocessed request is due (the
    /// harness must not jump over a reconfiguration cycle), otherwise the
    /// next request's arrival cycle, or [`Cycle::MAX`] once the plan is
    /// drained.
    pub fn next_activity(&self, now: Cycle) -> Cycle {
        self.events
            .get(self.cursor)
            .map_or(Cycle::MAX, |spec| spec.at.max(now))
    }
}

impl NextEvent for ChurnPlan {
    fn next_event(&self, now: Cycle) -> Cycle {
        self.next_activity(now)
    }
}

/// A cooperative cancellation/timeout handle for one admission request.
///
/// The control plane hands a token to
/// [`Interconnect::reconfigure_client_cancellable`](crate::Interconnect::reconfigure_client_cancellable);
/// the admission path polls it at cheap checkpoints (once per path SE in
/// BlueScale's leaf→root trial) and abandons the request **without mutating
/// any state** once it reports cancelled. Cancellation can come from two
/// sources, checked together by [`is_cancelled`](Self::is_cancelled):
///
/// * an explicit [`cancel`](Self::cancel) from another thread (the caller
///   gave up — e.g. a connection handler whose client vanished), and
/// * an optional wall-clock decision deadline fixed at construction.
///
/// Cloning shares the underlying flag, so a handler thread and the
/// admission worker observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never expires on its own (cancellable only explicitly).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Marks the request cancelled. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the request should be abandoned: explicitly cancelled, or
    /// past its decision deadline.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The wall-clock decision deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// Outcome of one live reconfiguration request (see
/// [`Interconnect::reconfigure_client`](crate::Interconnect::reconfigure_client)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigOutcome {
    /// Admission passed: the new parameters are installed, each affected
    /// server swapping at its own replenishment boundary.
    Admitted {
        /// Cycles between acceptance and each staged server's swap
        /// boundary, summed over the affected servers — the mode-change
        /// transition latency (0 when nothing needed a deferred swap).
        transition_cycles: u64,
    },
    /// Admission failed: the request was discarded and the interconnect's
    /// configuration is bit-identical to the state before the attempt.
    Rejected,
    /// The request was abandoned before a verdict: its [`CancelToken`]
    /// reported cancelled (explicitly, or past its decision deadline).
    /// Like a rejection, nothing was mutated — but the verdict says
    /// nothing about admissibility, so the caller may retry.
    Cancelled,
    /// The architecture has no runtime admission control (baselines, test
    /// doubles). The caller decides how to degrade — the harness applies
    /// the retask without any guarantee.
    Unsupported,
}

impl ReconfigOutcome {
    /// Whether the request was applied (with or without a guarantee).
    pub fn applied(&self) -> bool {
        !matches!(self, ReconfigOutcome::Rejected | ReconfigOutcome::Cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_rt::task::Task;

    fn tasks(period: u64, wcet: u64) -> TaskSet {
        TaskSet::new(vec![Task::new(0, period, wcet).unwrap()]).unwrap()
    }

    #[test]
    fn push_keeps_arrival_order_stable() {
        let mut plan = ChurnPlan::new(7);
        plan.push(500, 1, ChurnKind::Leave)
            .push(
                100,
                2,
                ChurnKind::Join {
                    tasks: tasks(100, 1),
                },
            )
            .push(500, 3, ChurnKind::Leave);
        let ats: Vec<(Cycle, ClientId)> = plan.specs().iter().map(|s| (s.at, s.client)).collect();
        assert_eq!(ats, vec![(100, 2), (500, 1), (500, 3)]);
    }

    #[test]
    fn take_due_hands_out_each_request_once_in_order() {
        let mut plan = ChurnPlan::new(1);
        plan.push(10, 0, ChurnKind::Leave)
            .push(10, 1, ChurnKind::Leave)
            .push(30, 2, ChurnKind::Leave);
        assert!(plan.take_due(9).is_none());
        assert_eq!(plan.take_due(10).unwrap().client, 0);
        assert_eq!(plan.take_due(10).unwrap().client, 1);
        assert!(plan.take_due(10).is_none(), "cycle 30 not due yet");
        assert_eq!(plan.remaining(), 1);
        // Catch-up: a late caller still gets the request.
        assert_eq!(plan.take_due(100).unwrap().client, 2);
        assert_eq!(plan.remaining(), 0);
        plan.reset_state();
        assert_eq!(plan.remaining(), 3);
        assert_eq!(plan.take_due(50).unwrap().client, 0);
    }

    #[test]
    fn next_activity_pins_due_requests_and_reports_future_ones() {
        let mut plan = ChurnPlan::new(0);
        assert_eq!(plan.next_activity(5), Cycle::MAX, "empty plan never acts");
        plan.push(40, 0, ChurnKind::Leave);
        assert_eq!(plan.next_activity(5), 40);
        assert_eq!(plan.next_activity(40), 40);
        assert_eq!(
            plan.next_activity(60),
            60,
            "an overdue unprocessed request pins the harness to now"
        );
        let _ = plan.take_due(60);
        assert_eq!(plan.next_activity(60), Cycle::MAX);
        // Trait form agrees.
        assert_eq!(NextEvent::next_event(&plan, 0), Cycle::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_join_is_rejected_at_construction() {
        let mut plan = ChurnPlan::new(0);
        plan.push(
            0,
            0,
            ChurnKind::Join {
                tasks: TaskSet::empty(),
            },
        );
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_update_is_rejected_at_construction() {
        let mut plan = ChurnPlan::new(0);
        plan.push(
            0,
            0,
            ChurnKind::UpdateTasks {
                tasks: TaskSet::empty(),
            },
        );
    }

    #[test]
    fn requested_tasks_maps_leave_to_empty() {
        assert!(ChurnKind::Leave.requested_tasks().is_empty());
        let t = tasks(50, 2);
        assert_eq!(ChurnKind::Join { tasks: t.clone() }.requested_tasks(), t);
        assert_eq!(ChurnKind::Leave.name(), "leave");
        assert_eq!(ChurnKind::Join { tasks: t.clone() }.name(), "join");
        assert_eq!(ChurnKind::UpdateTasks { tasks: t }.name(), "update");
    }

    #[test]
    fn outcome_applied_classification() {
        assert!(ReconfigOutcome::Admitted {
            transition_cycles: 3
        }
        .applied());
        assert!(ReconfigOutcome::Unsupported.applied());
        assert!(!ReconfigOutcome::Rejected.applied());
        assert!(!ReconfigOutcome::Cancelled.applied());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_token_deadline_expires() {
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let token = CancelToken::with_deadline(past);
        assert!(token.is_cancelled(), "past deadline reports cancelled");
        let future = Instant::now() + std::time::Duration::from_secs(3_600);
        let token = CancelToken::with_deadline(future);
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled(), "explicit cancel overrides deadline");
    }
}
