//! Regenerates the paper's Fig 6 (blocking latency and deadline miss
//! ratio under synthetic traffic).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin fig6 -- [--clients 16,64] [--trials N] [--horizon N]`
//!
//! Paper-scale statistics: `--trials 200`.

use bluescale_bench::fig6::{render, run, Fig6Config};
use bluescale_bench::{arg_u64, arg_usize_list};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = arg_usize_list(&args, "--clients", &[16, 64]);
    for n in clients {
        let mut config = Fig6Config::new(n);
        config.trials = arg_u64(&args, "--trials", config.trials);
        config.horizon = arg_u64(&args, "--horizon", config.horizon);
        config.phased = args.iter().any(|a| a == "--phased");
        let rows = run(&config);
        println!("{}", render(&config, &rows));
    }
}
