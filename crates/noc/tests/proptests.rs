//! Randomized tests of the mesh: exactly-once delivery from random sources
//! to random destinations, driven by a fixed-seed [`SimRng`] sweep (the
//! container has no registry access for `proptest`).

use bluescale_noc::mesh::Packet;
use bluescale_noc::{Mesh, MeshConfig, NodeId};
use bluescale_sim::rng::SimRng;

#[test]
fn every_injected_packet_arrives_exactly_once() {
    let mut rng = SimRng::seed_from(0x0C);
    for case in 0..32 {
        let side = rng.range_usize(2, 6);
        let n_routes = rng.range_usize(1, 40);
        let routes: Vec<(usize, usize)> = (0..n_routes)
            .map(|_| (rng.range_usize(0, 36), rng.range_usize(0, 36)))
            .collect();
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig {
            width: side,
            height: side,
            buffer_capacity: 4,
        });
        let node = |i: usize| NodeId::new(i % side, (i / side) % side);
        let mut accepted = Vec::new();
        let mut delivered = Vec::new();
        let drain = |mesh: &mut Mesh<usize>, delivered: &mut Vec<(usize, NodeId)>| {
            for y in 0..side {
                for x in 0..side {
                    while let Some(p) = mesh.take_delivered(NodeId::new(x, y)) {
                        delivered.push((p.payload, NodeId::new(x, y)));
                    }
                }
            }
        };
        for (i, &(src, dst)) in routes.iter().enumerate() {
            let ok = mesh
                .inject(
                    node(src),
                    Packet {
                        dest: node(dst),
                        payload: i,
                    },
                )
                .is_ok();
            if ok {
                accepted.push((i, node(dst)));
            }
            mesh.step();
            drain(&mut mesh, &mut delivered);
        }
        for _ in 0..10_000 {
            mesh.step();
            drain(&mut mesh, &mut delivered);
            if mesh.occupancy() == 0 {
                break;
            }
        }
        assert_eq!(
            mesh.occupancy(),
            0,
            "case {case}: packets stuck in the mesh"
        );
        delivered.sort_by_key(|(i, _)| *i);
        let mut expected = accepted.clone();
        expected.sort_by_key(|(i, _)| *i);
        assert_eq!(delivered, expected, "case {case}");
    }
}
