//! Fig 6: interconnect-level real-time performance under synthetic traffic
//! generators — blocking latency and deadline miss ratio for 16 and 64
//! clients across all six interconnects.

use crate::runner::{build, InterconnectKind};
use bluescale_interconnect::system::System;
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// Configuration of one Fig 6 experiment (one panel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Config {
    /// Number of traffic generators (16 → Fig 6(a), 64 → Fig 6(b)).
    pub clients: usize,
    /// Independent trials (the paper runs 200).
    pub trials: u64,
    /// Simulation horizon per trial, in cycles.
    pub horizon: Cycle,
    /// Master seed; trial `i` uses a derived stream.
    pub seed: u64,
    /// Stagger task releases with random phases instead of the paper's
    /// synchronous worst-case arrival.
    pub phased: bool,
}

impl Fig6Config {
    /// Paper-scale defaults: 200 trials of 20 000 cycles (about a minute
    /// in release mode; pass `--trials` to trade statistics for speed).
    pub fn new(clients: usize) -> Self {
        Self {
            clients,
            trials: 200,
            horizon: 20_000,
            seed: 0xF166,
            phased: false,
        }
    }
}

/// Aggregated result for one interconnect in one panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// The interconnect.
    pub kind: InterconnectKind,
    /// Mean blocking latency over trials, in µs at the nominal 100 MHz.
    pub blocking_mean_us: f64,
    /// Standard deviation of the per-trial mean blocking latency
    /// (the paper's "experimental variance").
    pub blocking_std_us: f64,
    /// Mean deadline miss ratio over trials.
    pub miss_ratio_mean: f64,
    /// Standard deviation of the per-trial miss ratio.
    pub miss_ratio_std: f64,
}

/// Runs one Fig 6 panel, fanning trials across all available cores.
///
/// Results are bit-identical to a serial run: see [`run_with_threads`].
pub fn run(config: &Fig6Config) -> Vec<Fig6Row> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    run_with_threads(config, threads)
}

/// One trial's measurements: `(blocking µs, miss ratio)` per interconnect.
type TrialResult = Vec<(f64, f64)>;

/// Runs one trial against every interconnect using its own forked RNG
/// stream.
fn run_trial_all_kinds(config: &Fig6Config, mut trial_rng: SimRng) -> TrialResult {
    let sets = generate(&SyntheticConfig::fig6(config.clients), &mut trial_rng);
    InterconnectKind::ALL
        .into_iter()
        .map(|kind| {
            let ic = build(kind, &sets);
            let mut system = if config.phased {
                System::new_phased(ic, &sets, trial_rng.next_u64())
            } else {
                System::new(ic, &sets)
            };
            let m = system.run(config.horizon);
            // Cycles → µs at the nominal 100 MHz clock.
            (m.mean_blocking() / 100.0, m.miss_ratio())
        })
        .collect()
}

/// Runs one Fig 6 panel on up to `max_threads` OS threads.
///
/// Determinism: trial RNG streams are forked from the master seed
/// *serially* before any work is fanned out, each trial consumes only its
/// own stream, and per-trial results are merged into the aggregate
/// statistics in trial order — so every thread count (including 1)
/// produces bit-identical rows.
pub fn run_with_threads(config: &Fig6Config, max_threads: usize) -> Vec<Fig6Row> {
    run_with_threads_registry(config, max_threads).0
}

/// Like [`run_with_threads`], but also returns the panel's metrics
/// registry: per-trial blocking/miss observations under
/// [`ComponentId::Series`] (indexed in [`InterconnectKind::ALL`] order)
/// plus panel parameters as system gauges. The rows are *views* of the
/// same registry accumulators.
pub fn run_with_threads_registry(
    config: &Fig6Config,
    max_threads: usize,
) -> (Vec<Fig6Row>, MetricsRegistry) {
    let mut master = SimRng::seed_from(config.seed);
    let trial_rngs: Vec<SimRng> = (0..config.trials).map(|_| master.fork()).collect();

    let threads = max_threads.max(1).min(trial_rngs.len().max(1));
    let mut results: Vec<Option<TrialResult>> = vec![None; trial_rngs.len()];
    if threads <= 1 {
        for (slot, rng) in results.iter_mut().zip(trial_rngs) {
            *slot = Some(run_trial_all_kinds(config, rng));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(threads);
            for _ in 0..threads {
                let next = &next;
                let trial_rngs = &trial_rngs;
                workers.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(rng) = trial_rngs.get(i) else {
                            return local;
                        };
                        local.push((i, run_trial_all_kinds(config, rng.clone())));
                    }
                }));
            }
            for worker in workers {
                for (i, result) in worker.join().expect("trial worker panicked") {
                    results[i] = Some(result);
                }
            }
        });
    }

    let mut registry = MetricsRegistry::new();
    registry.set_gauge(ComponentId::System, "clients", config.clients as f64);
    registry.set_gauge(ComponentId::System, "horizon", config.horizon as f64);
    for trial in results.into_iter().flatten() {
        for (i, (b, m)) in trial.into_iter().enumerate() {
            let series = ComponentId::Series(i as u16);
            registry.inc(series, Counter::Trials);
            registry.observe(series, SampleKind::Custom("blocking_us"), b);
            registry.observe(series, SampleKind::Custom("miss_ratio"), m);
        }
    }
    let rows = InterconnectKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            let series = ComponentId::Series(i as u16);
            let blocking = registry.stat(series, SampleKind::Custom("blocking_us"));
            let misses = registry.stat(series, SampleKind::Custom("miss_ratio"));
            Fig6Row {
                kind,
                blocking_mean_us: blocking.mean(),
                blocking_std_us: blocking.std_dev(),
                miss_ratio_mean: misses.mean(),
                miss_ratio_std: misses.std_dev(),
            }
        })
        .collect();
    (rows, registry)
}

/// Renders one panel as a markdown table.
pub fn render(config: &Fig6Config, rows: &[Fig6Row]) -> String {
    let mut s = format!(
        "# Fig 6: {} traffic generators ({} trials, {} cycles each{})\n\n",
        config.clients,
        config.trials,
        config.horizon,
        if config.phased {
            ", phased releases"
        } else {
            ""
        }
    );
    s.push_str("| Interconnect | Blocking latency (µs) | ±σ | Deadline miss ratio | ±σ |\n");
    s.push_str("|---|---:|---:|---:|---:|\n");
    for r in rows {
        s.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.1}% | {:.1}% |\n",
            r.kind.name(),
            r.blocking_mean_us,
            r.blocking_std_us,
            100.0 * r.miss_ratio_mean,
            100.0 * r.miss_ratio_std,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig6Config {
        Fig6Config {
            clients: 16,
            trials: 3,
            horizon: 8_000,
            seed: 7,
            phased: false,
        }
    }

    #[test]
    fn produces_one_row_per_interconnect() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn obs4_bluescale_best_blocking_and_misses() {
        let rows = run(&Fig6Config {
            trials: 5,
            ..tiny()
        });
        let get = |k: InterconnectKind| rows.iter().find(|r| r.kind == k).expect("present").clone();
        let bs = get(InterconnectKind::BlueScale);
        let bt = get(InterconnectKind::BlueTree);
        let tdm = get(InterconnectKind::GsmTreeTdm);
        // Obs 4(i): shortest blocking and fewest misses vs the heuristic
        // distributed trees.
        assert!(
            bs.blocking_mean_us <= bt.blocking_mean_us,
            "BlueScale {} vs BlueTree {}",
            bs.blocking_mean_us,
            bt.blocking_mean_us
        );
        assert!(
            bs.miss_ratio_mean <= bt.miss_ratio_mean + 0.02,
            "BlueScale {} vs BlueTree {}",
            bs.miss_ratio_mean,
            bt.miss_ratio_mean
        );
        assert!(bs.miss_ratio_mean <= tdm.miss_ratio_mean + 0.02);
    }

    #[test]
    fn render_lists_all_interconnects() {
        let cfg = tiny();
        let rows = run(&cfg);
        let text = render(&cfg, &rows);
        for k in InterconnectKind::ALL {
            assert!(text.contains(k.name()));
        }
    }

    #[test]
    fn registry_backs_the_rows() {
        let cfg = tiny();
        let (rows, registry) = run_with_threads_registry(&cfg, 2);
        for (i, row) in rows.iter().enumerate() {
            let series = ComponentId::Series(i as u16);
            assert_eq!(registry.counter(series, Counter::Trials), cfg.trials);
            let blocking = registry.stat(series, SampleKind::Custom("blocking_us"));
            assert_eq!(blocking.count(), cfg.trials);
            assert!((blocking.mean() - row.blocking_mean_us).abs() < 1e-15);
        }
        assert_eq!(registry.gauge(ComponentId::System, "clients"), Some(16.0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run(&tiny());
        let b = run(&tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_trials_reproduce_serial_results_seed_for_seed() {
        let cfg = Fig6Config {
            trials: 6,
            ..tiny()
        };
        let serial = run_with_threads(&cfg, 1);
        for threads in [2, 4, 16] {
            assert_eq!(
                run_with_threads(&cfg, threads),
                serial,
                "{threads}-thread run diverged from serial"
            );
        }
    }

    #[test]
    fn phased_releases_reduce_or_match_misses() {
        let sync = run(&tiny());
        let phased = run(&Fig6Config {
            phased: true,
            ..tiny()
        });
        // Synchronous arrival is the worst case: averaged over the panel,
        // phasing must not increase the total miss mass noticeably.
        let total = |rows: &[Fig6Row]| rows.iter().map(|r| r.miss_ratio_mean).sum::<f64>();
        assert!(
            total(&phased) <= total(&sync) + 0.05,
            "phased {} vs synchronous {}",
            total(&phased),
            total(&sync)
        );
    }
}
