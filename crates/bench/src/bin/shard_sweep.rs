//! Runs the sharded-execution scaling sweep (65k → 1M clients on a busy
//! synchronous-release workload, 1/2/4/8 workers per point), writing
//! `results/BENCH_shards.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin shard_sweep -- \
//!    [--clients a,b,c] [--workers a,b,c] [--horizon N] [--json path]`
//!
//! `--horizon` fixes the horizon for every point instead of the default
//! constant-work scaling; `--clients` / `--workers` replace the sweep
//! lists outright. Every point asserts that all worker counts produce
//! identical run metrics and latency samples, so the sweep doubles as
//! the at-scale worker-count determinism check. Wall-clock speedup is a
//! hardware property — the artefact records `host_cpus` so a single-core
//! container's flat curve is not mistaken for a sharding regression.

use bluescale_bench::scalability::{
    render_shards_json, render_shards_table, run_shards, ShardSweepConfig,
};
use bluescale_bench::{arg_u64, arg_usize_list, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ShardSweepConfig::default();
    config.client_counts = arg_usize_list(&args, "--clients", &config.client_counts);
    config.worker_counts = arg_usize_list(&args, "--workers", &config.worker_counts);
    if args.iter().any(|a| a == "--horizon") {
        config.horizon_override = Some(arg_u64(&args, "--horizon", 4_096));
    }

    println!(
        "# Sharded-execution scaling (U = {:.2}, busy synchronous release)\n",
        config.utilization
    );
    let points = run_shards(&config);
    println!("{}", render_shards_table(&points));

    let json = render_shards_json(&config, &points);
    let out = arg_value(&args, "--json").unwrap_or_else(|| "results/BENCH_shards.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
