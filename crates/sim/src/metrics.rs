//! Typed observability for the simulation kernel.
//!
//! Every component of a simulated interconnect reports into a single
//! [`MetricsRegistry`] instead of keeping ad-hoc counters. The registry has
//! two layers with different cost disciplines:
//!
//! * **Tallies** — named [`Counter`]s, gauges, [`OnlineStats`] and
//!   [`Samples`] keyed by [`ComponentId`]. These are the experiment
//!   *results* (grant counts, latency distributions) and are always
//!   recorded; each update is a b-tree lookup over a small, fixed key set.
//! * **Detail** — typed [`Event`]s in a bounded ring buffer plus
//!   per-request lifecycle tracking that yields end-to-end
//!   [`LatencyBreakdown`]s (queueing vs. NoC vs. memory service vs.
//!   response path). Off by default; when disabled every detail call is a
//!   single branch, so enabling metrics can never change simulation
//!   behaviour — only observe it.
//!
//! Determinism guarantee: nothing in this module feeds back into any
//! scheduling decision. A differential test in the workspace pins that a
//! detail-enabled run produces bit-identical traffic to a disabled one.
//!
//! # Example
//!
//! ```
//! use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! let se = ComponentId::Se { depth: 1, order: 0 };
//! reg.inc(se, Counter::Grants);
//! reg.inc(se, Counter::Grants);
//! assert_eq!(reg.counter(se, Counter::Grants), 2);
//! // Detail is off by default: events are dropped at a single branch.
//! reg.record(7, Event::Throttle { component: se });
//! assert!(reg.events().is_empty());
//! reg.enable_detail();
//! reg.record(8, Event::Throttle { component: se });
//! assert_eq!(reg.events().len(), 1);
//! ```

use crate::fault::FaultClass;
use crate::stats::{OnlineStats, Samples};
use crate::Cycle;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Identifies one instrumented component of the simulated system.
///
/// The ordering (derived) makes registry exports deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentId {
    /// The whole run (aggregates over every client).
    System,
    /// One client port (traffic generator), by client id.
    Client(u32),
    /// One Scale Element at `(depth, order)` in the tree (0 = root).
    Se {
        /// Tree depth (0 = root).
        depth: usize,
        /// Left-to-right position within the level.
        order: usize,
    },
    /// One local client port of an SE.
    Port {
        /// Tree depth of the owning SE.
        depth: usize,
        /// Position of the owning SE within its level.
        order: usize,
        /// Port index within the SE.
        port: usize,
    },
    /// The shared memory controller.
    Memory,
    /// One DRAM bank behind the controller.
    Bank(u32),
    /// An experiment-defined series (e.g. one interconnect kind in a
    /// comparison sweep). Gives benches a typed key without inventing
    /// fake hardware components.
    Series(u16),
}

impl ComponentId {
    /// The [`ComponentId::Port`] of port `port` under an
    /// [`ComponentId::Se`] component.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an SE.
    pub fn port(self, port: usize) -> ComponentId {
        match self {
            ComponentId::Se { depth, order } => ComponentId::Port { depth, order, port },
            other => panic!("{other} has no ports"),
        }
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentId::System => write!(f, "system"),
            ComponentId::Client(c) => write!(f, "client.{c}"),
            ComponentId::Se { depth, order } => write!(f, "se.{depth}.{order}"),
            ComponentId::Port { depth, order, port } => write!(f, "se.{depth}.{order}.p{port}"),
            ComponentId::Memory => write!(f, "mem"),
            ComponentId::Bank(b) => write!(f, "bank.{b}"),
            ComponentId::Series(s) => write!(f, "series.{s}"),
        }
    }
}

/// Monotone counters a component can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Requests released by a client (accepted by the interconnect or
    /// still queued at the horizon).
    Issued,
    /// Requests whose response reached the client.
    Completed,
    /// Requests that missed their deadline (late or never completed).
    Missed,
    /// Requests still queued client-side when the run ended.
    Backlog,
    /// Injection attempts bounced by a full port buffer.
    Rejected,
    /// Requests accepted into a component's input buffers.
    Enqueued,
    /// Arbitration grants issued.
    Grants,
    /// Cycles with pending work but no grant (budget throttling or
    /// backpressure).
    ThrottledCycles,
    /// Requests forwarded toward the provider/parent.
    Forwarded,
    /// Server-budget replenishments (period boundaries crossed).
    Replenishments,
    /// Requests accepted by the memory controller.
    MemAccepted,
    /// Requests whose memory service completed.
    MemCompleted,
    /// Row-buffer hits.
    RowHits,
    /// Row-buffer misses (cold rows or conflicts).
    RowMisses,
    /// Cycles the memory channel was busy.
    BusyCycles,
    /// Experiment trials run.
    Trials,
    /// Trials that completed without a single deadline miss.
    Successes,
    /// Faults injected by a fault plan (bursts fired, responses dropped,
    /// jittered accepts).
    FaultsInjected,
    /// Deadline misses flagged by the guard layer's per-request detector
    /// (at the deadline cycle, not at late delivery).
    MissesDetected,
    /// Watchdog re-injections of requests whose response never arrived.
    Retries,
    /// Memory responses discarded by a drop fault.
    ResponsesDropped,
    /// Responses suppressed because the request was already delivered
    /// (a watchdog retry raced the original response).
    DuplicateResponses,
    /// Clients demoted to best-effort by the quarantine guard.
    Quarantines,
    /// Grants committed without server budget (work-conserving overserve
    /// or an unprogrammed port) — the B-counter audit trail.
    BudgetOverruns,
    /// Reconfiguration requests that passed admission control.
    Admitted,
    /// Reconfiguration requests that failed admission control and were
    /// rolled back (distinct from [`Counter::Rejected`], which counts
    /// requests bounced at a full port).
    AdmissionRejected,
    /// Reconfiguration transitions applied to a live system (joins,
    /// leaves, task updates, quarantine demotions).
    Reconfigurations,
    /// Cycles between an accepted reconfiguration and the last affected
    /// server's replenishment boundary — the mode-change transition
    /// latency, summed over affected servers.
    TransitionCycles,
    /// Admission requests abandoned because their decision deadline passed
    /// (or their caller cancelled) before the verdict was produced. The
    /// control plane's per-request timeout discipline.
    AdmissionTimeouts,
    /// Admission requests refused by overload shedding (bounded queue over
    /// its tier watermark) — explicit rejections, never silent drops.
    Sheds,
    /// Journal records replayed while rebuilding control-plane state after
    /// a restart (crash-consistent recovery).
    RecoveryReplays,
    /// Runs that abandoned sharded parallel execution after a worker
    /// panicked and fell back to the serial engine for the remainder.
    ShardFallbacks,
    /// Root-arbitration grants deferred by the active memory policy (the
    /// request stays queued; counted once per deferred candidate-cycle).
    PolicyDeferred,
    /// Telemetry updates dropped because a subscriber's channel was full.
    /// Slow external readers shed their own stream instead of
    /// backpressuring the simulator.
    SubscriberLagged,
}

impl Counter {
    /// Stable snake_case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::Issued => "issued",
            Counter::Completed => "completed",
            Counter::Missed => "missed",
            Counter::Backlog => "backlog",
            Counter::Rejected => "rejected",
            Counter::Enqueued => "enqueued",
            Counter::Grants => "grants",
            Counter::ThrottledCycles => "throttled_cycles",
            Counter::Forwarded => "forwarded",
            Counter::Replenishments => "replenishments",
            Counter::MemAccepted => "mem_accepted",
            Counter::MemCompleted => "mem_completed",
            Counter::RowHits => "row_hits",
            Counter::RowMisses => "row_misses",
            Counter::BusyCycles => "busy_cycles",
            Counter::Trials => "trials",
            Counter::Successes => "successes",
            Counter::FaultsInjected => "faults_injected",
            Counter::MissesDetected => "misses_detected",
            Counter::Retries => "retries",
            Counter::ResponsesDropped => "responses_dropped",
            Counter::DuplicateResponses => "duplicate_responses",
            Counter::Quarantines => "quarantines",
            Counter::BudgetOverruns => "budget_overruns",
            Counter::Admitted => "admitted",
            Counter::AdmissionRejected => "admission_rejected",
            Counter::Reconfigurations => "reconfigurations",
            Counter::TransitionCycles => "transition_cycles",
            Counter::AdmissionTimeouts => "admission_timeouts",
            Counter::Sheds => "sheds",
            Counter::RecoveryReplays => "recovery_replays",
            Counter::ShardFallbacks => "shard_fallbacks",
            Counter::PolicyDeferred => "policy_deferred",
            Counter::SubscriberLagged => "subscriber_lagged",
        }
    }

    /// Unit of the counted quantity, for self-describing exports.
    pub fn unit(&self) -> &'static str {
        match self {
            Counter::Issued
            | Counter::Completed
            | Counter::Missed
            | Counter::Backlog
            | Counter::Rejected
            | Counter::Enqueued
            | Counter::Grants
            | Counter::Forwarded
            | Counter::MemAccepted
            | Counter::MemCompleted
            | Counter::RowHits
            | Counter::RowMisses
            | Counter::Retries
            | Counter::ResponsesDropped
            | Counter::DuplicateResponses => "requests",
            Counter::ThrottledCycles | Counter::BusyCycles | Counter::TransitionCycles => "cycles",
            Counter::Trials | Counter::Successes => "trials",
            Counter::Replenishments
            | Counter::FaultsInjected
            | Counter::MissesDetected
            | Counter::Quarantines
            | Counter::BudgetOverruns
            | Counter::Admitted
            | Counter::AdmissionRejected
            | Counter::Reconfigurations
            | Counter::AdmissionTimeouts
            | Counter::Sheds
            | Counter::RecoveryReplays
            | Counter::ShardFallbacks
            | Counter::PolicyDeferred
            | Counter::SubscriberLagged => "events",
        }
    }
}

/// Distributions a component can report (as [`OnlineStats`], [`Samples`]
/// or both — the recorder picks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SampleKind {
    /// End-to-end latency, cycles.
    Latency,
    /// Blocking latency (time lost to later-deadline traffic), cycles.
    Blocking,
    /// Latency divided by the request's deadline window.
    NormalizedResponse,
    /// Enqueue → first grant, cycles.
    Queueing,
    /// First grant → memory issue (request-path transit), cycles.
    NocTransit,
    /// Memory issue → memory completion, cycles.
    Service,
    /// Memory completion → client delivery, cycles.
    ResponseTransit,
    /// Fraction of issued requests that missed.
    MissRatio,
    /// An experiment-defined distribution.
    Custom(&'static str),
}

impl SampleKind {
    /// Unit of the observed quantity, for self-describing exports.
    pub fn unit(&self) -> &'static str {
        match self {
            SampleKind::Latency
            | SampleKind::Blocking
            | SampleKind::Queueing
            | SampleKind::NocTransit
            | SampleKind::Service
            | SampleKind::ResponseTransit => "cycles",
            SampleKind::NormalizedResponse | SampleKind::MissRatio => "ratio",
            SampleKind::Custom(_) => "value",
        }
    }
}

impl fmt::Display for SampleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleKind::Latency => write!(f, "latency"),
            SampleKind::Blocking => write!(f, "blocking"),
            SampleKind::NormalizedResponse => write!(f, "normalized_response"),
            SampleKind::Queueing => write!(f, "queueing"),
            SampleKind::NocTransit => write!(f, "noc_transit"),
            SampleKind::Service => write!(f, "service"),
            SampleKind::ResponseTransit => write!(f, "response_transit"),
            SampleKind::MissRatio => write!(f, "miss_ratio"),
            SampleKind::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// A typed simulation event. Replaces the free-form string traces on the
/// hot path: no formatting or allocation happens unless a consumer renders
/// the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A request entered a component's input buffer.
    Enqueue {
        /// The accepting component.
        component: ComponentId,
        /// Request id.
        request: u64,
    },
    /// An arbiter granted a request.
    Grant {
        /// The granting component.
        component: ComponentId,
        /// Winning port.
        port: usize,
        /// Request id.
        request: u64,
    },
    /// Pending work existed but nothing was granted this cycle.
    Throttle {
        /// The throttled component.
        component: ComponentId,
    },
    /// A server budget replenished at its period boundary.
    Replenish {
        /// The owning component.
        component: ComponentId,
        /// Port whose server replenished.
        port: usize,
    },
    /// The memory controller started servicing a request.
    MemIssue {
        /// Request id.
        request: u64,
        /// Service duration, cycles.
        service_cycles: u64,
    },
    /// The memory controller finished servicing a request.
    MemComplete {
        /// Request id.
        request: u64,
    },
    /// A fault plan injected a fault at a component.
    FaultInjected {
        /// Where the fault struck.
        component: ComponentId,
        /// The fault class.
        class: FaultClass,
    },
    /// The guard layer flagged a request past its deadline while still
    /// outstanding.
    DeadlineMiss {
        /// Owning client.
        client: u32,
        /// Request id.
        request: u64,
    },
    /// The watchdog re-injected a request whose response never arrived.
    Retry {
        /// Owning client.
        client: u32,
        /// Request id.
        request: u64,
    },
    /// A memory response was discarded by a drop fault.
    ResponseDropped {
        /// Owning client.
        client: u32,
        /// Request id.
        request: u64,
    },
    /// The quarantine guard demoted a client to best-effort.
    Quarantine {
        /// The demoted client.
        client: u32,
    },
    /// A reconfiguration request passed admission control; new server
    /// parameters swap in at each affected server's replenishment
    /// boundary.
    Reconfigured {
        /// The client whose reservation changed.
        client: u32,
    },
    /// A reconfiguration request failed admission control and was rolled
    /// back bit-identically.
    ReconfigRejected {
        /// The client whose request was refused.
        client: u32,
    },
    /// An admission request's decision deadline passed (or its caller
    /// cancelled) before a verdict was produced; the request was abandoned
    /// without mutating any state.
    AdmissionTimeout {
        /// The client (tenant slot) the abandoned request concerned.
        client: u32,
    },
    /// Overload shedding refused an admission request with an explicit
    /// rejection (bounded queue over its tier watermark).
    Shed {
        /// The client (tenant slot) the shed request concerned.
        client: u32,
    },
    /// A journal record was replayed during crash recovery.
    RecoveryReplay {
        /// Sequence number of the replayed record.
        seq: u64,
    },
    /// A sharded run abandoned parallel execution after a worker panicked
    /// and continued on the serial engine.
    ShardFallback {
        /// The shard whose worker panicked.
        shard: u32,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Enqueue { component, request } => {
                write!(f, "{component} enqueue req#{request}")
            }
            Event::Grant {
                component,
                port,
                request,
            } => write!(f, "{component} grant p{port} req#{request}"),
            Event::Throttle { component } => write!(f, "{component} throttle"),
            Event::Replenish { component, port } => {
                write!(f, "{component} replenish p{port}")
            }
            Event::MemIssue {
                request,
                service_cycles,
            } => write!(f, "mem issue req#{request} ({service_cycles} cy)"),
            Event::MemComplete { request } => write!(f, "mem complete req#{request}"),
            Event::FaultInjected { component, class } => {
                write!(f, "{component} fault {class}")
            }
            Event::DeadlineMiss { client, request } => {
                write!(f, "client.{client} deadline miss req#{request}")
            }
            Event::Retry { client, request } => {
                write!(f, "client.{client} retry req#{request}")
            }
            Event::ResponseDropped { client, request } => {
                write!(f, "client.{client} response dropped req#{request}")
            }
            Event::Quarantine { client } => write!(f, "client.{client} quarantined"),
            Event::Reconfigured { client } => {
                write!(f, "client.{client} reconfigured")
            }
            Event::ReconfigRejected { client } => {
                write!(f, "client.{client} reconfiguration rejected")
            }
            Event::AdmissionTimeout { client } => {
                write!(f, "client.{client} admission timed out")
            }
            Event::Shed { client } => write!(f, "client.{client} shed"),
            Event::RecoveryReplay { seq } => write!(f, "recovery replay #{seq}"),
            Event::ShardFallback { shard } => {
                write!(f, "shard.{shard} fell back to serial execution")
            }
        }
    }
}

/// An [`Event`] plus the cycle at which it occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Cycle at which the event occurred.
    pub at: Cycle,
    /// The event.
    pub event: Event,
}

/// Where one completed request spent its life, in cycles.
///
/// `queueing + noc_transit + service + response_transit` may undershoot
/// `total` by the cycles spent between job release and interconnect
/// acceptance (client-side backlog).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyBreakdown {
    /// The client that owns the request.
    pub client: u32,
    /// Enqueue → first grant.
    pub queueing: u64,
    /// First grant → memory issue.
    pub noc_transit: u64,
    /// Memory service time.
    pub service: u64,
    /// Memory completion → delivery at the client port.
    pub response_transit: u64,
    /// Enqueue → delivery.
    pub total: u64,
}

/// Per-request lifecycle record kept while a request is in flight.
#[derive(Debug, Clone, Copy)]
struct Lifecycle {
    client: u32,
    enqueued_at: Cycle,
    first_grant: Option<(ComponentId, Cycle)>,
    mem_issue: Option<Cycle>,
    mem_complete: Option<Cycle>,
}

/// The typed observability registry. See the module docs for the layering.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    detail: bool,
    event_capacity: usize,
    /// Default retention window applied to raw-sample collectors created
    /// after it is set ([`Samples::set_window`]); `None` retains everything.
    sample_window: Option<usize>,
    counters: BTreeMap<(ComponentId, Counter), u64>,
    gauges: BTreeMap<(ComponentId, &'static str), f64>,
    stats: BTreeMap<(ComponentId, SampleKind), OnlineStats>,
    samples: BTreeMap<(ComponentId, SampleKind), Samples>,
    events: VecDeque<TimedEvent>,
    inflight: BTreeMap<u64, Lifecycle>,
}

/// Default bound on retained events (matches the string tracer's bound).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

impl MetricsRegistry {
    /// Creates a registry with detail recording disabled.
    pub fn new() -> Self {
        Self {
            detail: false,
            event_capacity: DEFAULT_EVENT_CAPACITY,
            ..Self::default()
        }
    }

    /// Creates a registry with detail recording enabled and an explicit
    /// event-ring capacity.
    pub fn with_detail(event_capacity: usize) -> Self {
        Self {
            detail: true,
            event_capacity,
            ..Self::default()
        }
    }

    /// Whether detail recording (events + request lifecycles) is active.
    pub fn detail(&self) -> bool {
        self.detail
    }

    /// Turns detail recording on.
    pub fn enable_detail(&mut self) {
        self.detail = true;
    }

    /// Turns detail recording off (retained events are kept).
    pub fn disable_detail(&mut self) {
        self.detail = false;
    }

    /// Sets the default retention window for raw-sample collectors and
    /// applies it to every existing collector. Long streaming runs use this
    /// to bound memory; figure-producing runs leave it `None` so full
    /// sequences (and their exact percentiles) are preserved.
    pub fn set_sample_window(&mut self, window: Option<usize>) {
        self.sample_window = window;
        for samples in self.samples.values_mut() {
            samples.set_window(window);
        }
    }

    /// The default retention window for raw-sample collectors.
    pub fn sample_window(&self) -> Option<usize> {
        self.sample_window
    }

    // ----- counters --------------------------------------------------

    /// Adds one to a counter.
    pub fn inc(&mut self, component: ComponentId, counter: Counter) {
        self.add(component, counter, 1);
    }

    /// Adds `n` to a counter.
    pub fn add(&mut self, component: ComponentId, counter: Counter, n: u64) {
        *self.counters.entry((component, counter)).or_insert(0) += n;
    }

    /// Subtracts `n` from a counter, saturating at zero (used when an
    /// optimistic count must be retracted, e.g. a rejected injection).
    pub fn sub(&mut self, component: ComponentId, counter: Counter, n: u64) {
        if let Some(v) = self.counters.get_mut(&(component, counter)) {
            *v = v.saturating_sub(n);
        }
    }

    /// Overwrites a counter with an externally maintained absolute value
    /// (used to mirror a component's internal tallies, e.g. the memory
    /// controller's).
    pub fn set_counter(&mut self, component: ComponentId, counter: Counter, value: u64) {
        self.counters.insert((component, counter), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, component: ComponentId, counter: Counter) -> u64 {
        self.counters
            .get(&(component, counter))
            .copied()
            .unwrap_or(0)
    }

    /// The values of `counter` across the `ports` ports of the SE at
    /// `(depth, order)` — the migrated per-port tallies of a local
    /// scheduler.
    pub fn port_counters(
        &self,
        depth: usize,
        order: usize,
        ports: usize,
        counter: Counter,
    ) -> Vec<u64> {
        (0..ports)
            .map(|port| self.counter(ComponentId::Port { depth, order, port }, counter))
            .collect()
    }

    // ----- gauges ----------------------------------------------------

    /// Sets a named gauge (last write wins).
    pub fn set_gauge(&mut self, component: ComponentId, name: &'static str, value: f64) {
        self.gauges.insert((component, name), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, component: ComponentId, name: &'static str) -> Option<f64> {
        self.gauges.get(&(component, name)).copied()
    }

    // ----- distributions ---------------------------------------------

    /// Pushes an observation into a constant-memory [`OnlineStats`]
    /// accumulator.
    pub fn observe(&mut self, component: ComponentId, kind: SampleKind, value: f64) {
        self.stats.entry((component, kind)).or_default().push(value);
    }

    /// A copy of an accumulator (empty if never touched).
    pub fn stat(&self, component: ComponentId, kind: SampleKind) -> OnlineStats {
        self.stats
            .get(&(component, kind))
            .copied()
            .unwrap_or_default()
    }

    /// Pushes a raw observation into a [`Samples`] collector (retained for
    /// percentile reporting; bounded by the registry's sample window, if
    /// one is set).
    pub fn sample(&mut self, component: ComponentId, kind: SampleKind, value: f64) {
        let window = self.sample_window;
        self.samples
            .entry((component, kind))
            .or_insert_with(|| Samples::with_window(window))
            .push(value);
    }

    /// Borrowed view of a raw-sample collector.
    pub fn samples(&self, component: ComponentId, kind: SampleKind) -> Option<&Samples> {
        self.samples.get(&(component, kind))
    }

    /// Mutable view of a raw-sample collector (percentile queries sort in
    /// place), creating it if absent.
    pub fn samples_mut(&mut self, component: ComponentId, kind: SampleKind) -> &mut Samples {
        let window = self.sample_window;
        self.samples
            .entry((component, kind))
            .or_insert_with(|| Samples::with_window(window))
    }

    // ----- iteration (delta extraction, exports) ----------------------

    /// Iterates every counter in deterministic key order.
    pub fn counters_iter(&self) -> impl Iterator<Item = ((ComponentId, Counter), u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates every gauge in deterministic key order.
    pub fn gauges_iter(&self) -> impl Iterator<Item = ((ComponentId, &'static str), f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates every accumulator in deterministic key order.
    pub fn stats_iter(&self) -> impl Iterator<Item = ((ComponentId, SampleKind), &OnlineStats)> {
        self.stats.iter().map(|(&k, v)| (k, v))
    }

    /// Iterates every raw-sample collector in deterministic key order.
    pub fn samples_iter(&self) -> impl Iterator<Item = ((ComponentId, SampleKind), &Samples)> {
        self.samples.iter().map(|(&k, v)| (k, v))
    }

    // ----- events ----------------------------------------------------

    /// Records a typed event if detail is enabled, evicting the oldest
    /// event when the ring is full. With capacity 0 nothing is retained.
    pub fn record(&mut self, at: Cycle, event: Event) {
        if !self.detail || self.event_capacity == 0 {
            return;
        }
        while self.events.len() >= self.event_capacity {
            self.events.pop_front();
        }
        self.events.push_back(TimedEvent { at, event });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> &VecDeque<TimedEvent> {
        &self.events
    }

    /// Drops all retained events.
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    // ----- request lifecycle -----------------------------------------

    /// Marks `request` (owned by `client`) as accepted into `component`'s
    /// buffers at cycle `at`. Starts lifecycle tracking when detail is on.
    pub fn request_enqueued(
        &mut self,
        at: Cycle,
        request: u64,
        client: u32,
        component: ComponentId,
    ) {
        if !self.detail {
            return;
        }
        self.record(at, Event::Enqueue { component, request });
        self.inflight.entry(request).or_insert(Lifecycle {
            client,
            enqueued_at: at,
            first_grant: None,
            mem_issue: None,
            mem_complete: None,
        });
    }

    /// Marks `request` as granted by `component` at cycle `at`. Only the
    /// first grant (the leaf SE's) defines the queueing delay.
    pub fn request_granted(
        &mut self,
        at: Cycle,
        request: u64,
        component: ComponentId,
        port: usize,
    ) {
        if !self.detail {
            return;
        }
        self.record(
            at,
            Event::Grant {
                component,
                port,
                request,
            },
        );
        if let Some(entry) = self.inflight.get_mut(&request) {
            if entry.first_grant.is_none() {
                entry.first_grant = Some((component, at));
            }
        }
    }

    /// Marks `request` as entering memory service at cycle `at`.
    pub fn request_mem_issue(&mut self, at: Cycle, request: u64, service_cycles: u64) {
        if !self.detail {
            return;
        }
        self.record(
            at,
            Event::MemIssue {
                request,
                service_cycles,
            },
        );
        if let Some(entry) = self.inflight.get_mut(&request) {
            if entry.mem_issue.is_none() {
                entry.mem_issue = Some(at);
            }
        }
    }

    /// Marks `request`'s memory service as complete at cycle `at`.
    pub fn request_mem_complete(&mut self, at: Cycle, request: u64) {
        if !self.detail {
            return;
        }
        self.record(at, Event::MemComplete { request });
        if let Some(entry) = self.inflight.get_mut(&request) {
            if entry.mem_complete.is_none() {
                entry.mem_complete = Some(at);
            }
        }
    }

    /// Marks `request` as delivered back to its client at cycle `at`,
    /// closes its lifecycle and records the latency breakdown — per
    /// client, and queueing per the granting SE. Returns the breakdown,
    /// or `None` when the request was never tracked (detail off, or it
    /// was enqueued before detail was enabled).
    pub fn request_completed(&mut self, at: Cycle, request: u64) -> Option<LatencyBreakdown> {
        if !self.detail {
            return None;
        }
        let entry = self.inflight.remove(&request)?;
        let (grant_se, granted_at) = match entry.first_grant {
            Some((se, t)) => (Some(se), t),
            None => (None, entry.enqueued_at),
        };
        let mem_issue = entry.mem_issue.unwrap_or(granted_at);
        let mem_complete = entry.mem_complete.unwrap_or(mem_issue);
        let breakdown = LatencyBreakdown {
            client: entry.client,
            queueing: granted_at.saturating_sub(entry.enqueued_at),
            noc_transit: mem_issue.saturating_sub(granted_at),
            service: mem_complete.saturating_sub(mem_issue),
            response_transit: at.saturating_sub(mem_complete),
            total: at.saturating_sub(entry.enqueued_at),
        };
        let client = ComponentId::Client(entry.client);
        self.sample(client, SampleKind::Queueing, breakdown.queueing as f64);
        self.sample(client, SampleKind::NocTransit, breakdown.noc_transit as f64);
        self.sample(client, SampleKind::Service, breakdown.service as f64);
        self.sample(
            client,
            SampleKind::ResponseTransit,
            breakdown.response_transit as f64,
        );
        if let Some(se) = grant_se {
            self.sample(se, SampleKind::Queueing, breakdown.queueing as f64);
        }
        Some(breakdown)
    }

    /// Requests currently tracked in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    // ----- aggregation & export --------------------------------------

    /// Merges another registry into this one: counters add, gauges take
    /// `other`'s value, accumulators merge, raw samples concatenate, and
    /// `other`'s events append (subject to this ring's capacity).
    /// In-flight lifecycles are not merged — they are transient state.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&key, &v) in &other.counters {
            *self.counters.entry(key).or_insert(0) += v;
        }
        for (&key, &v) in &other.gauges {
            self.gauges.insert(key, v);
        }
        for (&key, stats) in &other.stats {
            self.stats.entry(key).or_default().merge(stats);
        }
        let window = self.sample_window;
        for (&key, samples) in &other.samples {
            self.samples
                .entry(key)
                .or_insert_with(|| Samples::with_window(window))
                .extend(samples.as_slice().iter().copied());
        }
        for ev in &other.events {
            if self.event_capacity == 0 {
                break;
            }
            while self.events.len() >= self.event_capacity {
                self.events.pop_front();
            }
            self.events.push_back(*ev);
        }
    }

    /// Serializes the registry to a deterministic JSON object (keys sorted
    /// by component, then metric). Raw-sample collectors are summarized as
    /// count/mean/min/p50/p95/p99/max; percentile queries sort in place,
    /// hence `&mut`.
    pub fn to_json(&mut self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"detail\": ");
        out.push_str(if self.detail { "true" } else { "false" });
        out.push_str(",\n  \"counters\": {");
        push_entries(
            &mut out,
            self.counters
                .iter()
                .map(|((c, k), v)| (format!("{c}/{}", k.name()), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_entries(
            &mut out,
            self.gauges
                .iter()
                .map(|((c, name), v)| (format!("{c}/{name}"), json_f64(*v))),
        );
        out.push_str("},\n  \"stats\": {");
        push_entries(
            &mut out,
            self.stats.iter().map(|((c, k), s)| {
                (
                    format!("{c}/{k}"),
                    format!(
                        "{{\"count\": {}, \"mean\": {}, \"std_dev\": {}, \"min\": {}, \"max\": {}}}",
                        s.count(),
                        json_f64(s.mean()),
                        json_f64(s.std_dev()),
                        json_opt(s.min()),
                        json_opt(s.max()),
                    ),
                )
            }),
        );
        out.push_str("},\n  \"samples\": {");
        let summaries: Vec<(String, String)> = self
            .samples
            .iter_mut()
            .map(|((c, k), s)| {
                (
                    format!("{c}/{k}"),
                    format!(
                        "{{\"count\": {}, \"mean\": {}, \"min\": {}, \"p50\": {}, \
                         \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                        s.len(),
                        json_opt(s.mean()),
                        json_opt(s.min()),
                        json_opt(s.percentile(50.0)),
                        json_opt(s.percentile(95.0)),
                        json_opt(s.percentile(99.0)),
                        json_opt(s.max()),
                    ),
                )
            })
            .collect();
        push_entries(&mut out, summaries.into_iter());
        out.push_str("},\n  \"events_retained\": ");
        out.push_str(&self.events.len().to_string());
        out.push_str(",\n  \"requests_in_flight\": ");
        out.push_str(&self.inflight.len().to_string());
        out.push_str("\n}\n");
        out
    }
}

/// Renders a finite f64 for JSON (`null` otherwise).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_owned())
}

fn push_entries(out: &mut String, entries: impl Iterator<Item = (String, String)>) {
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&key);
        out.push_str("\": ");
        out.push_str(&value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SE: ComponentId = ComponentId::Se { depth: 1, order: 0 };

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        assert_eq!(reg.counter(SE, Counter::Grants), 0);
        reg.inc(SE, Counter::Grants);
        reg.add(SE, Counter::Grants, 4);
        assert_eq!(reg.counter(SE, Counter::Grants), 5);
        reg.sub(SE, Counter::Grants, 2);
        assert_eq!(reg.counter(SE, Counter::Grants), 3);
        // Sub on an untouched counter saturates silently.
        reg.sub(SE, Counter::Missed, 7);
        assert_eq!(reg.counter(SE, Counter::Missed), 0);
    }

    #[test]
    fn port_counters_collects_a_row() {
        let mut reg = MetricsRegistry::new();
        reg.add(SE.port(0), Counter::Grants, 2);
        reg.add(SE.port(2), Counter::Grants, 5);
        assert_eq!(
            reg.port_counters(1, 0, 4, Counter::Grants),
            vec![2, 0, 5, 0]
        );
    }

    #[test]
    fn component_display_is_stable() {
        assert_eq!(ComponentId::System.to_string(), "system");
        assert_eq!(ComponentId::Client(3).to_string(), "client.3");
        assert_eq!(SE.to_string(), "se.1.0");
        assert_eq!(SE.port(2).to_string(), "se.1.0.p2");
        assert_eq!(ComponentId::Memory.to_string(), "mem");
        assert_eq!(ComponentId::Bank(7).to_string(), "bank.7");
        assert_eq!(ComponentId::Series(1).to_string(), "series.1");
    }

    #[test]
    #[should_panic(expected = "has no ports")]
    fn port_of_non_se_panics() {
        let _ = ComponentId::Memory.port(0);
    }

    #[test]
    fn detail_gates_events() {
        let mut reg = MetricsRegistry::new();
        reg.record(1, Event::Throttle { component: SE });
        assert!(reg.events().is_empty());
        reg.enable_detail();
        reg.record(2, Event::Throttle { component: SE });
        assert_eq!(reg.events().len(), 1);
        assert_eq!(reg.events()[0].at, 2);
        reg.disable_detail();
        reg.record(3, Event::Throttle { component: SE });
        assert_eq!(reg.events().len(), 1, "disabled detail drops events");
    }

    #[test]
    fn event_ring_wraps_at_capacity() {
        let mut reg = MetricsRegistry::with_detail(3);
        for i in 0..10 {
            reg.record(i, Event::MemComplete { request: i });
        }
        assert_eq!(reg.events().len(), 3);
        assert_eq!(reg.events()[0].at, 7);
        assert_eq!(reg.events()[2].at, 9);
    }

    #[test]
    fn event_ring_capacity_zero_and_one() {
        let mut zero = MetricsRegistry::with_detail(0);
        for i in 0..5 {
            zero.record(i, Event::MemComplete { request: i });
        }
        assert!(zero.events().is_empty(), "capacity 0 retains nothing");

        let mut one = MetricsRegistry::with_detail(1);
        for i in 0..5 {
            one.record(i, Event::MemComplete { request: i });
        }
        assert_eq!(one.events().len(), 1);
        assert_eq!(one.events()[0].at, 4, "capacity 1 keeps the newest");
    }

    #[test]
    fn lifecycle_yields_breakdown() {
        let mut reg = MetricsRegistry::with_detail(16);
        reg.request_enqueued(10, 42, 3, SE);
        reg.request_granted(14, 42, SE, 1);
        reg.request_mem_issue(16, 42, 4);
        reg.request_mem_complete(20, 42);
        let b = reg.request_completed(23, 42).expect("tracked");
        assert_eq!(b.client, 3);
        assert_eq!(b.queueing, 4);
        assert_eq!(b.noc_transit, 2);
        assert_eq!(b.service, 4);
        assert_eq!(b.response_transit, 3);
        assert_eq!(b.total, 13);
        assert_eq!(reg.inflight(), 0);
        // Breakdown samples land per client and queueing per SE.
        let q = reg
            .samples(ComponentId::Client(3), SampleKind::Queueing)
            .expect("recorded");
        assert_eq!(q.as_slice(), &[4.0]);
        let se_q = reg.samples(SE, SampleKind::Queueing).expect("recorded");
        assert_eq!(se_q.as_slice(), &[4.0]);
    }

    #[test]
    fn lifecycle_without_detail_is_inert() {
        let mut reg = MetricsRegistry::new();
        reg.request_enqueued(0, 1, 0, SE);
        assert_eq!(reg.inflight(), 0);
        assert_eq!(reg.request_completed(5, 1), None);
    }

    #[test]
    fn untracked_completion_returns_none() {
        let mut reg = MetricsRegistry::with_detail(4);
        assert_eq!(reg.request_completed(5, 99), None);
    }

    #[test]
    fn merge_adds_counters_and_concatenates_samples() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.inc(SE, Counter::Grants);
        b.add(SE, Counter::Grants, 2);
        b.inc(ComponentId::Memory, Counter::RowHits);
        a.sample(ComponentId::System, SampleKind::Latency, 1.0);
        b.sample(ComponentId::System, SampleKind::Latency, 2.0);
        a.observe(SE, SampleKind::Queueing, 10.0);
        b.observe(SE, SampleKind::Queueing, 20.0);
        b.set_gauge(ComponentId::System, "root_bandwidth", 0.5);
        a.merge(&b);
        assert_eq!(a.counter(SE, Counter::Grants), 3);
        assert_eq!(a.counter(ComponentId::Memory, Counter::RowHits), 1);
        assert_eq!(
            a.samples(ComponentId::System, SampleKind::Latency)
                .unwrap()
                .as_slice(),
            &[1.0, 2.0]
        );
        let merged = a.stat(SE, SampleKind::Queueing);
        assert_eq!(merged.count(), 2);
        assert!((merged.mean() - 15.0).abs() < 1e-12);
        assert_eq!(a.gauge(ComponentId::System, "root_bandwidth"), Some(0.5));
    }

    #[test]
    fn merge_equals_single_registry_stats() {
        // Merging per-shard registries must reproduce a single registry's
        // accumulator bit-for-bit (relies on the Welford merge).
        let data: Vec<f64> = (0..64).map(|i| (i as f64 * 0.7).sin() * 50.0).collect();
        let mut whole = MetricsRegistry::new();
        for &x in &data {
            whole.observe(SE, SampleKind::Latency, x);
        }
        let mut left = MetricsRegistry::new();
        let mut right = MetricsRegistry::new();
        for &x in &data[..20] {
            left.observe(SE, SampleKind::Latency, x);
        }
        for &x in &data[20..] {
            right.observe(SE, SampleKind::Latency, x);
        }
        left.merge(&right);
        let (a, b) = (
            left.stat(SE, SampleKind::Latency),
            whole.stat(SE, SampleKind::Latency),
        );
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-9);
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
    }

    #[test]
    fn json_export_is_deterministic_and_structured() {
        let mut reg = MetricsRegistry::with_detail(8);
        reg.inc(SE, Counter::Grants);
        reg.inc(ComponentId::Client(0), Counter::Issued);
        reg.set_gauge(ComponentId::System, "root_bandwidth", 0.75);
        for v in [1.0, 2.0, 3.0, 4.0] {
            reg.sample(ComponentId::System, SampleKind::Latency, v);
        }
        reg.observe(
            ComponentId::Series(0),
            SampleKind::Custom("miss_ratio"),
            0.25,
        );
        reg.record(5, Event::Throttle { component: SE });
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b, "export is deterministic");
        assert!(a.contains("\"se.1.0/grants\": 1"));
        assert!(a.contains("\"client.0/issued\": 1"));
        assert!(a.contains("\"system/root_bandwidth\": 0.75"));
        assert!(a.contains("\"series.0/miss_ratio\""));
        assert!(a.contains("\"p99\": 4"));
        assert!(a.contains("\"events_retained\": 1"));
        // Structure sanity: braces balance.
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "balanced JSON:\n{a}"
        );
    }

    #[test]
    fn registry_sample_window_bounds_collectors() {
        let mut reg = MetricsRegistry::new();
        reg.sample(ComponentId::System, SampleKind::Latency, 0.0);
        reg.set_sample_window(Some(8));
        for v in 1..=100 {
            reg.sample(ComponentId::System, SampleKind::Latency, v as f64);
            // A collector created after the window is set is bounded too.
            reg.sample(ComponentId::Client(0), SampleKind::Service, v as f64);
        }
        let sys = reg
            .samples(ComponentId::System, SampleKind::Latency)
            .unwrap();
        assert!(sys.len() < 16, "existing collector bounded: {}", sys.len());
        assert_eq!(sys.total_pushed(), 101);
        let cli = reg
            .samples(ComponentId::Client(0), SampleKind::Service)
            .unwrap();
        assert!(cli.len() < 16, "new collector bounded: {}", cli.len());
        assert_eq!(cli.as_slice().last().copied(), Some(100.0));
    }

    #[test]
    fn iteration_accessors_cover_all_layers() {
        let mut reg = MetricsRegistry::new();
        reg.inc(SE, Counter::Grants);
        reg.inc(ComponentId::Memory, Counter::RowHits);
        reg.set_gauge(ComponentId::System, "util", 0.5);
        reg.observe(SE, SampleKind::Queueing, 3.0);
        reg.sample(ComponentId::Client(1), SampleKind::Latency, 7.0);
        assert_eq!(reg.counters_iter().count(), 2);
        assert_eq!(reg.gauges_iter().count(), 1);
        assert_eq!(reg.stats_iter().count(), 1);
        let all: Vec<_> = reg.samples_iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, (ComponentId::Client(1), SampleKind::Latency));
        assert_eq!(all[0].1.as_slice(), &[7.0]);
    }

    #[test]
    fn counter_units_are_total() {
        // Every counter has a unit (the match is exhaustive by
        // construction); spot-check the semantics.
        assert_eq!(Counter::Issued.unit(), "requests");
        assert_eq!(Counter::BusyCycles.unit(), "cycles");
        assert_eq!(Counter::SubscriberLagged.unit(), "events");
        assert_eq!(SampleKind::Latency.unit(), "cycles");
        assert_eq!(SampleKind::MissRatio.unit(), "ratio");
    }

    #[test]
    fn json_handles_empty_registry() {
        let mut reg = MetricsRegistry::new();
        let s = reg.to_json();
        assert!(s.contains("\"counters\": {}"));
        assert!(s.contains("\"events_retained\": 0"));
    }
}
