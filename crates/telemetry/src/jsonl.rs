//! JSONL encoding of epochs, plus a parser/folder for replay.
//!
//! The line format is documented in the crate docs. The folder
//! ([`fold_jsonl`]) reconstructs end-of-run state from a stream: summing
//! signed counter deltas, concatenating sample windows per source, and
//! taking the last value of every instant record. A differential test in
//! the workspace pins that the fold reproduces the final registry exactly.
//!
//! The parser is a minimal recursive-descent JSON reader for the subset
//! this crate emits (objects, arrays, strings with simple escapes,
//! integer and float numbers, literals). It exists so the replay path has
//! no external dependencies.

use crate::delta::EpochDelta;
use bluescale_sim::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema version stamped on every line.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Renders one epoch as a single JSONL line (trailing newline included).
pub fn to_jsonl(delta: &EpochDelta) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"v\":{},\"epoch\":{},\"cycle\":{},\"records\":[",
        SCHEMA_VERSION, delta.epoch, delta.cycle
    );
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for c in &delta.counters {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"src\":\"{}\",\"comp\":\"{}\",\"metric\":\"{}\",\"unit\":\"{}\",\
             \"sem\":\"delta\",\"delta\":{},\"total\":{}}}",
            c.source,
            c.component,
            c.counter.name(),
            c.counter.unit(),
            c.delta,
            c.total
        );
    }
    for g in &delta.gauges {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"src\":\"{}\",\"comp\":\"{}\",\"metric\":\"{}\",\"unit\":\"value\",\
             \"sem\":\"instant\",\"value\":{}}}",
            g.source,
            g.component,
            g.name,
            json_f64(g.value)
        );
    }
    for s in &delta.stats {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"src\":\"{}\",\"comp\":\"{}\",\"metric\":\"{}\",\"unit\":\"{}\",\
             \"sem\":\"stat\",\"count\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
            s.source,
            s.component,
            s.kind,
            s.kind.unit(),
            s.count,
            json_f64(s.mean),
            json_opt(s.min),
            json_opt(s.max)
        );
    }
    for w in &delta.windows {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"src\":\"{}\",\"comp\":\"{}\",\"metric\":\"{}\",\"unit\":\"{}\",\
             \"sem\":\"window\",\"dropped\":{},\"values\":[",
            w.source,
            w.component,
            w.kind,
            w.kind.unit(),
            w.dropped
        );
        for (i, v) in w.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_f64(*v));
        }
        out.push_str("]}");
    }
    for s in &delta.slo {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"src\":\"slo\",\"comp\":\"client.{}\",\"metric\":\"{}\",\"unit\":\"ratio\",\
             \"sem\":\"instant\",\"value\":{}}}",
            s.tenant,
            s.metric,
            json_f64(s.value)
        );
    }
    out.push_str("]}\n");
    out
}

/// Shortest-roundtrip rendering of a finite f64 (`null` otherwise).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".to_owned())
}

// ---------------------------------------------------------------------
// Minimal JSON parsing
// ---------------------------------------------------------------------

/// A parsed JSON value (the subset this crate emits).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an i64 (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to consume the whole input.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_literal(
    b: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape '\\{}'", other as char)),
                });
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if is_float {
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| format!("bad number '{text}': {e}"))
    } else {
        text.parse::<i64>()
            .map(JsonValue::Int)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

// ---------------------------------------------------------------------
// Folding
// ---------------------------------------------------------------------

/// Identity of one folded series: `(source, component, metric)`.
pub type FoldKey = (String, String, String);

/// Last folded stat summary: `(count, mean, min, max)`.
pub type FoldedStat = (u64, f64, Option<f64>, Option<f64>);

/// End-of-run state reconstructed from a JSONL stream.
#[derive(Debug, Default, PartialEq)]
pub struct FoldedTelemetry {
    /// Epochs folded, in order.
    pub epochs: u64,
    /// Cycle of the last folded epoch.
    pub last_cycle: u64,
    /// Counter totals: [`FoldKey`] `-> Σ deltas`.
    pub counters: BTreeMap<FoldKey, i64>,
    /// Sample sequences: [`FoldKey`] `-> concatenated windows` plus the
    /// summed dropped count.
    pub samples: BTreeMap<FoldKey, (Vec<f64>, u64)>,
    /// Last value of every instant record (gauges and SLO values).
    pub instants: BTreeMap<FoldKey, f64>,
    /// Last stat summary per [`FoldKey`].
    pub stats: BTreeMap<FoldKey, FoldedStat>,
}

/// Folds a JSONL stream (one epoch per line; blank lines skipped) into
/// end-of-run state. Fails on schema-version mismatches, non-monotone
/// epochs or malformed lines.
pub fn fold_jsonl(stream: &str) -> Result<FoldedTelemetry, String> {
    let mut out = FoldedTelemetry::default();
    let mut last_epoch: Option<u64> = None;
    for (lineno, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let version = doc.get("v").and_then(JsonValue::as_i64).unwrap_or(-1);
        if version != SCHEMA_VERSION as i64 {
            return Err(format!("line {}: schema version {version}", lineno + 1));
        }
        let epoch =
            doc.get("epoch")
                .and_then(JsonValue::as_i64)
                .ok_or_else(|| format!("line {}: missing epoch", lineno + 1))? as u64;
        if let Some(prev) = last_epoch {
            if epoch <= prev {
                return Err(format!("line {}: epoch {epoch} after {prev}", lineno + 1));
            }
        }
        last_epoch = Some(epoch);
        out.epochs += 1;
        out.last_cycle = doc.get("cycle").and_then(JsonValue::as_i64).unwrap_or(0) as u64;
        let records = doc
            .get("records")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| format!("line {}: missing records", lineno + 1))?;
        for rec in records {
            let key = (
                rec.get("src")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_owned(),
                rec.get("comp")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_owned(),
                rec.get("metric")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_owned(),
            );
            match rec.get("sem").and_then(JsonValue::as_str) {
                Some("delta") => {
                    let delta = rec.get("delta").and_then(JsonValue::as_i64).unwrap_or(0);
                    *out.counters.entry(key).or_insert(0) += delta;
                }
                Some("window") => {
                    let entry = out.samples.entry(key).or_default();
                    entry.1 += rec.get("dropped").and_then(JsonValue::as_i64).unwrap_or(0) as u64;
                    for v in rec.get("values").and_then(JsonValue::as_arr).unwrap_or(&[]) {
                        entry
                            .0
                            .push(v.as_f64().ok_or_else(|| "non-numeric sample".to_owned())?);
                    }
                }
                Some("instant") => {
                    let value = rec.get("value").and_then(JsonValue::as_f64).unwrap_or(0.0);
                    out.instants.insert(key, value);
                }
                Some("stat") => {
                    out.stats.insert(
                        key,
                        (
                            rec.get("count").and_then(JsonValue::as_i64).unwrap_or(0) as u64,
                            rec.get("mean").and_then(JsonValue::as_f64).unwrap_or(0.0),
                            rec.get("min").and_then(JsonValue::as_f64),
                            rec.get("max").and_then(JsonValue::as_f64),
                        ),
                    );
                }
                other => {
                    return Err(format!("line {}: bad sem {other:?}", lineno + 1));
                }
            }
        }
    }
    Ok(out)
}

impl FoldedTelemetry {
    /// Checks that the folded stream for `source` reconstructs `registry`
    /// exactly: every counter total matches, every raw-sample sequence
    /// matches bit-for-bit (modulo window eviction, where the retained
    /// suffix must match and the accounting must balance), every gauge
    /// matches its last streamed value, and every accumulator's count,
    /// mean, min and max match its last streamed summary.
    ///
    /// The registry is mutated only through its public sample accessors
    /// (no sorting): call this after the run, on the final snapshot.
    pub fn matches_registry(&self, source: &str, registry: &MetricsRegistry) -> Result<(), String> {
        for ((component, counter), total) in registry.counters_iter() {
            let key = (
                source.to_owned(),
                component.to_string(),
                counter.name().to_owned(),
            );
            let folded = self.counters.get(&key).copied().unwrap_or(0);
            if folded != total as i64 {
                return Err(format!(
                    "{source}/{component}/{}: folded {folded} != registry {total}",
                    counter.name()
                ));
            }
        }
        for (key, &folded) in &self.counters {
            if key.0 == source && folded != 0 {
                let found = registry
                    .counters_iter()
                    .any(|((c, k), _)| c.to_string() == key.1 && k.name() == key.2);
                if !found {
                    return Err(format!("folded counter {key:?} missing from registry"));
                }
            }
        }
        for ((component, kind), samples) in registry.samples_iter() {
            let key = (source.to_owned(), component.to_string(), kind.to_string());
            let (folded, folded_dropped) = self
                .samples
                .get(&key)
                .ok_or_else(|| format!("no folded samples for {key:?}"))?;
            if samples.evicted() == 0 && *folded_dropped == 0 {
                if folded.as_slice() != samples.as_slice() {
                    return Err(format!(
                        "{source}/{component}/{kind}: folded sequence ({} values) != registry ({})",
                        folded.len(),
                        samples.len()
                    ));
                }
            } else {
                // Windowed collector: the stream saw everything except
                // what was evicted between flushes; totals must balance
                // and the retained suffix must agree.
                if folded.len() as u64 + folded_dropped != samples.total_pushed() {
                    return Err(format!(
                        "{source}/{component}/{kind}: folded {} + dropped {} != pushed {}",
                        folded.len(),
                        folded_dropped,
                        samples.total_pushed()
                    ));
                }
                let retained = samples.as_slice();
                let suffix = &folded[folded.len() - retained.len().min(folded.len())..];
                if &retained[retained.len() - suffix.len()..] != suffix {
                    return Err(format!("{source}/{component}/{kind}: suffix mismatch"));
                }
            }
        }
        for ((component, name), value) in registry.gauges_iter() {
            let key = (source.to_owned(), component.to_string(), name.to_owned());
            match self.instants.get(&key) {
                Some(v) if v.to_bits() == value.to_bits() => {}
                other => {
                    return Err(format!(
                        "{source}/{component}/{name}: folded gauge {other:?} != {value}"
                    ))
                }
            }
        }
        for ((component, kind), stats) in registry.stats_iter() {
            let key = (source.to_owned(), component.to_string(), kind.to_string());
            let (count, mean, min, max) = self
                .stats
                .get(&key)
                .copied()
                .ok_or_else(|| format!("no folded stat for {key:?}"))?;
            if count != stats.count()
                || (mean - stats.mean()).abs() > 1e-9
                || min != stats.min()
                || max != stats.max()
            {
                return Err(format!(
                    "{source}/{component}/{kind}: stat summary mismatch"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaEngine;
    use bluescale_sim::metrics::{ComponentId, Counter, SampleKind};

    #[test]
    fn parser_roundtrips_basics() {
        let v = parse_json(r#"{"a":1,"b":-2.5,"c":[true,null,"x\" y"],"d":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        let arr = v.get("c").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\" y"));
        assert_eq!(v.get("d").unwrap(), &JsonValue::Obj(vec![]));
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} extra").is_err());
    }

    #[test]
    fn fold_reconstructs_engine_output() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        let mut stream = String::new();
        let client = ComponentId::Client(2);
        for round in 0u64..5 {
            reg.add(client, Counter::Issued, round + 1);
            reg.sample(client, SampleKind::Latency, round as f64 * 1.5);
            reg.observe(client, SampleKind::Queueing, round as f64);
            reg.set_gauge(ComponentId::System, "util", round as f64 / 10.0);
            let delta = engine.extract(round * 100, &[("harness", &reg)]);
            stream.push_str(&to_jsonl(&delta));
        }
        let folded = fold_jsonl(&stream).unwrap();
        assert_eq!(folded.epochs, 5);
        assert_eq!(folded.last_cycle, 400);
        folded.matches_registry("harness", &reg).unwrap();
    }

    #[test]
    fn fold_detects_divergence() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.add(ComponentId::System, Counter::Grants, 3);
        let stream = to_jsonl(&engine.extract(0, &[("harness", &reg)]));
        let folded = fold_jsonl(&stream).unwrap();
        folded.matches_registry("harness", &reg).unwrap();
        // A counter bumped after the last flush must be caught.
        reg.inc(ComponentId::System, Counter::Grants);
        assert!(folded.matches_registry("harness", &reg).is_err());
    }

    #[test]
    fn fold_rejects_non_monotone_epochs() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.inc(ComponentId::System, Counter::Grants);
        let line = to_jsonl(&engine.extract(0, &[("harness", &reg)]));
        let doubled = format!("{line}{line}");
        assert!(fold_jsonl(&doubled).is_err());
    }

    #[test]
    fn windowed_fold_balances_accounting() {
        let mut reg = MetricsRegistry::new();
        reg.set_sample_window(Some(4));
        let mut engine = DeltaEngine::new();
        let mut stream = String::new();
        let client = ComponentId::Client(0);
        for round in 0..10 {
            for i in 0..7 {
                reg.sample(client, SampleKind::Latency, (round * 7 + i) as f64);
            }
            stream.push_str(&to_jsonl(
                &engine.extract(round as u64, &[("harness", &reg)]),
            ));
        }
        let folded = fold_jsonl(&stream).unwrap();
        folded.matches_registry("harness", &reg).unwrap();
    }
}
