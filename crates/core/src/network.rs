//! The complete BlueScale interconnect: a tree of Scale Elements between
//! the clients and the shared memory sub-system.
//!
//! Construction performs the paper's full analysis pipeline: the interface
//! selection problems are resolved level-by-level from the leaves (level
//! `L`) to the root (level 0), each level's chosen `(Π, Θ)` interfaces
//! becoming the server tasks of the level above; finally the root admission
//! test `Σ Θ/Π ≤ 1` decides system schedulability
//! ([`CompositionReport::schedulable`]).
//!
//! At run time each SE arbitrates independently per cycle; requests move one
//! level per cycle toward the memory controller and responses return through
//! a pipelined response path.

use crate::element::ScaleElement;
use crate::selector::TableRow;
use crate::soa::SoaCore;
use crate::topology::{BlueScaleConfig, SeIndex};
use bluescale_interconnect::admission::{CancelToken, ReconfigOutcome};
use bluescale_interconnect::{ClientId, Interconnect, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{ControllerStats, DramConfig, GrantCandidate, MemoryController, MemoryPolicy};
use bluescale_rt::interface::root_admissible;
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::TaskSet;
use bluescale_rt::Error as RtError;
use bluescale_sim::fault::{FaultKind, FaultPlan};
use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry};
use bluescale_sim::Cycle;
use std::collections::VecDeque;
use std::fmt;

/// Errors raised while building (or reconfiguring) a BlueScale instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The number of task sets does not match the configured client count.
    WrongClientCount {
        /// Clients the configuration expects.
        expected: usize,
        /// Task sets supplied.
        got: usize,
    },
    /// A client index was out of range.
    UnknownClient {
        /// The offending index.
        client: usize,
    },
    /// The analysis rejected the task parameters outright (invalid task,
    /// duplicate ids).
    Analysis(RtError),
    /// Restoring the previous task set after a rejected admission failed;
    /// the affected request path may be left with fallback interfaces.
    /// Should be unreachable (the previous set was valid when installed)
    /// but is reported instead of panicking so a runtime manager can
    /// re-run admission.
    RollbackFailed {
        /// Client whose revert failed.
        client: usize,
        /// The underlying failure.
        source: Box<BuildError>,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WrongClientCount { expected, got } => {
                write!(f, "expected {expected} client task sets, got {got}")
            }
            BuildError::UnknownClient { client } => {
                write!(f, "client {client} out of range")
            }
            BuildError::Analysis(e) => write!(f, "analysis error: {e}"),
            BuildError::RollbackFailed { client, source } => {
                write!(f, "rollback for client {client} failed: {source}")
            }
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Analysis(e) => Some(e),
            BuildError::RollbackFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<RtError> for BuildError {
    fn from(e: RtError) -> Self {
        BuildError::Analysis(e)
    }
}

/// Errors raised when offering a request to the interconnect. Unlike the
/// [`Interconnect::inject`] trait method — which can only hand the request
/// back — these distinguish a transient full buffer from a malformed
/// request that no amount of retrying will fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// The request names a client port this interconnect does not have.
    UnknownClient {
        /// The out-of-range client id carried by the request.
        client: u32,
        /// How many client ports the interconnect has.
        num_clients: usize,
        /// The rejected request.
        request: MemoryRequest,
    },
    /// The client's leaf port buffer is full this cycle (retry later).
    PortFull(MemoryRequest),
}

impl InjectError {
    /// Recovers the rejected request (for re-queueing or logging).
    pub fn into_request(self) -> MemoryRequest {
        match self {
            InjectError::UnknownClient { request, .. } => request,
            InjectError::PortFull(request) => request,
        }
    }
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::UnknownClient {
                client,
                num_clients,
                ..
            } => write!(
                f,
                "request for unknown client {client} (interconnect has {num_clients} ports)"
            ),
            InjectError::PortFull(request) => {
                write!(f, "client {} port full this cycle", request.client)
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// Result of resolving all interface-selection problems over the tree.
#[derive(Debug, Clone)]
pub struct CompositionReport {
    /// Whether the analysis succeeded at every SE **and** the root
    /// admission test passed — the paper's condition for guaranteed
    /// schedulability.
    pub schedulable: bool,
    /// Whether minimum-bandwidth selection succeeded everywhere (when
    /// false, over-utilized SEs fell back to utilization-proportional
    /// best-effort interfaces and `schedulable` is false).
    pub analysis_ok: bool,
    /// Total bandwidth demanded from the memory controller by the root's
    /// server tasks (`Σ Θ/Π` at level 1).
    pub root_bandwidth: f64,
    /// Selected interfaces, indexed `[depth][order][port]`.
    pub interfaces: Vec<Vec<Vec<Option<PeriodicResource>>>>,
    /// SEs whose parameters were rewritten by the most recent
    /// (re)configuration — the whole tree on construction, only the
    /// affected request path afterwards.
    pub reprogrammed_elements: usize,
}

/// The BlueScale memory interconnect.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct BlueScaleInterconnect {
    config: BlueScaleConfig,
    /// `elements[d]` holds the `branch^d` SEs of depth `d` (0 = root).
    /// With the SoA engine active these remain the home of the interface
    /// selectors and analysis tables; their runtime state (buffers, server
    /// counters) is live only on the legacy path.
    elements: Vec<Vec<ScaleElement>>,
    /// The structure-of-arrays runtime engine
    /// ([`BlueScaleConfig::soa_core`]); `None` runs the legacy per-SE
    /// engine, kept as the differential oracle.
    soa: Option<SoaCore>,
    controller: MemoryController<MemoryRequest>,
    /// Memory-scheduling policy at the root-arbitration seam
    /// ([`BlueScaleConfig::mem_policy`]). A passive policy keeps the
    /// arbitration hot path byte-identical to having none.
    policy: Box<dyn MemoryPolicy>,
    ready: VecDeque<MemoryResponse>,
    service_events: VecDeque<ServiceEvent>,
    client_tasks: Vec<TaskSet>,
    composition: CompositionReport,
    /// Per-SE analysis outcome (`[depth][order]`): whether minimum-
    /// bandwidth selection succeeded there (false = fallback interfaces).
    se_analysis_ok: Vec<Vec<bool>>,
    metrics: MetricsRegistry,
    /// Interconnect-side fault plan (stuck grant ports, DRAM jitter,
    /// dropped responses). Empty by default, keeping `step` on the exact
    /// fault-free code path.
    faults: FaultPlan,
}

/// One path SE's trial result: `(depth, order, selected interfaces)`.
pub(crate) type PathTrial = (usize, usize, Vec<Option<PeriodicResource>>);

/// Why a cancellable admission trial produced no path: a final analytical
/// rejection versus a caller-side cancellation that decided nothing (the
/// request may be retried). Both leave the fabric untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TrialAbort {
    /// The analysis rejected the update (infeasible path SE, off-path
    /// fallback, or root overshoot).
    Rejected,
    /// The caller's [`CancelToken`] fired mid-analysis.
    Cancelled,
}

impl BlueScaleInterconnect {
    /// Builds a BlueScale instance and resolves all interface-selection
    /// problems for the given per-client task sets.
    ///
    /// If some SE's clients are analytically over-utilized, construction
    /// still succeeds — the affected SEs get utilization-proportional
    /// fallback interfaces — but [`CompositionReport::schedulable`] is
    /// `false`. This mirrors deploying a system that fails admission: the
    /// hardware still runs, the guarantee is simply absent.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::WrongClientCount`] on a task-set count
    /// mismatch, or [`BuildError::Analysis`] if task parameters are
    /// malformed (zero periods, duplicate ids).
    pub fn new(config: BlueScaleConfig, task_sets: &[TaskSet]) -> Result<Self, BuildError> {
        if task_sets.len() != config.num_clients {
            return Err(BuildError::WrongClientCount {
                expected: config.num_clients,
                got: task_sets.len(),
            });
        }
        let levels = config.levels();
        let mut elements: Vec<Vec<ScaleElement>> = (0..levels)
            .map(|d| {
                (0..config.elements_at(d))
                    .map(|y| {
                        let mut se = ScaleElement::with_queue_policy(
                            SeIndex::new(d, y),
                            config.branch,
                            config.buffer_capacity,
                            config.work_conserving,
                            config.low_level_policy,
                        );
                        se.selector_mut()
                            .set_period_divisor(config.granularity_divisor);
                        se
                    })
                    .collect()
            })
            .collect();

        // Load the leaf parameter tables from the client task sets.
        for (client, set) in task_sets.iter().enumerate() {
            let (order, port) = config.attach_point(client);
            let leaf = &mut elements[levels - 1][order];
            for task in set {
                leaf.selector_mut().load(TableRow {
                    port: port as u8,
                    task_id: task.id(),
                    period: task.period(),
                    deadline: config.analysis_deadline(task.period(), task.wcet()),
                    wcet: task.wcet(),
                })?;
            }
        }

        let mut this = Self {
            controller: MemoryController::new(
                config
                    .dram
                    .unwrap_or(DramConfig::flat(config.memory_service_cycles)),
            ),
            policy: config.mem_policy.build(),
            ready: VecDeque::new(),
            service_events: VecDeque::new(),
            client_tasks: task_sets.to_vec(),
            se_analysis_ok: (0..levels)
                .map(|d| vec![true; config.elements_at(d)])
                .collect(),
            metrics: MetricsRegistry::new(),
            faults: FaultPlan::default(),
            composition: CompositionReport {
                schedulable: false,
                analysis_ok: false,
                root_bandwidth: 0.0,
                interfaces: (0..levels)
                    .map(|d| vec![vec![None; config.branch]; config.elements_at(d)])
                    .collect(),
                reprogrammed_elements: 0,
            },
            config,
            elements,
            soa: None,
        };
        this.recompute_all()?;
        if this.config.soa_core {
            this.soa = Some(SoaCore::new(&this.config, &this.composition.interfaces));
        }
        Ok(this)
    }

    /// The static configuration.
    pub fn config(&self) -> &BlueScaleConfig {
        &self.config
    }

    /// The most recent composition (interface-selection) result.
    pub fn composition(&self) -> &CompositionReport {
        &self.composition
    }

    /// The task sets currently programmed per client.
    pub fn client_tasks(&self) -> &[TaskSet] {
        &self.client_tasks
    }

    /// The typed metrics registry. Counter tallies (per-SE grants,
    /// throttled cycles, forwards, memory-controller statistics) are always
    /// recorded; call [`MetricsRegistry::enable_detail`] to additionally
    /// record typed events and per-request latency breakdowns (bounded ring
    /// buffer — safe on long runs). Memory-controller counters are
    /// refreshed on each `metrics_mut` call.
    ///
    /// # Example
    ///
    /// ```
    /// # use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
    /// # use bluescale_rt::task::{Task, TaskSet};
    /// # use bluescale_interconnect::Interconnect;
    /// # let sets: Vec<TaskSet> =
    /// #     vec![TaskSet::new(vec![Task::new(0, 100, 2).unwrap()]).unwrap(); 4];
    /// let mut ic =
    ///     BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets)?;
    /// ic.metrics_mut().enable_detail();
    /// # Ok::<(), bluescale::BuildError>(())
    /// ```
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.controller.record_metrics(&mut self.metrics);
        if let Some(soa) = self.soa.as_mut() {
            soa.flush_metrics(&mut self.metrics);
        }
        &mut self.metrics
    }

    /// Read access to the metrics registry. Memory-controller counters may
    /// lag behind [`MemoryController::stats`](bluescale_mem::MemoryController::stats)
    /// until the next [`metrics_mut`](Self::metrics_mut) call — that lag is
    /// a pinned part of the contract (a `&self` read cannot flush), and
    /// `metrics_mut` reconverges the mirror *exactly* (pinned by
    /// `registry_lag_reconverges_exactly`). Callers needing mid-run memory
    /// statistics without a flush read [`memory_stats`](Self::memory_stats),
    /// which never lags.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The memory controller's live statistics. Unlike the registry mirror
    /// (refreshed only on [`metrics_mut`](Self::metrics_mut)), this reads
    /// the controller directly and can never be stale.
    pub fn memory_stats(&self) -> ControllerStats {
        self.controller.stats()
    }

    /// The active memory policy's stable name (bench/export labelling).
    pub fn memory_policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Per-SE forwarded-request counters, indexed `[depth][order]`
    /// (introspection for experiments; reads the registry's
    /// [`Counter::Forwarded`] tallies).
    pub fn forward_counts(&self) -> Vec<Vec<u64>> {
        (0..self.config.levels())
            .map(|depth| {
                (0..self.config.elements_at(depth))
                    .map(|order| {
                        // The SoA engine batches its tallies; merge the
                        // unflushed delta so mid-run reads stay exact.
                        self.metrics
                            .counter(ComponentId::Se { depth, order }, Counter::Forwarded)
                            + self
                                .soa
                                .as_ref()
                                .map_or(0, |s| s.pending_forwarded(depth, order))
                    })
                    .collect()
            })
            .collect()
    }

    /// Replaces one client's task set and refreshes server parameters
    /// **only along that client's request path** (leaf SE up to the root) —
    /// the scheduling-scalability property of Section 3.2. Returns the
    /// updated composition report.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownClient`] for an out-of-range client or
    /// [`BuildError::Analysis`] for malformed task parameters; in both
    /// cases the previous configuration is left untouched.
    pub fn update_client_tasks(
        &mut self,
        client: usize,
        tasks: TaskSet,
    ) -> Result<&CompositionReport, BuildError> {
        if client >= self.config.num_clients {
            return Err(BuildError::UnknownClient { client });
        }
        let levels = self.config.levels();
        let (leaf_order, port) = self.config.attach_point(client);
        let rows: Vec<TableRow> = tasks
            .iter()
            .map(|t| TableRow {
                port: port as u8,
                task_id: t.id(),
                period: t.period(),
                deadline: self.config.analysis_deadline(t.period(), t.wcet()),
                wcet: t.wcet(),
            })
            .collect();
        self.elements[levels - 1][leaf_order]
            .selector_mut()
            .reload_port(port as u8, &rows)?;
        self.client_tasks[client] = tasks;

        // Walk the request path from the leaf to the root, recomputing and
        // reprogramming each SE and refreshing the parent's table row.
        let mut order = leaf_order;
        let mut reprogrammed = 0;
        for depth in (0..levels).rev() {
            let (ifaces, ok) = Self::compute_or_fallback(&self.elements[depth][order]);
            self.se_analysis_ok[depth][order] = ok;
            self.elements[depth][order].program(&ifaces);
            if let Some(soa) = self.soa.as_mut() {
                soa.program_se(depth, order, &ifaces);
            }
            self.composition.interfaces[depth][order] = ifaces.clone();
            reprogrammed += 1;
            if depth > 0 {
                let parent_order = order / self.config.branch;
                let parent_port = (order % self.config.branch) as u8;
                let rows = Self::interface_rows(&self.config, parent_port, &ifaces);
                let (upper, lower) = self.elements.split_at_mut(depth);
                upper[depth - 1][parent_order]
                    .selector_mut()
                    .reload_port(parent_port, &rows)?;
                let _ = &lower; // silence unused when levels == 1
                order = parent_order;
            }
        }
        // Every other SE kept its parameters: refresh only the summary.
        self.composition.analysis_ok = self.se_analysis_ok.iter().flatten().all(|&ok| ok);
        self.composition.root_bandwidth = Self::bandwidth_sum(&self.composition.interfaces[0][0]);
        self.composition.schedulable =
            self.composition.analysis_ok && self.composition.root_bandwidth <= 1.0 + 1e-9;
        self.composition.reprogrammed_elements = reprogrammed;
        self.metrics.set_gauge(
            ComponentId::System,
            "root_bandwidth",
            self.composition.root_bandwidth,
        );
        Ok(&self.composition)
    }

    /// Admission control: applies `tasks` to `client` only if the updated
    /// composition stays schedulable; otherwise the previous configuration
    /// is restored and `Ok(false)` is returned. This is what a runtime
    /// manager calls before letting new software start on a client.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownClient`] or [`BuildError::Analysis`]
    /// for malformed inputs (the configuration is untouched in both
    /// cases), or [`BuildError::RollbackFailed`] if restoring the
    /// previous set after a rejection failed.
    pub fn admit_client_tasks(
        &mut self,
        client: usize,
        tasks: TaskSet,
    ) -> Result<bool, BuildError> {
        if client >= self.config.num_clients {
            return Err(BuildError::UnknownClient { client });
        }
        let previous = self.client_tasks[client].clone();
        let report = self.update_client_tasks(client, tasks)?;
        if report.schedulable {
            return Ok(true);
        }
        // Roll back: the previous set was valid when installed, so the
        // revert is expected to succeed — but surface a failure as an
        // error rather than a panic.
        if let Err(e) = self.update_client_tasks(client, previous) {
            return Err(BuildError::RollbackFailed {
                client,
                source: Box::new(e),
            });
        }
        Ok(false)
    }

    /// The table rows describing `tasks` at a leaf `port` (analysis
    /// deadlines deflated by the configured margin, as at construction).
    fn leaf_rows(&self, port: usize, tasks: &TaskSet) -> Vec<TableRow> {
        tasks
            .iter()
            .map(|t| TableRow {
                port: port as u8,
                task_id: t.id(),
                period: t.period(),
                deadline: self.config.analysis_deadline(t.period(), t.wcet()),
                wcet: t.wcet(),
            })
            .collect()
    }

    /// Admission-tests `tasks` for `client` without touching the live
    /// fabric: the interface-selection problems along the client's request
    /// path (leaf SE up to the root) are re-solved on *cloned* parameter
    /// tables, every other subtree reusing its cached interfaces from
    /// [`CompositionReport::interfaces`]. Returns the path's newly selected
    /// interfaces (leaf first) when the update is admissible:
    /// selection succeeded at every path SE, every off-path SE already held
    /// a valid analysis, and the root passes the **exact** admission test
    /// `Σ Θ/Π ≤ 1` ([`root_admissible`] — no floating-point tolerance, so
    /// a compositional overshoot of even one part in 2⁵³ is caught).
    /// The cancellation token (when supplied) is polled once per path SE —
    /// each `compute()` is the expensive unit of work — and an expired
    /// token aborts the trial with [`TrialAbort::Cancelled`]. The trial
    /// mutates nothing, so abandoning it mid-path needs no rollback.
    fn admission_trial_cancellable(
        &self,
        client: usize,
        tasks: &TaskSet,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<PathTrial>, TrialAbort> {
        let levels = self.config.levels();
        let (leaf_order, port) = self.config.attach_point(client);
        let mut trial: Vec<PathTrial> = Vec::with_capacity(levels);
        let mut order = leaf_order;
        let mut reload = port as u8;
        let mut child_ifaces: Option<Vec<Option<PeriodicResource>>> = None;
        for depth in (0..levels).rev() {
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return Err(TrialAbort::Cancelled);
            }
            let rows = match &child_ifaces {
                None => self.leaf_rows(port, tasks),
                Some(ifaces) => Self::interface_rows(&self.config, reload, ifaces),
            };
            let mut sel = self.elements[depth][order].selector().clone();
            if sel.reload_port(reload, &rows).is_err() {
                return Err(TrialAbort::Rejected);
            }
            // Admission has no fallback: an analytically infeasible path
            // SE rejects the request outright.
            let Ok(ifaces) = sel.compute() else {
                return Err(TrialAbort::Rejected);
            };
            trial.push((depth, order, ifaces.clone()));
            reload = (order % self.config.branch) as u8;
            order /= self.config.branch;
            child_ifaces = Some(ifaces);
        }
        // Off-path SEs keep their parameters; if any of them is already on
        // fallback interfaces the system has no guarantee to extend.
        let path: Vec<(usize, usize)> = trial.iter().map(|(d, o, _)| (*d, *o)).collect();
        for (depth, row) in self.se_analysis_ok.iter().enumerate() {
            for (order, &ok) in row.iter().enumerate() {
                if !ok && !path.contains(&(depth, order)) {
                    return Err(TrialAbort::Rejected);
                }
            }
        }
        let (_, _, root) = trial.last().expect("levels >= 1");
        let root_ifaces: Vec<PeriodicResource> = root.iter().flatten().copied().collect();
        if root_admissible(&root_ifaces) {
            Ok(trial)
        } else {
            Err(TrialAbort::Rejected)
        }
    }

    /// Runs admission control for `client`/`tasks` and, when admitted,
    /// commits everything *except* runtime-engine programming: the leaf
    /// table rows, the cached interfaces and analysis flags along the
    /// request path, the parent table rows, and the refreshed composition
    /// summary. Returns the admitted path (leaf first) so the caller can
    /// program whichever runtime engine is live — the legacy per-SE
    /// engine, the whole-tree SoA core, or the sharded engine's per-subtree
    /// cores — or `None` when admission rejects (in which case nothing was
    /// written; a rejection is decided entirely on cloned tables).
    pub(crate) fn commit_reconfiguration(
        &mut self,
        client: usize,
        tasks: &TaskSet,
    ) -> Option<Vec<PathTrial>> {
        self.commit_reconfiguration_cancellable(client, tasks, None)
            .ok()
    }

    /// [`commit_reconfiguration`](Self::commit_reconfiguration) with the
    /// cancellation hook threaded through to the admission trial. A
    /// cancelled request commits nothing — cancellation is only ever
    /// observed on cloned tables, so no rollback exists to get wrong.
    pub(crate) fn commit_reconfiguration_cancellable(
        &mut self,
        client: usize,
        tasks: &TaskSet,
        cancel: Option<&CancelToken>,
    ) -> Result<Vec<PathTrial>, TrialAbort> {
        if client >= self.config.num_clients {
            return Err(TrialAbort::Rejected);
        }
        let trial = self.admission_trial_cancellable(client, tasks, cancel)?;
        // Commit: rewrite the table rows and cached interfaces along the
        // path, staging every changed server to swap at its replenishment
        // boundary. Rows re-validate trivially (the trial already loaded
        // identical rows into the clones).
        let levels = self.config.levels();
        let (leaf_order, port) = self.config.attach_point(client);
        let rows = self.leaf_rows(port, tasks);
        self.elements[levels - 1][leaf_order]
            .selector_mut()
            .reload_port(port as u8, &rows)
            .expect("rows validated by the admission trial");
        self.client_tasks[client] = tasks.clone();
        for (depth, order, ifaces) in &trial {
            self.se_analysis_ok[*depth][*order] = true;
            self.composition.interfaces[*depth][*order] = ifaces.clone();
            if *depth > 0 {
                let parent_order = order / self.config.branch;
                let parent_port = (order % self.config.branch) as u8;
                let parent_rows = Self::interface_rows(&self.config, parent_port, ifaces);
                self.elements[*depth - 1][parent_order]
                    .selector_mut()
                    .reload_port(parent_port, &parent_rows)
                    .expect("rows validated by the admission trial");
            }
        }
        self.composition.analysis_ok = self.se_analysis_ok.iter().flatten().all(|&ok| ok);
        self.composition.root_bandwidth = Self::bandwidth_sum(&self.composition.interfaces[0][0]);
        self.composition.schedulable =
            self.composition.analysis_ok && self.composition.root_bandwidth <= 1.0 + 1e-9;
        self.composition.reprogrammed_elements = trial.len();
        self.metrics.set_gauge(
            ComponentId::System,
            "root_bandwidth",
            self.composition.root_bandwidth,
        );
        // Deliberately no `Reconfigurations` tally here: churn accounting
        // (`Reconfigurations`/`Admitted`/`AdmissionRejected`) is owned by
        // the harness registry alone, so `merged_registry()` never double
        // counts an admitted transition.
        Ok(trial)
    }

    /// Programs whichever runtime engine is live along a committed path and
    /// returns the total transition latency (shared by both reconfiguration
    /// entry points).
    fn program_trial(&mut self, trial: &[PathTrial]) -> u64 {
        let mut transition_cycles = 0;
        for (depth, order, ifaces) in trial {
            transition_cycles += match self.soa.as_mut() {
                Some(soa) => soa.program_se_deferred(*depth, *order, ifaces),
                None => self.elements[*depth][*order].program_deferred(ifaces),
            };
        }
        transition_cycles
    }

    /// Offers a request at its client's port, with typed rejection: a
    /// transiently full buffer ([`InjectError::PortFull`]) is
    /// distinguished from a malformed request naming a nonexistent client
    /// ([`InjectError::UnknownClient`]), which retrying can never fix.
    /// The [`Interconnect::inject`] trait method routes through here, so
    /// a malformed request bounces as an error instead of panicking on an
    /// out-of-range attach point.
    ///
    /// # Errors
    ///
    /// See above; the rejected request is recoverable from either variant
    /// via [`InjectError::into_request`].
    pub fn try_inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), InjectError> {
        if request.client as usize >= self.config.num_clients {
            return Err(InjectError::UnknownClient {
                client: request.client,
                num_clients: self.config.num_clients,
                request,
            });
        }
        let levels = self.config.levels();
        let (order, port) = self.config.attach_point(request.client as usize);
        let (id, client) = (request.id, request.client);
        match self.soa.as_mut() {
            Some(soa) => soa
                .try_accept(levels - 1, order, port, request)
                .map_err(InjectError::PortFull)?,
            None => self.elements[levels - 1][order]
                .try_accept(port, request)
                .map_err(InjectError::PortFull)?,
        }
        self.metrics
            .inc(ComponentId::Client(client), Counter::Enqueued);
        self.metrics.request_enqueued(
            now,
            id,
            client,
            ComponentId::Se {
                depth: levels - 1,
                order,
            },
        );
        Ok(())
    }

    /// Emits one fault-activation event (plus counters) per
    /// interconnect-side fault window that opens this cycle. Per-cycle
    /// fault activity (masked grants, stretched service) is tallied at
    /// the affected component as it happens.
    fn announce_faults(&mut self, now: Cycle) {
        for spec in self.faults.specs() {
            if spec.window.start != now || !spec.window.contains(now) {
                continue;
            }
            let component = match spec.kind {
                FaultKind::StuckGrant { depth, order, .. } => ComponentId::Se { depth, order },
                FaultKind::DramJitter { bank, .. } => ComponentId::Bank(bank),
                FaultKind::DropResponse { client, .. } => ComponentId::Client(client),
                // Client-side faults are announced by the harness.
                FaultKind::RogueDemand { .. } | FaultKind::RequestBurst { .. } => continue,
            };
            self.metrics.record(
                now,
                Event::FaultInjected {
                    component,
                    class: spec.kind.class(),
                },
            );
        }
    }

    fn bandwidth_sum(interfaces: &[Option<PeriodicResource>]) -> f64 {
        interfaces
            .iter()
            .flatten()
            .map(PeriodicResource::bandwidth)
            .sum()
    }

    fn interface_rows(
        _config: &BlueScaleConfig,
        port: u8,
        interfaces: &[Option<PeriodicResource>],
    ) -> Vec<TableRow> {
        interfaces
            .iter()
            .enumerate()
            .filter_map(|(q, iface)| {
                iface.map(|r| TableRow {
                    port,
                    task_id: q as u32,
                    period: r.period(),
                    // Inner levels keep implicit deadlines: end-to-end
                    // slack is reserved once, at the leaves.
                    deadline: r.period(),
                    wcet: r.budget(),
                })
            })
            .collect()
    }

    /// Runs the SE's interface selector; on analytical failure falls back
    /// to utilization-proportional interfaces (best effort, no guarantee).
    fn compute_or_fallback(element: &ScaleElement) -> (Vec<Option<PeriodicResource>>, bool) {
        match element.selector().compute() {
            Ok(ifaces) => (ifaces, true),
            Err(_) => (Self::fallback_interfaces(element), false),
        }
    }

    /// Utilization-proportional fallback: each non-idle port gets
    /// `Π = max(1, min_T/2)` and a budget proportional to its share of the
    /// total demand (normalized when demand exceeds capacity).
    fn fallback_interfaces(element: &ScaleElement) -> Vec<Option<PeriodicResource>> {
        let rows = element.selector().rows();
        let ports = element.ports();
        let mut util = vec![0.0f64; ports];
        let mut min_period = vec![u64::MAX; ports];
        for r in rows {
            let p = r.port as usize;
            util[p] += r.wcet as f64 / r.period as f64;
            min_period[p] = min_period[p].min(r.period);
        }
        let total: f64 = util.iter().sum();
        let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
        (0..ports)
            .map(|p| {
                if util[p] == 0.0 {
                    return None;
                }
                let period = (min_period[p] / 2).max(1);
                let share = util[p] * scale;
                let budget = ((share * period as f64).round() as u64).clamp(1, period);
                PeriodicResource::new(period, budget)
            })
            .collect()
    }

    /// Resolves every interface-selection problem from the leaves to the
    /// root and programs all SEs (used at construction).
    fn recompute_all(&mut self) -> Result<(), BuildError> {
        let levels = self.config.levels();
        for depth in (0..levels).rev() {
            for order in 0..self.config.elements_at(depth) {
                let (ifaces, ok) = Self::compute_or_fallback(&self.elements[depth][order]);
                self.se_analysis_ok[depth][order] = ok;
                self.elements[depth][order].program(&ifaces);
                self.composition.interfaces[depth][order] = ifaces.clone();
                if depth > 0 {
                    let parent_order = order / self.config.branch;
                    let parent_port = (order % self.config.branch) as u8;
                    let rows = Self::interface_rows(&self.config, parent_port, &ifaces);
                    let (upper, _lower) = self.elements.split_at_mut(depth);
                    upper[depth - 1][parent_order]
                        .selector_mut()
                        .reload_port(parent_port, &rows)?;
                }
            }
        }
        self.composition.analysis_ok = self.se_analysis_ok.iter().flatten().all(|&ok| ok);
        self.composition.root_bandwidth = Self::bandwidth_sum(&self.composition.interfaces[0][0]);
        self.composition.schedulable =
            self.composition.analysis_ok && self.composition.root_bandwidth <= 1.0 + 1e-9;
        self.composition.reprogrammed_elements = self.elements.iter().map(Vec::len).sum();
        self.metrics.set_gauge(
            ComponentId::System,
            "root_bandwidth",
            self.composition.root_bandwidth,
        );
        Ok(())
    }

    /// One cycle on the structure-of-arrays engine — the four phases of
    /// the legacy [`Interconnect::step`] body, executed over the flat
    /// arena. Kept line-for-line parallel with the legacy path so the two
    /// stay bit-identical (the differential suites enforce it).
    fn step_soa(&mut self, now: Cycle) {
        let have_faults = !self.faults.is_empty();
        if have_faults {
            self.announce_faults(now);
        }
        let levels = self.config.levels();
        let branch = self.config.branch;
        // With detail recording off, arbitration runs on the batched fast
        // path (delta counters, fused tick sweep); detail runs take the
        // write-through `step_se` so typed events keep the legacy order.
        let detail = self.metrics.detail();
        let soa = self.soa.as_mut().expect("step_soa requires the SoA engine");
        // 1. Response path: each SE's demultiplexer routes one response per
        //    cycle toward its client. Leaves deliver first (bottom-up), so
        //    a response advances exactly one level per cycle.
        for depth in (0..levels).rev() {
            if soa.responses_at_level(depth) == 0 {
                continue;
            }
            for order in 0..self.config.elements_at(depth) {
                if depth == levels - 1 {
                    if let Some(request) = soa.pop_response(depth, order) {
                        self.metrics.request_completed(now, request.id);
                        self.ready.push_back(MemoryResponse {
                            request,
                            completed_at: now,
                        });
                    }
                } else if let Some(request) = soa.pop_response(depth, order) {
                    // Route by client id: which child subtree owns it?
                    let leaf_order = request.client as usize / branch;
                    let child_order = leaf_order / branch.pow((levels - 2 - depth) as u32);
                    debug_assert_eq!(
                        child_order / branch.max(1),
                        order,
                        "response routed through the wrong subtree"
                    );
                    soa.accept_response(depth + 1, child_order, request);
                }
            }
        }
        // 2. Memory completions enter the root's demultiplexer — unless a
        //    drop-response fault swallows the completion on the way back.
        if let Some(done) = self.controller.poll_complete(now) {
            if have_faults && self.faults.should_drop_response(done.client, now) {
                self.metrics
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.metrics
                    .inc(ComponentId::System, Counter::ResponsesDropped);
                self.metrics
                    .inc(ComponentId::Client(done.client), Counter::ResponsesDropped);
                self.metrics.record(
                    now,
                    Event::ResponseDropped {
                        client: done.client,
                        request: done.id,
                    },
                );
            } else {
                self.metrics.request_mem_complete(now, done.id);
                soa.accept_response(0, 0, done);
            }
        }
        // 3. Root arbitration feeds the memory controller. An active
        //    memory policy widens the stuck-grant mask before arbitration:
        //    deferred candidates stay queued in their RABs, so request
        //    conservation is untouched.
        let root_ready = self.controller.can_accept();
        let passive = self.policy.is_passive();
        let mut mask: Option<Vec<bool>> = None;
        if have_faults {
            mask = self.faults.stuck_mask(0, 0, branch, now);
            if mask.is_some() {
                self.metrics
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.metrics.inc(
                    ComponentId::Se { depth: 0, order: 0 },
                    Counter::FaultsInjected,
                );
            }
        }
        if !passive && root_ready {
            let mut candidates: Vec<GrantCandidate> = Vec::with_capacity(branch);
            for port in 0..branch {
                if mask.as_ref().is_some_and(|m| m[port]) {
                    continue;
                }
                if let Some(head) = soa.peek_head(0, 0, port) {
                    let (bank, _) = self.controller.decode(head.addr);
                    candidates.push(GrantCandidate {
                        port,
                        client: head.client,
                        bank,
                        deadline: head.deadline,
                    });
                }
            }
            if !candidates.is_empty() {
                let defer = self.policy.defer_mask(now, &candidates);
                if defer != 0 {
                    let m = mask.get_or_insert_with(|| vec![false; branch]);
                    for (i, c) in candidates.iter().enumerate() {
                        if defer & (1 << i) != 0 {
                            m[c.port] = true;
                            self.metrics
                                .inc(ComponentId::Memory, Counter::PolicyDeferred);
                        }
                    }
                }
            }
        }
        let granted = if detail {
            soa.step_se(0, 0, now, root_ready, mask.as_deref(), &mut self.metrics)
        } else {
            soa.step_se_batched(0, 0, now, root_ready, mask.as_deref())
        };
        if let Some(request) = granted {
            let (id, addr, client, deadline) =
                (request.id, request.addr, request.client, request.deadline);
            let extra = if have_faults {
                let (bank, _) = self.controller.decode(addr);
                let extra = self.faults.dram_jitter(bank, now);
                if extra > 0 {
                    self.metrics
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.metrics
                        .inc(ComponentId::Bank(bank), Counter::FaultsInjected);
                }
                extra
            } else {
                0
            };
            let class = self.policy.service_class(client);
            let duration = self
                .controller
                .accept_classed(request, addr, now, extra, class);
            if !passive {
                let (bank, _) = self.controller.decode(addr);
                self.policy.on_issue(now, client, bank);
            }
            self.metrics.request_mem_issue(now, id, duration);
            self.service_events.push_back(ServiceEvent {
                at: now,
                deadline,
                duration,
            });
        }
        // 4. Deeper levels forward one request per SE toward their parents.
        for depth in 1..levels {
            for order in 0..self.config.elements_at(depth) {
                let parent_order = order / branch;
                let port = order % branch;
                let ready = soa.can_accept(depth - 1, parent_order, port);
                let granted = if have_faults {
                    let mask = self.faults.stuck_mask(depth, order, branch, now);
                    if mask.is_some() {
                        self.metrics
                            .inc(ComponentId::System, Counter::FaultsInjected);
                        self.metrics
                            .inc(ComponentId::Se { depth, order }, Counter::FaultsInjected);
                    }
                    if detail {
                        soa.step_se(depth, order, now, ready, mask.as_deref(), &mut self.metrics)
                    } else {
                        soa.step_se_batched(depth, order, now, ready, mask.as_deref())
                    }
                } else if detail {
                    soa.step_se(depth, order, now, ready, None, &mut self.metrics)
                } else {
                    soa.step_se_batched(depth, order, now, ready, None)
                };
                if let Some(request) = granted {
                    soa.try_accept(depth - 1, parent_order, port, request)
                        .expect("parent advertised a free slot");
                }
            }
        }
        // 5. Server countdowns for every SE, fused into one arena sweep.
        //    (Detail runs already ticked inside `step_se`, interleaved with
        //    their grant events in the legacy order.)
        if !detail {
            soa.tick_all();
        }
    }
}

impl Interconnect for BlueScaleInterconnect {
    fn name(&self) -> &'static str {
        "BlueScale"
    }

    fn num_clients(&self) -> usize {
        self.config.num_clients
    }

    fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest> {
        self.try_inject(request, now)
            .map_err(InjectError::into_request)
    }

    fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let mut plan = plan.clone();
        plan.reset_state();
        self.faults = plan;
    }

    fn demote_client(&mut self, client: u32) -> bool {
        // Best-effort demotion: clear the client's declared tasks, which
        // re-runs interface selection along its request path and leaves
        // its leaf port without a reserved interface. In work-conserving
        // mode the client still drains on slack cycles.
        self.update_client_tasks(client as usize, TaskSet::empty())
            .is_ok()
    }

    fn reconfigure_client(
        &mut self,
        client: ClientId,
        tasks: &TaskSet,
        _now: Cycle,
    ) -> ReconfigOutcome {
        let Some(trial) = self.commit_reconfiguration(client as usize, tasks) else {
            return ReconfigOutcome::Rejected;
        };
        // Program the runtime engine along the committed path. The
        // transition latency depends on live server state, so it must come
        // from whichever engine is actually running. No fabric-side
        // `TransitionCycles` tally: like the rest of churn accounting, the
        // counter is owned by the harness registry alone (fed through the
        // returned total), so `merged_registry()` counts each transition
        // exactly once.
        let transition_cycles = self.program_trial(&trial);
        ReconfigOutcome::Admitted { transition_cycles }
    }

    fn reconfigure_client_cancellable(
        &mut self,
        client: ClientId,
        tasks: &TaskSet,
        _now: Cycle,
        cancel: &CancelToken,
    ) -> ReconfigOutcome {
        // The token is polled at every path SE of the admission trial (one
        // poll per interface-selection solve), so a deadline that expires
        // mid-analysis aborts within one solve's worth of work instead of
        // after the whole leaf→root pass. Cancellation is decided entirely
        // on cloned tables: an aborted request leaves the fabric
        // bit-identical. Once the trial commits, the engines are programmed
        // unconditionally — admission already succeeded, and answering
        // `Cancelled` after mutating state would desynchronize the caller.
        match self.commit_reconfiguration_cancellable(client as usize, tasks, Some(cancel)) {
            Ok(trial) => {
                let transition_cycles = self.program_trial(&trial);
                ReconfigOutcome::Admitted { transition_cycles }
            }
            Err(TrialAbort::Rejected) => ReconfigOutcome::Rejected,
            Err(TrialAbort::Cancelled) => ReconfigOutcome::Cancelled,
        }
    }

    fn step(&mut self, now: Cycle) {
        if self.soa.is_some() {
            self.step_soa(now);
            return;
        }
        let have_faults = !self.faults.is_empty();
        if have_faults {
            self.announce_faults(now);
        }
        // 1. Response path: each SE's demultiplexer routes one response per
        //    cycle toward its client. Leaves deliver first (bottom-up), so
        //    a response advances exactly one level per cycle.
        let levels = self.config.levels();
        for depth in (0..levels).rev() {
            if depth == levels - 1 {
                for se in &mut self.elements[depth] {
                    if let Some(request) = se.pop_response() {
                        self.metrics.request_completed(now, request.id);
                        self.ready.push_back(MemoryResponse {
                            request,
                            completed_at: now,
                        });
                    }
                }
            } else {
                let (upper, lower) = self.elements.split_at_mut(depth + 1);
                let parents = &mut upper[depth];
                let children = &mut lower[0];
                for (order, parent) in parents.iter_mut().enumerate() {
                    if let Some(request) = parent.pop_response() {
                        // Route by client id: which child subtree owns it?
                        let leaf_order = request.client as usize / self.config.branch;
                        let child_order =
                            leaf_order / self.config.branch.pow((levels - 2 - depth) as u32);
                        debug_assert_eq!(
                            child_order / self.config.branch.max(1),
                            order,
                            "response routed through the wrong subtree"
                        );
                        children[child_order].accept_response(request);
                    }
                }
            }
        }
        // 2. Memory completions enter the root's demultiplexer — unless a
        //    drop-response fault swallows the completion on the way back
        //    (models a corrupted/lost response beat; the request is gone
        //    until a guard-layer watchdog re-issues it).
        if let Some(done) = self.controller.poll_complete(now) {
            if have_faults && self.faults.should_drop_response(done.client, now) {
                self.metrics
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.metrics
                    .inc(ComponentId::System, Counter::ResponsesDropped);
                self.metrics
                    .inc(ComponentId::Client(done.client), Counter::ResponsesDropped);
                self.metrics.record(
                    now,
                    Event::ResponseDropped {
                        client: done.client,
                        request: done.id,
                    },
                );
            } else {
                self.metrics.request_mem_complete(now, done.id);
                self.elements[0][0].accept_response(done);
            }
        }
        // 3. Root arbitration feeds the memory controller. A stuck-grant
        //    fault hides the affected port from the scheduler; a DRAM
        //    jitter fault stretches the granted request's service time. An
        //    active memory policy widens the same mask: deferred candidates
        //    stay queued in their RABs, preserving request conservation.
        let root_ready = self.controller.can_accept();
        let passive = self.policy.is_passive();
        let mut mask: Option<Vec<bool>> = None;
        if have_faults {
            mask = self.faults.stuck_mask(0, 0, self.config.branch, now);
            if mask.is_some() {
                self.metrics
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.metrics.inc(
                    ComponentId::Se { depth: 0, order: 0 },
                    Counter::FaultsInjected,
                );
            }
        }
        if !passive && root_ready {
            let branch = self.config.branch;
            let mut candidates: Vec<GrantCandidate> = Vec::with_capacity(branch);
            for port in 0..branch {
                if mask.as_ref().is_some_and(|m| m[port]) {
                    continue;
                }
                if let Some(head) = self.elements[0][0].peek_port(port) {
                    let (bank, _) = self.controller.decode(head.addr);
                    candidates.push(GrantCandidate {
                        port,
                        client: head.client,
                        bank,
                        deadline: head.deadline,
                    });
                }
            }
            if !candidates.is_empty() {
                let defer = self.policy.defer_mask(now, &candidates);
                if defer != 0 {
                    let m = mask.get_or_insert_with(|| vec![false; branch]);
                    for (i, c) in candidates.iter().enumerate() {
                        if defer & (1 << i) != 0 {
                            m[c.port] = true;
                            self.metrics
                                .inc(ComponentId::Memory, Counter::PolicyDeferred);
                        }
                    }
                }
            }
        }
        let granted =
            self.elements[0][0].step_masked(now, root_ready, &mut self.metrics, mask.as_deref());
        if let Some(request) = granted {
            let (id, addr, client, deadline) =
                (request.id, request.addr, request.client, request.deadline);
            let extra = if have_faults {
                let (bank, _) = self.controller.decode(addr);
                let extra = self.faults.dram_jitter(bank, now);
                if extra > 0 {
                    self.metrics
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.metrics
                        .inc(ComponentId::Bank(bank), Counter::FaultsInjected);
                }
                extra
            } else {
                0
            };
            let class = self.policy.service_class(client);
            let duration = self
                .controller
                .accept_classed(request, addr, now, extra, class);
            if !passive {
                let (bank, _) = self.controller.decode(addr);
                self.policy.on_issue(now, client, bank);
            }
            self.metrics.request_mem_issue(now, id, duration);
            self.service_events.push_back(ServiceEvent {
                at: now,
                deadline,
                duration,
            });
        }
        // 4. Deeper levels forward one request per SE toward their parents.
        for depth in 1..self.config.levels() {
            let (upper, lower) = self.elements.split_at_mut(depth);
            let parents = &mut upper[depth - 1];
            for (order, se) in lower[0].iter_mut().enumerate() {
                let parent = &mut parents[order / self.config.branch];
                let port = order % self.config.branch;
                let ready = parent.can_accept(port);
                let granted = if have_faults {
                    let mask = self
                        .faults
                        .stuck_mask(depth, order, self.config.branch, now);
                    if mask.is_some() {
                        self.metrics
                            .inc(ComponentId::System, Counter::FaultsInjected);
                        self.metrics
                            .inc(ComponentId::Se { depth, order }, Counter::FaultsInjected);
                    }
                    se.step_masked(now, ready, &mut self.metrics, mask.as_deref())
                } else {
                    se.step(now, ready, &mut self.metrics)
                };
                if let Some(request) = granted {
                    parent
                        .try_accept(port, request)
                        .expect("parent advertised a free slot");
                }
            }
        }
    }

    fn pop_response(&mut self) -> Option<MemoryResponse> {
        self.ready.pop_front()
    }

    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        self.service_events.pop_front()
    }

    fn metrics(&self) -> Option<&MetricsRegistry> {
        Some(BlueScaleInterconnect::metrics(self))
    }

    fn metrics_mut(&mut self) -> Option<&mut MetricsRegistry> {
        Some(BlueScaleInterconnect::metrics_mut(self))
    }

    fn pending(&self) -> usize {
        let buffered: usize = match &self.soa {
            Some(soa) => soa.buffered() + soa.responses_queued(),
            None => self
                .elements
                .iter()
                .flatten()
                .map(|se| se.occupancy() + se.response_occupancy())
                .sum(),
        };
        let in_service = usize::from(!self.controller.can_accept());
        buffered + in_service + self.ready.len()
    }

    fn next_event_hint(&self, now: Cycle) -> Option<Cycle> {
        // Any request or response anywhere in the fabric means the next
        // step can grant, forward or route — busy, no jump. (Replenishments
        // alone never require stepping: an idle server replenishing cannot
        // cause a grant, because selection — work-conserving included —
        // requires a pending request; `advance_idle` replays the counter
        // arithmetic in closed form.)
        if !self.ready.is_empty() || !self.service_events.is_empty() {
            return Some(now);
        }
        let fabric_busy = match &self.soa {
            Some(soa) => !soa.is_quiescent(),
            None => self.elements.iter().flatten().any(|se| !se.is_quiescent()),
        };
        if fabric_busy {
            return Some(now);
        }
        let mut next = self
            .controller
            .next_completion()
            .map_or(Cycle::MAX, |done| done.max(now));
        if !self.faults.is_empty() {
            // Active fault windows (stuck grants count an injection every
            // cycle; jitter and drops key off the current cycle) force
            // per-cycle stepping; future windows bound the jump.
            next = next.min(self.faults.next_activity(now));
        }
        if !self.policy.is_passive() {
            // A policy can only defer pending requests, and pending
            // requests already pin the hint to `now` above — but bounding
            // the jump by the policy's next unblock keeps the lookahead
            // conservative even if a policy ever tracked cross-idle state.
            next = next.min(self.policy.next_unblock(now));
        }
        Some(next)
    }

    fn advance_idle(&mut self, _now: Cycle, delta: u64) {
        debug_assert!(
            !self.metrics.detail(),
            "fast-forward must be gated off while detail recording is on"
        );
        match self.soa.as_mut() {
            Some(soa) => soa.advance_idle(delta),
            None => {
                for se in self.elements.iter_mut().flatten() {
                    se.advance_idle(delta, &mut self.metrics);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;
    use bluescale_rt::task::Task;

    fn sets(n: usize, period: u64, wcet: u64) -> Vec<TaskSet> {
        (0..n)
            .map(|_| TaskSet::new(vec![Task::new(0, period, wcet).unwrap()]).unwrap())
            .collect()
    }

    fn request(client: u32, id: u64, now: Cycle, deadline: Cycle) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: (client as u64) << 20 | id,
            kind: AccessKind::Read,
            issued_at: now,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn builds_16_client_quadtree() {
        let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
            .unwrap();
        assert_eq!(ic.num_clients(), 16);
        let comp = ic.composition();
        assert!(comp.analysis_ok);
        assert!(comp.schedulable, "root bw = {}", comp.root_bandwidth);
        assert_eq!(comp.reprogrammed_elements, 5);
        // Every leaf port serving a client has an interface.
        for se in &comp.interfaces[1] {
            assert!(se.iter().all(Option::is_some));
        }
    }

    #[test]
    fn rejects_wrong_client_count() {
        let err = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(8, 100, 1))
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::WrongClientCount {
                expected: 16,
                got: 8
            }
        );
    }

    #[test]
    fn single_request_round_trip() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        ic.inject(request(5, 1, 0, 400), 0).unwrap();
        let mut got = None;
        for now in 0..100 {
            ic.step(now);
            if let Some(r) = ic.pop_response() {
                got = Some((now, r));
                break;
            }
        }
        let (when, resp) = got.expect("request must complete");
        assert_eq!(resp.request.id, 1);
        assert!(!resp.missed_deadline());
        // Two SE hops + 1 service + 2 response hops ≥ 5 cycles.
        assert!(when >= 4, "completed unrealistically fast at {when}");
        assert_eq!(ic.pending(), 0);
    }

    #[test]
    fn all_clients_round_trip() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 800, 2))
                .unwrap();
        for c in 0..16u32 {
            ic.inject(request(c, c as u64, 0, 800), 0).unwrap();
        }
        let mut done = 0;
        for now in 0..2000 {
            ic.step(now);
            while ic.pop_response().is_some() {
                done += 1;
            }
        }
        assert_eq!(done, 16);
        assert_eq!(ic.pending(), 0);
    }

    #[test]
    fn overutilized_clients_fall_back() {
        // Four clients each demanding 40% of the root: total 1.6 > 1.
        let ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 10, 4)).unwrap();
        let comp = ic.composition();
        assert!(!comp.analysis_ok);
        assert!(!comp.schedulable);
    }

    #[test]
    fn update_client_reprograms_only_the_path() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(64), &sets(64, 800, 2))
                .unwrap();
        let before = ic.composition().interfaces.clone();
        let new_tasks = TaskSet::new(vec![Task::new(0, 200, 10).unwrap()]).unwrap();
        let report = ic.update_client_tasks(37, new_tasks).unwrap();
        // Path length = number of levels = 3.
        assert_eq!(report.reprogrammed_elements, 3);
        let after = &ic.composition().interfaces;
        // Client 37 → leaf SE (2, 9) → SE(1, 2) → root. Everything else
        // must be bit-identical.
        let path: Vec<(usize, usize)> = vec![(2, 9), (1, 2), (0, 0)];
        for depth in 0..3 {
            for order in 0..before[depth].len() {
                if path.contains(&(depth, order)) {
                    continue;
                }
                assert_eq!(
                    before[depth][order], after[depth][order],
                    "SE({depth},{order}) must be untouched"
                );
            }
        }
    }

    #[test]
    fn update_unknown_client_errors() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 100, 1)).unwrap();
        let e = ic.update_client_tasks(9, TaskSet::empty()).unwrap_err();
        assert_eq!(e, BuildError::UnknownClient { client: 9 });
    }

    #[test]
    fn root_bandwidth_bounded_when_schedulable() {
        let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
            .unwrap();
        let comp = ic.composition();
        assert!(comp.root_bandwidth <= 1.0 + 1e-9);
        assert!(comp.root_bandwidth > 0.0);
    }

    #[test]
    fn sixty_four_clients_build() {
        let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(64), &sets(64, 6400, 4))
            .unwrap();
        assert_eq!(ic.composition().interfaces[2].len(), 16);
        assert!(ic.composition().schedulable);
    }

    #[test]
    fn admission_accepts_feasible_and_rejects_overload() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        assert!(ic.composition().schedulable);
        // A modest increase is admitted and takes effect.
        let ok = ic
            .admit_client_tasks(
                5,
                TaskSet::new(vec![Task::new(0, 400, 8).unwrap()]).unwrap(),
            )
            .unwrap();
        assert!(ok);
        assert_eq!(ic.client_tasks()[5].tasks()[0].wcet(), 8);
        // A hog that would blow the root budget is rejected and rolled
        // back.
        let hog = TaskSet::new(vec![Task::new(0, 100, 95).unwrap()]).unwrap();
        let admitted = ic.admit_client_tasks(5, hog).unwrap();
        assert!(!admitted);
        assert_eq!(ic.client_tasks()[5].tasks()[0].wcet(), 8, "rolled back");
        assert!(ic.composition().schedulable, "composition restored");
    }

    #[test]
    fn reconfigure_admits_feasible_update_with_deferred_swap() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let outcome = ic.reconfigure_client(
            5,
            &TaskSet::new(vec![Task::new(0, 400, 8).unwrap()]).unwrap(),
            0,
        );
        let ReconfigOutcome::Admitted { transition_cycles } = outcome else {
            panic!("feasible update must be admitted, got {outcome:?}");
        };
        // Freshly built servers sit a full period away from their next
        // replenishment, so the staged swaps report a non-zero latency.
        assert!(transition_cycles > 0, "swap must wait for the boundary");
        assert_eq!(ic.client_tasks()[5].tasks()[0].wcet(), 8);
        assert!(ic.composition().schedulable);
        assert_eq!(ic.composition().reprogrammed_elements, 2, "path only");
        // Churn accounting lives in the harness registry, not the fabric's:
        // an admitted transition leaves the fabric tally untouched, so
        // `merged_registry()` never double-counts it.
        assert_eq!(
            ic.metrics()
                .counter(ComponentId::System, Counter::Reconfigurations),
            0
        );
    }

    #[test]
    fn reconfigure_rejects_hog_bit_identically() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let interfaces = ic.composition().interfaces.clone();
        let tasks = ic.client_tasks().to_vec();
        let root_bandwidth = ic.composition().root_bandwidth;
        let hog = TaskSet::new(vec![Task::new(0, 100, 95).unwrap()]).unwrap();
        assert_eq!(ic.reconfigure_client(5, &hog, 7), ReconfigOutcome::Rejected);
        // The trial ran on cloned tables: nothing in the live fabric moved.
        assert_eq!(ic.composition().interfaces, interfaces);
        assert_eq!(ic.client_tasks(), tasks);
        assert_eq!(ic.composition().root_bandwidth, root_bandwidth);
        assert!(ic.composition().schedulable);
        assert_eq!(
            ic.metrics()
                .counter(ComponentId::System, Counter::Reconfigurations),
            0
        );
    }

    #[test]
    fn cancelled_reconfigure_leaves_fabric_bit_identical() {
        use bluescale_interconnect::admission::CancelToken;

        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let interfaces = ic.composition().interfaces.clone();
        let tasks = ic.client_tasks().to_vec();
        let update = TaskSet::new(vec![Task::new(0, 400, 8).unwrap()]).unwrap();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert_eq!(
            ic.reconfigure_client_cancellable(5, &update, 0, &cancel),
            ReconfigOutcome::Cancelled
        );
        assert_eq!(ic.composition().interfaces, interfaces);
        assert_eq!(ic.client_tasks(), tasks);
        // A live token behaves exactly like the plain entry point.
        let outcome = ic.reconfigure_client_cancellable(5, &update, 0, &CancelToken::new());
        assert!(matches!(outcome, ReconfigOutcome::Admitted { .. }));
        assert_eq!(ic.client_tasks()[5].tasks()[0].wcet(), 8);
    }

    #[test]
    fn reconfigure_leave_and_rejoin_round_trip() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let interfaces = ic.composition().interfaces.clone();
        // Leave: an empty task set vacates the slot...
        assert!(ic.reconfigure_client(3, &TaskSet::empty(), 10).applied());
        assert!(ic.client_tasks()[3].is_empty());
        // ...and rejoining with the original declaration is admitted.
        let rejoin = TaskSet::new(vec![Task::new(0, 400, 4).unwrap()]).unwrap();
        assert!(ic.reconfigure_client(3, &rejoin, 20).applied());
        assert_eq!(ic.composition().interfaces, interfaces, "state restored");
        assert_eq!(
            ic.reconfigure_client(99, &rejoin, 30),
            ReconfigOutcome::Rejected,
            "out-of-range client"
        );
    }

    #[test]
    fn typed_events_record_grant_path_when_detail_enabled() {
        use bluescale_sim::metrics::Event;

        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        // Detail off by default: no events, but counters still tally.
        ic.inject(request(2, 1, 0, 400), 0).unwrap();
        for now in 0..20 {
            ic.step(now);
        }
        assert!(ic.metrics().events().is_empty());
        assert_eq!(
            ic.metrics()
                .counter(ComponentId::Client(2), Counter::Enqueued),
            1
        );
        // Enabled: the grant path (leaf SE then root, then memory issue) is
        // recorded as typed events.
        ic.metrics_mut().enable_detail();
        ic.inject(request(2, 2, 20, 420), 20).unwrap();
        // Step past the server's replenishment period: the first request
        // consumed the port's budget under strict gating.
        for now in 20..420 {
            ic.step(now);
        }
        let events = ic.metrics().events();
        assert!(!events.is_empty());
        let leaf = ComponentId::Se { depth: 1, order: 0 };
        let root = ComponentId::Se { depth: 0, order: 0 };
        assert!(events.iter().any(|e| matches!(
            e.event,
            Event::Grant {
                component, request: 2, ..
            } if component == leaf
        )));
        assert!(events.iter().any(|e| matches!(
            e.event,
            Event::Grant {
                component, request: 2, ..
            } if component == root
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::MemIssue { request: 2, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, Event::MemComplete { request: 2 })));
    }

    #[test]
    fn lifecycle_breakdown_sums_to_total_latency() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        ic.metrics_mut().enable_detail();
        ic.inject(request(5, 1, 0, 400), 0).unwrap();
        for now in 0..100 {
            ic.step(now);
            if ic.pop_response().is_some() {
                break;
            }
        }
        use bluescale_sim::metrics::SampleKind;
        let m = ic.metrics();
        let client = ComponentId::Client(5);
        let stages = [
            SampleKind::Queueing,
            SampleKind::NocTransit,
            SampleKind::Service,
            SampleKind::ResponseTransit,
        ];
        let sum: f64 = stages
            .iter()
            .map(|&k| m.samples(client, k).expect("breakdown recorded").as_slice()[0])
            .sum();
        // Every stage recorded exactly once and the service stage is the
        // DRAM's flat service time.
        assert!(
            m.samples(client, SampleKind::Service).unwrap().as_slice()[0] >= 1.0,
            "memory service takes time"
        );
        assert!(sum >= 4.0, "two hops + service + response: {sum}");
        assert_eq!(m.inflight(), 0, "lifecycle closed on delivery");
    }

    #[test]
    fn forward_counts_read_from_registry() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        ic.inject(request(3, 1, 0, 400), 0).unwrap();
        for now in 0..50 {
            ic.step(now);
        }
        let counts = ic.forward_counts();
        // Client 3 attaches to leaf SE(1,0): one forward there and one at
        // the root.
        assert_eq!(counts[1][0], 1);
        assert_eq!(counts[0][0], 1);
        assert_eq!(counts[1][1], 0);
    }

    #[test]
    fn malformed_client_is_a_typed_error_not_a_panic() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let bogus = request(99, 1, 0, 400);
        match ic.try_inject(bogus.clone(), 0) {
            Err(InjectError::UnknownClient {
                client: 99,
                num_clients: 16,
                request,
            }) => assert_eq!(request, bogus),
            other => panic!("expected UnknownClient, got {other:?}"),
        }
        // The trait path degrades to handing the request back.
        let bounced = ic.inject(bogus.clone(), 0).unwrap_err();
        assert_eq!(bounced, bogus);
        assert_eq!(ic.pending(), 0, "nothing entered the tree");
    }

    #[test]
    fn inject_error_display_and_recovery() {
        let e = InjectError::UnknownClient {
            client: 7,
            num_clients: 4,
            request: request(7, 3, 0, 10),
        };
        assert!(e.to_string().contains("unknown client 7"));
        assert_eq!(e.into_request().id, 3);
        let full = InjectError::PortFull(request(1, 9, 0, 10));
        assert!(full.to_string().contains("full"));
        assert_eq!(full.into_request().id, 9);
    }

    #[test]
    fn drop_response_fault_swallows_completions() {
        use bluescale_sim::fault::{FaultPlan, FaultWindow};

        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let mut plan = FaultPlan::new(3);
        plan.push(
            FaultKind::DropResponse {
                client: 5,
                every: 1,
            },
            FaultWindow::ALWAYS,
        );
        ic.install_fault_plan(&plan);
        ic.inject(request(5, 1, 0, 400), 0).unwrap();
        for now in 0..200 {
            ic.step(now);
            assert!(ic.pop_response().is_none(), "response must be dropped");
        }
        let m = BlueScaleInterconnect::metrics(&ic);
        assert_eq!(
            m.counter(ComponentId::Client(5), Counter::ResponsesDropped),
            1
        );
        assert_eq!(m.counter(ComponentId::System, Counter::FaultsInjected), 1);
    }

    #[test]
    fn stuck_grant_fault_holds_the_port_for_its_window() {
        use bluescale_sim::fault::{FaultPlan, FaultWindow};

        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        // Client 0 attaches to leaf SE(1,0) port 0; hold that grant port
        // low for the first 60 cycles.
        let mut plan = FaultPlan::new(4);
        plan.push(
            FaultKind::StuckGrant {
                depth: 1,
                order: 0,
                port: 0,
            },
            FaultWindow::new(0, 60),
        );
        ic.install_fault_plan(&plan);
        ic.inject(request(0, 1, 0, 400), 0).unwrap();
        let mut completed_at = None;
        for now in 0..300 {
            ic.step(now);
            if ic.pop_response().is_some() {
                completed_at = Some(now);
                break;
            }
        }
        let when = completed_at.expect("completes once the window closes");
        assert!(when >= 60, "held until cycle 60, completed at {when}");
        let m = BlueScaleInterconnect::metrics(&ic);
        assert_eq!(
            m.counter(
                ComponentId::Se { depth: 1, order: 0 },
                Counter::FaultsInjected
            ),
            60
        );
    }

    #[test]
    fn dram_jitter_fault_stretches_service() {
        use bluescale_sim::fault::{FaultPlan, FaultWindow};

        let drive = |jitter: bool| -> u64 {
            let mut ic =
                BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                    .unwrap();
            if jitter {
                let mut plan = FaultPlan::new(11);
                plan.push(
                    FaultKind::DramJitter {
                        bank: 0,
                        max_extra_cycles: 12,
                    },
                    FaultWindow::ALWAYS,
                );
                ic.install_fault_plan(&plan);
            }
            for id in 0..8u64 {
                ic.inject(request(0, id + 1, 0, 4000), 0).unwrap();
            }
            let mut total = 0;
            for now in 0..2_000 {
                ic.step(now);
                while let Some(e) = ic.pop_service_event() {
                    total += e.duration;
                }
            }
            total
        };
        let base = drive(false);
        let jittered = drive(true);
        assert!(
            jittered > base,
            "jitter must stretch total service: {jittered} vs {base}"
        );
        // Deterministic: the same seeded plan reproduces exactly.
        assert_eq!(drive(true), jittered);
    }

    #[test]
    fn demote_client_clears_its_reservation() {
        let mut ic =
            BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4))
                .unwrap();
        let (order, port) = ic.config().attach_point(5);
        assert!(ic.composition().interfaces[1][order][port].is_some());
        assert!(ic.demote_client(5));
        assert!(
            ic.composition().interfaces[1][order][port].is_none(),
            "demoted client's leaf port has no reserved interface"
        );
        assert!(ic.client_tasks()[5].is_empty());
    }

    #[test]
    fn build_error_display() {
        let e = BuildError::WrongClientCount {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(BuildError::UnknownClient { client: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn registry_lag_reconverges_exactly() {
        use bluescale_mem::DramConfig;
        for soa_core in [false, true] {
            let cfg = BlueScaleConfig {
                dram: Some(DramConfig::default()),
                soa_core,
                ..BlueScaleConfig::for_clients(16)
            };
            let mut ic = BlueScaleInterconnect::new(cfg, &sets(16, 400, 4)).unwrap();
            for c in 0..16u32 {
                ic.inject(request(c, c as u64, 0, 400), 0).unwrap();
            }
            for now in 0..120 {
                ic.step(now);
                while ic.pop_response().is_some() {}
            }
            let live = ic.memory_stats();
            assert!(live.accepted > 0, "workload must reach the controller");
            // The &self read may lag the live stats, but never exceeds them.
            let lagged = ic
                .metrics()
                .counter(ComponentId::Memory, Counter::MemAccepted);
            assert!(lagged <= live.accepted, "mirror may lag, never lead");
            // metrics_mut flushes: the mirror reconverges *exactly*.
            let flushed = ic.metrics_mut();
            let m = ComponentId::Memory;
            assert_eq!(flushed.counter(m, Counter::MemAccepted), live.accepted);
            assert_eq!(flushed.counter(m, Counter::MemCompleted), live.completed);
            assert_eq!(flushed.counter(m, Counter::RowHits), live.row_hits);
            assert_eq!(flushed.counter(m, Counter::RowMisses), live.row_misses);
            assert_eq!(flushed.counter(m, Counter::BusyCycles), live.busy_cycles);
        }
    }

    #[test]
    fn per_bank_regulation_defers_and_conserves_on_both_engines() {
        use bluescale_mem::{DramConfig, MemPolicyConfig};
        for soa_core in [false, true] {
            let cfg = BlueScaleConfig {
                dram: Some(DramConfig::default()),
                mem_policy: MemPolicyConfig::PerBankRegulation {
                    window: 200,
                    budget: 1,
                },
                soa_core,
                ..BlueScaleConfig::for_clients(16)
            };
            let mut ic = BlueScaleInterconnect::new(cfg, &sets(16, 4000, 4)).unwrap();
            // All default test addresses share bank 0, so a 1-per-200
            // budget must defer heavily yet lose nothing.
            let mut id = 0;
            for c in 0..16u32 {
                for _ in 0..2 {
                    id += 1;
                    let mut r = request(c, id, 0, 40_000);
                    r.addr = 0;
                    ic.inject(r, 0).unwrap();
                }
            }
            let mut done = 0;
            for now in 0..40_000 {
                ic.step(now);
                while ic.pop_response().is_some() {
                    done += 1;
                }
                if done == id {
                    break;
                }
            }
            assert_eq!(done, id, "soa_core={soa_core}: deferred requests drain");
            let deferred = ic
                .metrics_mut()
                .counter(ComponentId::Memory, Counter::PolicyDeferred);
            assert!(deferred > 0, "soa_core={soa_core}: budget must bite");
        }
    }

    #[test]
    fn deterministic_memory_closes_pages_for_dm_clients_only() {
        use bluescale_mem::{DramConfig, MemPolicyConfig};
        // Client 3 is deterministic; everyone idle. Same-row streaks from
        // the dm client must never hit; the best-effort client must.
        let run = |dm: bool| {
            let cfg = BlueScaleConfig {
                dram: Some(DramConfig::default()),
                mem_policy: MemPolicyConfig::DeterministicMemory {
                    dm_clients: if dm { vec![3] } else { vec![] },
                },
                ..BlueScaleConfig::for_clients(16)
            };
            let mut ic = BlueScaleInterconnect::new(cfg, &sets(16, 4000, 4)).unwrap();
            for id in 1..=8u64 {
                let mut r = request(3, id, 0, 4000);
                r.addr = id * 64; // one row, sequential words
                ic.inject(r, 0).unwrap();
            }
            for now in 0..2_000 {
                ic.step(now);
                while ic.pop_response().is_some() {}
            }
            ic.memory_stats()
        };
        let deterministic = run(true);
        let best_effort = run(false);
        assert_eq!(deterministic.row_hits, 0, "dm requests never ride the row");
        assert!(best_effort.row_hits > 0, "best-effort keeps the fast path");
        assert!(
            deterministic.busy_cycles > best_effort.busy_cycles,
            "closed-page service pays for its determinism"
        );
    }
}
