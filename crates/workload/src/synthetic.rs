//! Synthetic traffic-generator workloads (paper, Section 6.3).
//!
//! "The workloads on the traffic generators were randomly generated
//! offline, with specified periods and implicit deadlines, bounding the
//! interconnect utilization between 70 % and 90 % in each experimental
//! trial."

use crate::uunifast::{taskset_with_utilization, uunifast};
use bluescale_rt::task::TaskSet;
use bluescale_sim::rng::SimRng;

/// Parameters of one synthetic trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of traffic generators (16 or 64 in the paper).
    pub clients: usize,
    /// Lower bound on total interconnect utilization.
    pub util_lo: f64,
    /// Upper bound on total interconnect utilization.
    pub util_hi: f64,
    /// Tasks per client (1..=this, drawn per client).
    pub max_tasks_per_client: usize,
    /// Shortest task period in cycles.
    pub period_min: u64,
    /// Longest task period in cycles.
    pub period_max: u64,
}

impl SyntheticConfig {
    /// The paper's Fig 6 setup for `clients` traffic generators:
    /// interconnect utilization in [0.70, 0.90], up to 3 tasks per client,
    /// periods 200–4000 cycles.
    pub fn fig6(clients: usize) -> Self {
        Self {
            clients,
            util_lo: 0.70,
            util_hi: 0.90,
            max_tasks_per_client: 3,
            period_min: 200,
            period_max: 4000,
        }
    }
}

/// Generates one synthetic trial: a task set per traffic generator whose
/// combined utilization falls in `[util_lo, util_hi]`.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero clients, empty
/// utilization interval, empty period range).
///
/// # Example
///
/// ```
/// use bluescale_sim::rng::SimRng;
/// use bluescale_workload::synthetic::{generate, SyntheticConfig};
/// use bluescale_workload::total_utilization;
///
/// let mut rng = SimRng::seed_from(42);
/// let sets = generate(&SyntheticConfig::fig6(16), &mut rng);
/// assert_eq!(sets.len(), 16);
/// let u = total_utilization(&sets);
/// assert!(u > 0.6 && u < 1.0);
/// ```
pub fn generate(config: &SyntheticConfig, rng: &mut SimRng) -> Vec<TaskSet> {
    assert!(config.clients > 0, "at least one client required");
    assert!(
        config.util_lo > 0.0 && config.util_lo <= config.util_hi,
        "bad utilization interval"
    );
    assert!(config.max_tasks_per_client >= 1, "need at least one task");
    let target = rng.range_f64(config.util_lo, config.util_hi);
    // Split the total over clients with UUniFast, then within each client
    // over its tasks.
    let per_client = uunifast(config.clients, target, rng);
    per_client
        .into_iter()
        .map(|u| {
            let u = u.max(1e-4);
            let tasks = rng.range_usize(1, config.max_tasks_per_client + 1);
            taskset_with_utilization(tasks, u, config.period_min, config.period_max, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_utilization;

    #[test]
    fn generates_requested_clients() {
        let mut rng = SimRng::seed_from(1);
        let sets = generate(&SyntheticConfig::fig6(64), &mut rng);
        assert_eq!(sets.len(), 64);
        assert!(sets.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn utilization_in_band() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..20 {
            let u = total_utilization(&generate(&SyntheticConfig::fig6(16), &mut rng));
            // Integer rounding can push slightly past the band edges.
            assert!(u > 0.55 && u < 1.05, "total utilization {u}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(9));
        let b = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(1));
        let b = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(2));
        assert_ne!(a, b);
    }

    #[test]
    fn periods_respect_range() {
        let mut rng = SimRng::seed_from(4);
        let cfg = SyntheticConfig::fig6(16);
        for set in generate(&cfg, &mut rng) {
            for t in &set {
                assert!(t.period() >= cfg.period_min);
                assert!(t.period() <= cfg.period_max);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = generate(&SyntheticConfig::fig6(0), &mut rng);
    }
}
