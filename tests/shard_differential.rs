//! Differential tests pinning the sharded parallel simulation to the
//! serial SoA engine.
//!
//! [`ShardedSystem`] advances each level-1 subtree on its own worker and
//! synchronizes at root-arbitration boundaries (conservative PDES,
//! DESIGN.md §14). These tests run the identical seeded workload on the
//! serial harness (`System` over the SoA engine — itself pinned to the
//! legacy engine by `soa_differential.rs`) and on the sharded twin at
//! 1/2/4/8 workers, and require bit-identical fingerprints — counts,
//! per-client counts, per-SE forwards, per-port grants and
//! replenishments, and full latency/blocking sample sequences — across:
//!
//! * the paper's fig6 dense workload in strict and work-conserving modes,
//! * a sparse faulted run (stuck grants, DRAM jitter, dropped responses,
//!   request bursts) with fast-forward jumping,
//! * a live churn plan (retask, leave, rejoin) with fast-forward on,
//! * a single-root-port stress where one shard carries all the load and
//!   the other subtrees idle (the shard-boundary worst case), and
//! * a worker-count determinism sweep: one seed, 1/2/4/8 workers,
//!   byte-identical `merged_registry` JSON.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect, ShardedSystem};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::Counter;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x5AAD;
const HORIZON: u64 = 20_000;
const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

/// Low-utilization, long-period workload: real idle stretches, so the
/// coordinator's fast-forward path is exercised alongside stepping.
fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn config_for(sets: &[TaskSet], work_conserving: bool) -> BlueScaleConfig {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = work_conserving;
    config.soa_core = true;
    config
}

fn build_serial(sets: &[TaskSet], work_conserving: bool) -> System<BlueScaleInterconnect> {
    let ic =
        BlueScaleInterconnect::new(config_for(sets, work_conserving), sets).expect("valid sets");
    System::new(Box::new(ic), sets)
}

fn build_sharded(sets: &[TaskSet], work_conserving: bool, workers: usize) -> ShardedSystem {
    ShardedSystem::new(config_for(sets, work_conserving), sets, workers).expect("valid sets")
}

/// Everything two runs must agree on to count as bit-identical.
fn serial_fingerprint(
    sys: &mut System<BlueScaleInterconnect>,
    horizon: u64,
) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// The sharded twin of [`serial_fingerprint`], field for field.
fn shard_fingerprint(sys: &mut ShardedSystem, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.forward_counts() {
        counts.extend(level);
    }
    let config = sys.config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                let ports =
                    sys.fabric_metrics()
                        .port_counters(depth, order, config.branch, counter);
                counts.extend(ports);
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// Runs the serial oracle once and the sharded twin at every sweep worker
/// count; all five fingerprints must be bit-identical.
fn assert_sharded_agrees(
    sets: &[TaskSet],
    work_conserving: bool,
    prepare: impl Fn(&mut System<BlueScaleInterconnect>, &mut ShardedSystem),
    label: &str,
) -> Vec<ShardedSystem> {
    let mut oracle = build_serial(sets, work_conserving);
    let mut probe = build_sharded(sets, work_conserving, 1);
    prepare(&mut oracle, &mut probe);
    drop(probe);
    let expected = serial_fingerprint(&mut oracle, HORIZON);
    assert!(
        expected.0[0] > 0,
        "{label}: the workload must issue requests"
    );
    WORKER_SWEEP
        .iter()
        .map(|&workers| {
            let mut sharded = build_sharded(sets, work_conserving, workers);
            let mut scratch = build_serial(sets, work_conserving);
            prepare(&mut scratch, &mut sharded);
            drop(scratch);
            let got = shard_fingerprint(&mut sharded, HORIZON);
            assert_eq!(
                got, expected,
                "{label}: sharded run must be bit-identical at {workers} workers"
            );
            sharded
        })
        .collect()
}

#[test]
fn fig6_strict_mode_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    assert_sharded_agrees(&sets, false, |_, _| {}, "fig6/strict");
}

#[test]
fn fig6_work_conserving_is_bit_identical() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    assert_sharded_agrees(&sets, true, |_, _| {}, "fig6/work-conserving");
}

fn fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED ^ 0xF00D);
    plan.push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(5_000, 5_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(3_000, 3_400),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(1_000, 9_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 3,
        },
        FaultWindow::new(0, 8_000),
    );
    plan
}

#[test]
fn fault_plan_is_bit_identical() {
    // Stuck-grant masks (queried shard-side under global coordinates),
    // jittered service and dropped responses (coordinator-side, stateful)
    // and request bursts (worker-side) all cross the shard boundary; every
    // worker count must agree while fast-forward still jumps.
    let sets = task_sets(&sparse_config(16));
    let runs = assert_sharded_agrees(
        &sets,
        true,
        |oracle, sharded| {
            oracle.set_fault_plan(fault_plan());
            sharded.set_fault_plan(fault_plan());
        },
        "sparse + faults",
    );
    for sys in &runs {
        assert!(
            sys.fast_forwarded_cycles() > 0,
            "the sparse faulted run must still find idle stretches to jump"
        );
    }
}

#[test]
fn churn_plan_is_bit_identical() {
    // Retask, leave, rejoin: admission runs coordinator-side on the
    // analysis tables while the deferred (Π,Θ) swaps are programmed into
    // the owning shard's core — and the transition-latency tally must
    // match the serial engine's cycle for cycle.
    let sets = task_sets(&sparse_config(16));
    let plan = {
        let sets = sets.clone();
        move || {
            let mut plan = ChurnPlan::new(SEED ^ 0xC482);
            plan.push(
                6_000,
                2,
                ChurnKind::UpdateTasks {
                    tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
                },
            )
            .push(9_000, 9, ChurnKind::Leave)
            .push(
                13_000,
                9,
                ChurnKind::Join {
                    tasks: sets[9].clone(),
                },
            );
            plan
        }
    };
    let runs = assert_sharded_agrees(
        &sets,
        true,
        |oracle, sharded| {
            oracle.set_churn_plan(plan());
            sharded.set_churn_plan(plan());
        },
        "churn plan",
    );
    for sys in &runs {
        assert!(
            sys.fast_forward_jumps() > 0,
            "the sparse churned run must still jump, or the check is vacuous"
        );
        assert_eq!(
            sys.registry().counter(
                bluescale_sim::metrics::ComponentId::System,
                Counter::Admitted
            ),
            3,
            "all three churn events are feasible and must be admitted"
        );
    }
}

#[test]
fn single_busy_shard_is_bit_identical() {
    // Shard-boundary stress: every request funnels through one root port
    // while the other subtrees stay idle — the conservative barrier must
    // not deadlock, starve or reorder the busy shard's boundary offers.
    let clients = 16;
    let busy = clients / 4; // subtree 0 only (branch = 4)
    let sets: Vec<TaskSet> = (0..clients)
        .map(|i| {
            if i < busy {
                TaskSet::new(vec![Task::new(0, 24, 3).unwrap()]).unwrap()
            } else {
                TaskSet::empty()
            }
        })
        .collect();
    let runs = assert_sharded_agrees(&sets, true, |_, _| {}, "single busy shard");
    for sys in &runs {
        let issued = sys
            .registry()
            .counter(bluescale_sim::metrics::ComponentId::System, Counter::Issued);
        assert!(issued > 1_000, "the busy subtree must carry real load");
    }
}

#[test]
fn merged_registry_is_byte_identical_across_worker_counts() {
    // Satellite: one seed, churn + faults live, 1/2/4/8 workers — the
    // merged registry JSON must agree to the byte, pinning counters,
    // samples and gauges all at once (and pinning that worker count is a
    // pure wall-clock knob).
    let sets = task_sets(&sparse_config(16));
    let mut reference: Option<String> = None;
    for &workers in &WORKER_SWEEP {
        let mut sys = build_sharded(&sets, true, workers);
        sys.set_fault_plan(fault_plan());
        let mut plan = ChurnPlan::new(SEED ^ 0xC482);
        plan.push(9_000, 9, ChurnKind::Leave).push(
            13_000,
            9,
            ChurnKind::Join {
                tasks: sets[9].clone(),
            },
        );
        sys.set_churn_plan(plan);
        sys.run(HORIZON);
        let json = sys.merged_registry().to_json();
        match &reference {
            None => reference = Some(json),
            Some(expected) => assert_eq!(
                &json, expected,
                "merged registry must be byte-identical at {workers} workers"
            ),
        }
    }
    assert!(
        reference.expect("sweep ran").contains("root_bandwidth"),
        "the merged registry must carry the fabric gauge"
    );
}
