//! Runs the scheduling-scalability extension sweep (4→256 clients).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin scalability -- [--trials N] [--horizon N]`

use bluescale_bench::arg_u64;
use bluescale_bench::scalability::{render, run, ScalabilityConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ScalabilityConfig::default();
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    let points = run(&config);
    println!("{}", render(&config, &points));
}
