//! Regenerates the paper's Table 1 (hardware overhead at 16 clients).
//!
//! Usage: `cargo run -p bluescale-bench --bin table1`

fn main() {
    print!("{}", bluescale_bench::table1::render());
}
