//! Randomized property tests on the analysis core and the data structures —
//! the invariants the whole reproduction leans on. Driven by fixed-seed
//! [`SimRng`] sweeps (the container has no registry access for `proptest`),
//! so every case is deterministic and reproducible by seed.

use bluescale_repro::rt::demand::{change_points, dbf_set};
use bluescale_repro::rt::interface::{min_budget_for_period, select_interface, SelectionContext};
use bluescale_repro::rt::schedulability::{is_schedulable, is_schedulable_brute};
use bluescale_repro::rt::supply::PeriodicResource;
use bluescale_repro::rt::task::{Task, TaskSet};
use bluescale_repro::rt::validate::edf_meets_deadlines;
use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::sim::stats::{OnlineStats, Samples};

const CASES: usize = 256;

/// A random task mirroring the old proptest strategy: `T ∈ [2, 200)`,
/// `C = min(raw, T)` with `raw ∈ [1, 50)`.
fn random_task(rng: &mut SimRng, id: u32) -> Task {
    let period = rng.range_u64(2, 200);
    let wcet = rng.range_u64(1, 50).min(period);
    Task::new(id, period, wcet).expect("generated parameters are valid")
}

/// A random task set of 1..=max_tasks tasks with `U ≤ 1`
/// (rejection-sampled).
fn random_taskset(rng: &mut SimRng, max_tasks: usize) -> TaskSet {
    loop {
        let n = rng.range_usize(1, max_tasks + 1);
        let tasks = (0..n).map(|i| random_task(rng, i as u32)).collect();
        if let Ok(set) = TaskSet::new(tasks) {
            return set;
        }
    }
}

/// A random periodic resource with `Π ∈ [1, 60)`, `1 ≤ Θ ≤ Π`.
fn random_resource(rng: &mut SimRng) -> PeriodicResource {
    let period = rng.range_u64(1, 60);
    let budget = rng.range_u64(1, period + 1);
    PeriodicResource::new(period, budget).expect("b ≤ p")
}

#[test]
fn sbf_is_monotone_and_rate_bounded() {
    let mut rng = SimRng::seed_from(0x5BF1);
    for case in 0..CASES {
        let r = random_resource(&mut rng);
        let t = rng.range_u64(0, 500);
        // Monotone non-decreasing, unit-rate bounded, never exceeds t.
        assert!(r.sbf(t + 1) >= r.sbf(t), "case {case}");
        assert!(r.sbf(t + 1) - r.sbf(t) <= 1, "case {case}");
        assert!(r.sbf(t) <= t, "case {case}");
    }
}

#[test]
fn sbf_dominates_linear_bound() {
    let mut rng = SimRng::seed_from(0x5BF2);
    for case in 0..CASES {
        let r = random_resource(&mut rng);
        let t = rng.range_u64(0, 500);
        assert!(r.lsbf(t) <= r.sbf(t) as f64 + 1e-9, "case {case}");
    }
}

#[test]
fn sbf_delivers_budget_per_period() {
    let mut rng = SimRng::seed_from(0x5BF3);
    for case in 0..CASES {
        let r = random_resource(&mut rng);
        let k = rng.range_u64(1, 10);
        // Any window of k periods + worst blackout supplies ≥ k budgets.
        let t = k * r.period() + (r.period() - r.budget());
        assert!(r.sbf(t) >= k * r.budget(), "case {case}");
    }
}

#[test]
fn dbf_is_monotone_staircase() {
    let mut rng = SimRng::seed_from(0xDBF1);
    for case in 0..CASES {
        let set = random_taskset(&mut rng, 4);
        let t = rng.range_u64(0, 500);
        assert!(dbf_set(&set, t + 1) >= dbf_set(&set, t), "case {case}");
    }
}

#[test]
fn dbf_constant_between_change_points() {
    let mut rng = SimRng::seed_from(0xDBF2);
    for case in 0..32 {
        let set = random_taskset(&mut rng, 3);
        let pts = change_points(&set, 400);
        for w in pts.windows(2) {
            for t in w[0]..w[1] {
                assert_eq!(
                    dbf_set(&set, t),
                    dbf_set(&set, w[0]),
                    "case {case}: dbf changed inside [{}, {})",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn theorem1_agrees_with_brute_force() {
    let mut rng = SimRng::seed_from(0x7410);
    for case in 0..CASES {
        let set = random_taskset(&mut rng, 3);
        let r = random_resource(&mut rng);
        // The bounded test must agree with exhaustive checking (brute-force
        // horizon chosen beyond any β the generated ranges can produce when
        // the bandwidth strictly exceeds the utilization).
        let fast = is_schedulable(&set, &r);
        if r.bandwidth() > set.utilization() + 0.05 {
            let brute = is_schedulable_brute(&set, &r, 30_000);
            assert_eq!(fast, brute, "case {case}: {set:?} on {r:?}");
        } else if fast {
            // A positive answer must always be confirmed by brute force.
            assert!(
                is_schedulable_brute(&set, &r, 30_000),
                "case {case}: {set:?} on {r:?}"
            );
        }
    }
}

#[test]
fn selected_interface_is_schedulable_and_covers_utilization() {
    let mut rng = SimRng::seed_from(0x5E1E);
    for case in 0..64 {
        let set = random_taskset(&mut rng, 3);
        let ctx = SelectionContext::isolated(&set);
        if let Ok(iface) = select_interface(&set, &ctx) {
            assert!(is_schedulable(&set, &iface), "case {case}");
            assert!(iface.bandwidth() >= set.utilization() - 1e-9, "case {case}");
        }
    }
}

#[test]
fn min_budget_is_minimal() {
    let mut rng = SimRng::seed_from(0x81D6);
    for case in 0..CASES {
        let set = random_taskset(&mut rng, 2);
        let period = rng.range_u64(1, 40);
        if let Some(theta) = min_budget_for_period(&set, period) {
            let chosen = PeriodicResource::new(period, theta).expect("valid");
            assert!(is_schedulable(&set, &chosen), "case {case}");
            if theta > 1 {
                let smaller = PeriodicResource::new(period, theta - 1).expect("valid");
                assert!(!is_schedulable(&set, &smaller), "case {case}");
            }
        }
    }
}

#[test]
fn admitted_sets_survive_worst_case_supply_simulation() {
    let mut rng = SimRng::seed_from(0xAD01);
    for case in 0..64 {
        let set = random_taskset(&mut rng, 3);
        let r = random_resource(&mut rng);
        // The analysis is sound: anything it admits must meet every
        // deadline under the worst-case supply pattern, verified by an
        // independent discrete EDF simulation.
        if is_schedulable(&set, &r) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .saturating_add(2 * r.period())
                .min(200_000);
            assert!(
                edf_meets_deadlines(&set, &r, horizon),
                "case {case}: analysis admitted {set:?} on {r:?} but simulation missed"
            );
        }
    }
}

#[test]
fn selected_interface_survives_simulation() {
    let mut rng = SimRng::seed_from(0xAD02);
    for case in 0..32 {
        let set = random_taskset(&mut rng, 2);
        let ctx = SelectionContext::isolated(&set);
        if let Ok(iface) = select_interface(&set, &ctx) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .min(200_000);
            assert!(
                edf_meets_deadlines(&set, &iface, horizon),
                "case {case}: selected interface missed a deadline"
            );
        }
    }
}

#[test]
fn online_stats_match_direct_computation() {
    let mut rng = SimRng::seed_from(0x57A7);
    for case in 0..CASES {
        let n = rng.range_usize(1, 100);
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(
            (stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}"
        );
        assert!(
            (stats.population_variance() - var).abs() < 1e-4 * (1.0 + var),
            "case {case}"
        );
    }
}

#[test]
fn samples_percentiles_are_order_statistics() {
    let mut rng = SimRng::seed_from(0x9C7E);
    for case in 0..CASES {
        let n = rng.range_usize(1, 100);
        let values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1e6)).collect();
        let mut s: Samples = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert_eq!(s.min(), sorted.first().copied(), "case {case}");
        assert_eq!(s.max(), sorted.last().copied(), "case {case}");
        let p50 = s.percentile(50.0).expect("non-empty");
        assert!(sorted.contains(&p50), "case {case}");
    }
}

#[test]
fn rng_range_is_always_in_bounds() {
    let mut meta = SimRng::seed_from(0x2A6E);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let lo = meta.range_u64(0, 100);
        let span = meta.range_u64(1, 100);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let v = rng.range_u64(lo, lo + span);
            assert!((lo..lo + span).contains(&v), "case {case}");
        }
    }
}
